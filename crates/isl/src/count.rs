//! Exact integer point counting.
//!
//! The paper computes every metric with `isl_union_map_card` /
//! Barvinok counting. This module provides the equivalent for bounded,
//! non-parametric sets (the only kind TENET's evaluation produces):
//!
//! 1. div columns are expanded into ordinary variables with their bracket
//!    constraints (`0 <= num - den*q < den`) — a bijection, so the count is
//!    unchanged;
//! 2. equalities are removed with the Omega-test equality reduction
//!    (unit-coefficient substitution plus Pugh's `sigma` reduction for
//!    non-unit coefficients) — every step is a bijection;
//! 3. the remaining pure-inequality system is counted by independent-
//!    component factoring, closed-form interval and arithmetic-series sums,
//!    and recursive enumeration with bound propagation.
//!
//! Every path is exact; property tests compare against brute force.

use crate::basic::{BasicMap, Row};
use crate::value::{ceil_div, floor_div, gcd, mod_hat};
use crate::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hard cap on the number of values a single variable may be enumerated
/// over before we give up with [`Error::TooComplex`].
const ENUM_LIMIT: i64 = 4_000_000;
/// Hard cap on total recursion work.
const WORK_LIMIT: u64 = 400_000_000;

/// Process-wide counters for the closed-form counting shortcuts, bumped
/// each time a shape dispatches to a fast path instead of the recursive
/// enumerator. Monotonic since process start; used by the `perfbench`
/// smoke mode (and tests) to assert the fast paths are actually taken.
/// Tests needing exact attribution under `cargo test` parallelism use
/// the scoped view ([`crate::CounterHandle::fast_path_stats`]) instead.
static WINDOW_FAST: AtomicU64 = AtomicU64::new(0);
static BOX_FAST: AtomicU64 = AtomicU64::new(0);
static SLAB_FAST: AtomicU64 = AtomicU64::new(0);
static MULTI_SLAB_FAST: AtomicU64 = AtomicU64::new(0);
static PAIR_CHAIN_FAST: AtomicU64 = AtomicU64::new(0);
static COUPLED_SLAB_FAST: AtomicU64 = AtomicU64::new(0);

/// Which closed-form counting shortcut dispatched. The discriminants
/// index the per-handle counter array in [`crate::cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FastPathKind {
    /// Functional-window projection.
    Window = 0,
    /// Axis-aligned box.
    Box = 1,
    /// Box ∩ single slab.
    Slab = 2,
    /// Box ∩ k≥2 independent slab directions.
    MultiSlab = 3,
    /// Two-variable closed form / chained two-variable value-table DP.
    PairChain = 4,
    /// Coupled slabs sharing variables, closed per shared assignment.
    CoupledSlab = 5,
}

/// Number of [`FastPathKind`] variants (length of per-handle arrays).
pub(crate) const FAST_PATH_KINDS: usize = 6;

/// Bumps the process-wide counter for `kind` plus every attached
/// [`crate::CounterHandle`]'s scoped per-shape counter.
fn note(kind: FastPathKind) {
    let ctr = match kind {
        FastPathKind::Window => &WINDOW_FAST,
        FastPathKind::Box => &BOX_FAST,
        FastPathKind::Slab => &SLAB_FAST,
        FastPathKind::MultiSlab => &MULTI_SLAB_FAST,
        FastPathKind::PairChain => &PAIR_CHAIN_FAST,
        FastPathKind::CoupledSlab => &COUPLED_SLAB_FAST,
    };
    ctr.fetch_add(1, Ordering::Relaxed);
    crate::cache::note_fastpath(kind);
}

/// Point-in-time snapshot of the closed-form dispatch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountStats {
    /// Functional-window eliminations (exact multiplicative factors; the
    /// path pure boxes and mod/floor brackets collapse through).
    pub window_counts: u64,
    /// Axis-aligned residual boxes counted by interval-width products.
    pub box_counts: u64,
    /// Box ∩ single slab (or halfspace) shapes counted by floor-sums.
    pub slab_counts: u64,
    /// Box ∩ k≥2 independent slab directions counted by the split-and-
    /// floor-sum path.
    pub multi_slab_counts: u64,
    /// Two-variable projections closed by the generalized pair series,
    /// and chained two-variable components closed by the value-table DP.
    pub pair_chain_counts: u64,
    /// Coupled-slab shapes (slabs sharing variables) closed by
    /// per-assignment interval intersection with multiple kept slabs.
    pub coupled_slab_counts: u64,
}

impl CountStats {
    /// Sum of all dispatch counters.
    pub fn total(&self) -> u64 {
        self.window_counts
            + self.box_counts
            + self.slab_counts
            + self.multi_slab_counts
            + self.pair_chain_counts
            + self.coupled_slab_counts
    }
}

/// Current fast-path dispatch counters (process-wide, monotonic).
pub fn fast_path_stats() -> CountStats {
    CountStats {
        window_counts: WINDOW_FAST.load(Ordering::Relaxed),
        box_counts: BOX_FAST.load(Ordering::Relaxed),
        slab_counts: SLAB_FAST.load(Ordering::Relaxed),
        multi_slab_counts: MULTI_SLAB_FAST.load(Ordering::Relaxed),
        pair_chain_counts: PAIR_CHAIN_FAST.load(Ordering::Relaxed),
        coupled_slab_counts: COUPLED_SLAB_FAST.load(Ordering::Relaxed),
    }
}

/// A free-form constraint system: `n` variables, rows of width `n + 1`
/// (constant last). Inequalities mean `row >= 0`, equalities `row == 0`.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    pub n: usize,
    pub eqs: Vec<Row>,
    pub ineqs: Vec<Row>,
}

impl Tableau {
    /// Builds a tableau from a borrowed basic map: visible dims keep their
    /// column indices; div columns become trailing variables with bracket
    /// constraints. The rows are copied once, straight into the tableau
    /// (the layout `[vis | divs | const]` is already shared).
    pub(crate) fn from_basic(bm: &BasicMap) -> Result<Tableau> {
        Ok(Self::assemble(bm, bm.eqs.to_vec(), bm.ineqs.to_vec()))
    }

    /// Like [`Tableau::from_basic`] but consumes the basic map, moving its
    /// rows into the tableau without any copy. Used by the counting entry
    /// points whose callers own their (often freshly subtracted) pieces.
    pub(crate) fn from_basic_owned(mut bm: BasicMap) -> Result<Tableau> {
        let eqs = std::mem::take(&mut bm.eqs);
        let ineqs = std::mem::take(&mut bm.ineqs);
        Ok(Self::assemble(&bm, eqs, ineqs))
    }

    fn assemble(bm: &BasicMap, eqs: Vec<Row>, mut ineqs: Vec<Row>) -> Tableau {
        let n_vis = bm.div0();
        let n_div = bm.n_div();
        let n = n_vis + n_div;
        ineqs.reserve(2 * n_div);
        // Bracket constraints for each div: 0 <= num - den*q <= den - 1.
        for (d, def) in bm.divs.iter().enumerate() {
            let col = n_vis + d;
            let mut lo = def.num.clone();
            lo[col] -= def.den;
            let mut hi: Row = def.num.iter().map(|c| -c).collect();
            hi[col] += def.den;
            let k = hi.len() - 1;
            hi[k] += def.den - 1;
            ineqs.push(lo);
            ineqs.push(hi);
        }
        Tableau { n, eqs, ineqs }
    }

    /// Projects away *functional-window* variables, returning the exact
    /// multiplicative factor the projection removes.
    ///
    /// A variable `q` whose only two constraint rows form the sandwich
    /// `-c1 <= e + m·q <= c2` (the rows cancel each other except at `q`)
    /// confines `m·q` to a window of `w = c1 + c2 + 1` consecutive
    /// integers. When `m` divides `w`, that window contains exactly `w/m`
    /// multiples of `m` regardless of `e`, so `q` has exactly `w/m`
    /// solutions for *every* assignment of the remaining variables:
    /// dropping the two rows and the column and multiplying the count by
    /// `w/m` is exact. The `w = m` case (factor 1) is the bracket shape
    /// every div acquires after equality elimination, so mod/floor-heavy
    /// dataflow relations collapse to boxes and slabs here instead of
    /// feeding the recursive enumerator. An empty window (`w <= 0`) makes
    /// the whole system infeasible — factor 0.
    fn drop_functional_vars(&mut self) -> Result<u128> {
        debug_assert!(self.eqs.is_empty());
        let mut factor: u128 = 1;
        'outer: loop {
            let n = self.n;
            for col in (0..n).rev() {
                let mut touching: [usize; 2] = [usize::MAX; 2];
                let mut count = 0;
                for (i, r) in self.ineqs.iter().enumerate() {
                    if r[col] != 0 {
                        if count == 2 {
                            count = 3;
                            break;
                        }
                        touching[count] = i;
                        count += 1;
                    }
                }
                if count != 2 {
                    continue;
                }
                let (i, j) = (touching[0], touching[1]);
                // All pair arithmetic in i128: i64::MIN coefficients must
                // not wrap into spurious cancellations or a negative `m`.
                let (a, b) = (self.ineqs[i][col] as i128, self.ineqs[j][col] as i128);
                if a != -b {
                    continue;
                }
                let m = a.abs();
                // The pair must cancel every variable except `q`.
                let (ri, rj) = (&self.ineqs[i], &self.ineqs[j]);
                let mut cancels = true;
                for v in 0..n {
                    if v != col && (ri[v] as i128) + (rj[v] as i128) != 0 {
                        cancels = false;
                        break;
                    }
                }
                if !cancels {
                    continue;
                }
                let w = (ri[n] as i128) + (rj[n] as i128) + 1;
                if w <= 0 {
                    return Ok(0); // empty window: no q exists anywhere
                }
                if w % m != 0 {
                    continue; // residue-dependent count: not projectable
                }
                factor = factor.checked_mul((w / m) as u128).ok_or(Error::Overflow)?;
                let (hi_idx, lo_idx) = if i > j { (i, j) } else { (j, i) };
                self.ineqs.swap_remove(hi_idx);
                self.ineqs.swap_remove(lo_idx);
                self.remove_col(col);
                continue 'outer;
            }
            break;
        }
        Ok(factor)
    }

    fn remove_col(&mut self, col: usize) {
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            debug_assert_eq!(r[col], 0);
            r.remove(col);
        }
        self.n -= 1;
    }

    fn add_col(&mut self) -> usize {
        let at = self.n;
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            r.insert(at, 0);
        }
        self.n += 1;
        at
    }

    /// Uses `eq` (with `eq[col] == ±1`) to substitute `col` out of every
    /// row, then removes the column. Exact for inequalities because the
    /// scale factor is one.
    fn substitute_unit(&mut self, eq: &Row, col: usize) {
        let mut eq = eq.clone();
        if eq[col] < 0 {
            for c in eq.iter_mut() {
                *c = -*c;
            }
        }
        debug_assert_eq!(eq[col], 1);
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            let c = r[col];
            if c != 0 {
                for (ri, ei) in r.iter_mut().zip(eq.iter()) {
                    *ri -= c * ei;
                }
            }
        }
        self.remove_col(col);
    }

    /// Removes all equalities via the Omega-test reduction.
    /// Returns `false` when the system is infeasible.
    fn eliminate_equalities(&mut self) -> Result<bool> {
        let mut guard = 0usize;
        while !self.eqs.is_empty() {
            guard += 1;
            if guard > 10_000 {
                return Err(Error::TooComplex(
                    "equality elimination did not converge".into(),
                ));
            }
            let mut eq = self.eqs.swap_remove(0);
            let k = self.n; // constant index within this row
            let g = eq[..k].iter().fold(0, |a, &c| gcd(a, c));
            if g == 0 {
                if eq[k] != 0 {
                    return Ok(false);
                }
                continue;
            }
            if eq[k] % g != 0 {
                return Ok(false);
            }
            if g > 1 {
                for c in eq.iter_mut() {
                    *c /= g;
                }
            }
            // Unit coefficient: direct substitution.
            if let Some(col) = (0..k).find(|&i| eq[i].abs() == 1) {
                self.substitute_unit(&eq, col);
                continue;
            }
            // Pugh reduction: introduce sigma with m = |a_min| + 1.
            let col = (0..k)
                .filter(|&i| eq[i] != 0)
                .min_by_key(|&i| eq[i].abs())
                .expect("gcd nonzero implies a nonzero coefficient");
            let m = eq[col].abs().checked_add(1).ok_or(Error::Overflow)?;
            let sigma = self.add_col();
            eq.insert(sigma, 0);
            let kc = self.n; // new constant index
            let mut eq2 = Row::zeros(kc + 1);
            for i in 0..kc {
                if i == sigma {
                    eq2[i] = -m;
                } else {
                    eq2[i] = mod_hat(eq[i], m);
                }
            }
            eq2[kc] = mod_hat(eq[kc], m);
            debug_assert_eq!(eq2[col].abs(), 1, "mod-hat of the pivot must be ±1");
            // Substitute the pivot out of every row (including `eq`).
            let c = eq[col];
            let s = if eq2[col] > 0 { 1 } else { -1 };
            let mut eq2n = eq2.clone();
            if s < 0 {
                for v in eq2n.iter_mut() {
                    *v = -*v;
                }
            }
            let fold = |r: &mut Row| {
                let cc = r[col];
                if cc != 0 {
                    for (ri, ei) in r.iter_mut().zip(eq2n.iter()) {
                        *ri -= cc * ei;
                    }
                }
            };
            let _ = c;
            for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
                fold(r);
            }
            fold(&mut eq);
            self.eqs.push(eq);
            self.remove_col(col);
        }
        Ok(true)
    }

    /// Drops trivial rows; returns `false` on a syntactic contradiction.
    fn normalize_ineqs(&mut self) -> bool {
        let k = self.n;
        let mut ok = true;
        self.ineqs.retain_mut(|r| {
            let g = r[..k].iter().fold(0, |a, &c| gcd(a, c));
            if g == 0 {
                if r[k] < 0 {
                    ok = false;
                }
                return false;
            }
            if g > 1 {
                for c in r[..k].iter_mut() {
                    *c /= g;
                }
                r[k] = floor_div(r[k], g);
            }
            true
        });
        self.ineqs.sort();
        self.ineqs.dedup();
        ok
    }

    /// Interval propagation: best-known integer ranges for all variables.
    ///
    /// When plain per-row propagation stalls (every row bounding a
    /// variable also contains another unbounded variable), single-variable
    /// bounds are derived by pairwise Fourier–Motzkin combination and
    /// propagation resumes — this closes systems like
    /// `0 <= o - d <= 5 and 0 <= o + 5d <= 35` that have no direct
    /// one-variable rows.
    fn propagate_bounds(&self) -> Result<Vec<(Option<i64>, Option<i64>)>> {
        let mut rows = self.ineqs.clone();
        let n = self.n;
        // Derivation: for every variable, combine each (lower, upper) row
        // pair; keep combinations that mention exactly one variable.
        let mut derived: Vec<Row> = Vec::new();
        for v in 0..n {
            let lowers: Vec<&Row> = rows.iter().filter(|r| r[v] > 0).collect();
            let uppers: Vec<&Row> = rows.iter().filter(|r| r[v] < 0).collect();
            if lowers.len() * uppers.len() > 64 {
                continue;
            }
            for l in &lowers {
                for u in &uppers {
                    let a = l[v] as i128;
                    let b = -(u[v] as i128);
                    let mut row = Row::with_capacity(n + 1);
                    let mut ok = true;
                    for (x, y) in l.iter().zip(u.iter()) {
                        let val = b * (*x as i128) + a * (*y as i128);
                        match i64::try_from(val) {
                            Ok(v) => row.push(v),
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    let nonzero = (0..n).filter(|&j| row[j] != 0).count();
                    if nonzero == 1 && !rows.contains(&row) && !derived.contains(&row) {
                        derived.push(row);
                    }
                }
            }
        }
        rows.extend(derived);
        let mut lo: Vec<Option<i128>> = vec![None; n];
        let mut hi: Vec<Option<i128>> = vec![None; n];
        for _round in 0..64 {
            let mut changed = false;
            for r in &rows {
                for j in 0..n {
                    let aj = r[j];
                    if aj == 0 {
                        continue;
                    }
                    // a_j x_j >= -c - sum_{i != j} a_i x_i; a universally
                    // valid implied bound uses the *maximum* of the sum.
                    let mut rest_max: i128 = r[n] as i128;
                    let mut bounded = true;
                    for i in 0..n {
                        if i == j || r[i] == 0 {
                            continue;
                        }
                        let term = if r[i] > 0 {
                            hi[i].map(|v| r[i] as i128 * v)
                        } else {
                            lo[i].map(|v| r[i] as i128 * v)
                        };
                        match term {
                            Some(t) => rest_max += t,
                            None => {
                                bounded = false;
                                break;
                            }
                        }
                    }
                    if !bounded {
                        continue;
                    }
                    // a_j x_j >= -(c + rest_max)
                    let rhs = -rest_max;
                    if aj > 0 {
                        let b = cd128(rhs, aj as i128);
                        if lo[j].is_none_or(|cur| b > cur) {
                            lo[j] = Some(b);
                            changed = true;
                        }
                    } else {
                        let b = fd128(rhs, aj as i128);
                        if hi[j].is_none_or(|cur| b < cur) {
                            hi[j] = Some(b);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
            // Detect emptiness early.
            for j in 0..n {
                if let (Some(l), Some(h)) = (lo[j], hi[j]) {
                    if l > h {
                        return Ok(vec![(Some(1), Some(0)); n]);
                    }
                }
            }
        }
        let clamp = |v: Option<i128>| -> Result<Option<i64>> {
            match v {
                None => Ok(None),
                Some(x) => {
                    if x > i64::MAX as i128 || x < i64::MIN as i128 {
                        Ok(None)
                    } else {
                        Ok(Some(x as i64))
                    }
                }
            }
        };
        let mut out = Vec::with_capacity(n);
        for j in 0..n {
            out.push((clamp(lo[j])?, clamp(hi[j])?));
        }
        Ok(out)
    }

    /// Substitutes `var = val`, folding the column into the constant,
    /// drawing the row containers from `arena` instead of allocating
    /// fresh ones — the recursive counter's enumeration loop builds and
    /// drops one tableau per enumerated value, so the containers cycle
    /// through the pool instead of the allocator. Fails with
    /// [`Error::Overflow`] when the folded constant leaves i64.
    fn fix_with(&self, var: usize, val: i64, arena: &mut RowArena) -> Result<Tableau> {
        let n = self.n;
        let mut t = Tableau {
            n: n - 1,
            eqs: arena.take(self.eqs.len()),
            ineqs: arena.take(self.ineqs.len()),
        };
        let conv = |r: &Row| -> Result<Row> {
            let mut out = Row::with_capacity(n);
            for (i, &c) in r.iter().enumerate() {
                if i == var {
                    continue;
                }
                out.push(c);
            }
            let k = out.len() - 1;
            let folded = (out[k] as i128) + (r[var] as i128) * (val as i128);
            out[k] = i64::try_from(folded).map_err(|_| Error::Overflow)?;
            Ok(out)
        };
        for r in &self.eqs {
            match conv(r) {
                Ok(row) => t.eqs.push(row),
                Err(e) => {
                    arena.reclaim(t);
                    return Err(e);
                }
            }
        }
        for r in &self.ineqs {
            match conv(r) {
                Ok(row) => t.ineqs.push(row),
                Err(e) => {
                    arena.reclaim(t);
                    return Err(e);
                }
            }
        }
        Ok(t)
    }
}

/// Pool of `Vec<Row>` containers cycled through the recursive counter's
/// cold path.
///
/// Rows up to 16 columns wide store their coefficients inline
/// ([`crate::row`]), so the only heap traffic of a tableau clone is the
/// two `Vec<Row>` containers themselves — exactly what `fix`-per-value
/// enumeration churns. The pool keeps dropped containers (cleared, with
/// their capacity) for the next clone at the same recursion depth.
pub(crate) struct RowArena {
    pool: Vec<Vec<Row>>,
}

impl RowArena {
    /// Containers kept across [`RowArena::put`]; beyond this they drop.
    const MAX_POOLED: usize = 64;

    pub(crate) fn new() -> RowArena {
        RowArena { pool: Vec::new() }
    }

    /// An empty container with room for `cap` rows, reusing a pooled
    /// allocation when one is available.
    fn take(&mut self, cap: usize) -> Vec<Row> {
        match self.pool.pop() {
            Some(mut v) => {
                v.reserve(cap);
                v
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Returns a container (cleared) to the pool.
    fn put(&mut self, mut v: Vec<Row>) {
        if self.pool.len() < Self::MAX_POOLED {
            v.clear();
            self.pool.push(v);
        }
    }

    /// Returns a finished tableau's containers to the pool.
    fn reclaim(&mut self, t: Tableau) {
        self.put(t.eqs);
        self.put(t.ineqs);
    }
}

/// `Σ_{x=0}^{n-1} floor((a·x + b) / m)` in `O(log)` time (the classical
/// Euclidean floor-sum recurrence), exact over `i128`. Requires `m > 0`;
/// `a` and `b` may be negative. Returns `None` when an intermediate
/// product exceeds `i128` (the caller maps this to [`Error::Overflow`]).
fn floor_sum(n: i128, m: i128, mut a: i128, mut b: i128) -> Option<i128> {
    debug_assert!(n >= 0 && m > 0);
    let tri = |n: i128| -> Option<i128> {
        // n*(n-1)/2 without overflowing the intermediate product.
        if n % 2 == 0 {
            (n / 2).checked_mul(n - 1)
        } else {
            n.checked_mul((n - 1) / 2)
        }
    };
    let mut ans: i128 = 0;
    if a < 0 {
        let a2 = a.rem_euclid(m);
        ans = ans.checked_sub(tri(n)?.checked_mul((a2 - a) / m)?)?;
        a = a2;
    }
    if b < 0 {
        let b2 = b.rem_euclid(m);
        ans = ans.checked_sub(n.checked_mul((b2 - b) / m)?)?;
        b = b2;
    }
    let (mut n, mut m, mut a, mut b) = (n, m, a, b);
    loop {
        if a >= m {
            ans = ans.checked_add(tri(n)?.checked_mul(a / m)?)?;
            a %= m;
        }
        if b >= m {
            ans = ans.checked_add(n.checked_mul(b / m)?)?;
            b %= m;
        }
        let y_max = a.checked_mul(n)?.checked_add(b)?;
        if y_max < m {
            break;
        }
        // Count lattice points under the line by swapping the axes.
        n = y_max / m;
        b = y_max % m;
        std::mem::swap(&mut m, &mut a);
    }
    Some(ans)
}

/// Per-variable `(lo, hi)` interval bounds, read off single-variable rows.
/// Held as i128 so bounds derived from i64-extreme rows (e.g. `x >= 2^63`
/// after negating an `i64::MIN` constant) stay exact; each stored bound has
/// magnitude at most `2^63`, so interval widths fit comfortably.
type VarBounds = Vec<(Option<i128>, Option<i128>)>;

/// Per-variable interval bounds read off single-variable rows only.
/// Returns `(lo, hi)` options and the indices of rows touching 2+ vars.
fn scan_rows(t: &Tableau) -> Option<(VarBounds, Vec<usize>)> {
    let n = t.n;
    let mut bounds: VarBounds = vec![(None, None); n];
    let mut wide: Vec<usize> = Vec::new();
    for (idx, r) in t.ineqs.iter().enumerate() {
        let rs = r.as_slice();
        let mut var = usize::MAX;
        let mut multi = false;
        for (j, &c) in rs[..n].iter().enumerate() {
            if c != 0 {
                if var == usize::MAX {
                    var = j;
                } else {
                    multi = true;
                    break;
                }
            }
        }
        if multi {
            // Always finish the scan: truncating here would hand the caller
            // an incomplete `bounds`/`wide` picture and silently drop
            // constraints from the slab analysis. Parallel-direction
            // checking in `count_fast` rejects unsuitable systems cheaply
            // regardless of how many wide rows there are.
            wide.push(idx);
            continue;
        }
        if var == usize::MAX {
            // Constant row: infeasible if negative.
            if rs[n] < 0 {
                return None;
            }
            continue;
        }
        let a = rs[var] as i128;
        let c = rs[n] as i128;
        if a > 0 {
            let b = cd128(-c, a);
            let cur = &mut bounds[var].0;
            if cur.is_none_or(|v| b > v) {
                *cur = Some(b);
            }
        } else {
            let b = fd128(-c, a);
            let cur = &mut bounds[var].1;
            if cur.is_none_or(|v| b < v) {
                *cur = Some(b);
            }
        }
    }
    Some((bounds, wide))
}

/// Counts an axis-aligned box given per-variable bounds. `limit` (the
/// emptiness-probe mode) makes one-sided/free variables saturate instead
/// of erroring, mirroring [`count_single`].
fn count_box(bounds: &[(Option<i128>, Option<i128>)], limit: Option<u128>) -> Result<u128> {
    let mut prod: u128 = 1;
    for &(lo, hi) in bounds {
        let w = match (lo, hi) {
            (Some(l), Some(h)) => {
                if h < l {
                    return Ok(0);
                }
                (h - l + 1) as u128
            }
            _ => match limit {
                Some(l) => l.max(1),
                None => return Err(Error::Unbounded("cannot count a one-sided interval".into())),
            },
        };
        prod = match limit {
            Some(_) => prod.saturating_mul(w),
            None => prod.checked_mul(w).ok_or(Error::Overflow)?,
        };
    }
    Ok(prod)
}

/// Enumeration budget for the outer dimensions of the box∩halfspace path.
const HALFSPACE_ENUM_LIMIT: u128 = 2_000_000;

/// Counts `{ x ∈ box : Σ aᵢ·xᵢ + c ≥ 0 }` exactly. `vars` holds the
/// `(lo, hi, a)` triples of the variables the halfspace touches; the box
/// factor of untouched variables is applied by the caller. Dimensions
/// beyond the last two are enumerated (cheap offset arithmetic only); the
/// final two collapse to a closed form built on [`floor_sum`].
fn count_halfspace_rec(vars: &[(i128, i128, i64)], c: i128) -> Result<u128> {
    match vars {
        [] => Ok((c >= 0) as u128),
        [(lo, hi, a)] => {
            // a·x + c >= 0 over [lo, hi].
            let (mut lo, mut hi) = (*lo, *hi);
            let a = *a as i128;
            if a > 0 {
                lo = lo.max(cd128(-c, a));
            } else {
                hi = hi.min(fd128(-c, a));
            }
            Ok((hi - lo + 1).max(0) as u128)
        }
        [(x0, x1, xa), (y0, y1, ya)] => {
            // Normalize both coefficients positive by mirroring axes.
            let (mut x0, mut x1, mut a) = (*x0, *x1, *xa as i128);
            let (mut y0, mut y1, mut b) = (*y0, *y1, *ya as i128);
            if a < 0 {
                (x0, x1, a) = (-x1, -x0, -a);
            }
            if b < 0 {
                (y0, y1, b) = (-y1, -y0, -b);
            }
            let w = y1 - y0 + 1;
            if w <= 0 || x1 < x0 {
                return Ok(0);
            }
            // cnt(x) = clamp(y1 + 1 + floor((a x + c)/b), 0, w), increasing
            // in x. s0: first x with cnt > 0; s1: first x with cnt = w.
            let thresh = |y: i128| -> Result<i128> {
                y.checked_mul(b)
                    .and_then(|v| v.checked_neg())
                    .and_then(|v| v.checked_sub(c))
                    .ok_or(Error::Overflow)
            };
            let s0 = cd128(thresh(y1)?, a);
            let s1 = cd128(thresh(y0)?, a);
            let full_from = s1.max(x0);
            let full = (x1 - full_from + 1).max(0) as u128;
            let mid_lo = s0.max(x0);
            let mid_hi = (s1 - 1).min(x1);
            let mut total = full.checked_mul(w as u128).ok_or(Error::Overflow)?;
            if mid_lo <= mid_hi {
                let n = mid_hi - mid_lo + 1;
                let off = a
                    .checked_mul(mid_lo)
                    .and_then(|v| v.checked_add(c))
                    .ok_or(Error::Overflow)?;
                let sum_f = floor_sum(n, b, a, off).ok_or(Error::Overflow)?;
                let mid = (y1 + 1)
                    .checked_mul(n)
                    .and_then(|v| v.checked_add(sum_f))
                    .ok_or(Error::Overflow)?;
                debug_assert!(mid >= 0);
                total = total.checked_add(mid as u128).ok_or(Error::Overflow)?;
            }
            Ok(total)
        }
        [head @ .., last] => {
            // Enumerate the trailing variable; the caller sorts widest
            // ranges first so the two closed-form positions absorb the
            // bulk of the volume and enumeration stays shallow.
            let (lo, hi, a) = (last.0, last.1, last.2 as i128);
            let mut total: u128 = 0;
            for v in lo..=hi {
                let off = a
                    .checked_mul(v)
                    .and_then(|x| x.checked_add(c))
                    .ok_or(Error::Overflow)?;
                total = total
                    .checked_add(count_halfspace_rec(head, off)?)
                    .ok_or(Error::Overflow)?;
            }
            Ok(total)
        }
    }
}

/// Floor division over `i128`.
fn fd128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division over `i128`.
fn cd128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Union-find over variables connected by shared constraints.
fn components(t: &Tableau) -> Vec<Vec<usize>> {
    let n = t.n;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != c {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for r in t.ineqs.iter().chain(t.eqs.iter()) {
        let mut first: Option<usize> = None;
        for (j, &coef) in r.iter().enumerate().take(n) {
            if coef != 0 {
                match first {
                    None => first = Some(j),
                    Some(f) => {
                        let (a, b) = (find(&mut parent, f), find(&mut parent, j));
                        if a != b {
                            parent[a] = b;
                        }
                    }
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let r = find(&mut parent, j);
        groups[r].push(j);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Extracts the subsystem touching exactly the variables in `vars`,
/// drawing row containers from `arena`.
fn subsystem_with(t: &Tableau, vars: &[usize], arena: &mut RowArena) -> Tableau {
    let mut sub = Tableau {
        n: vars.len(),
        eqs: arena.take(0),
        ineqs: arena.take(0),
    };
    let conv = |r: &Row| -> Option<Row> {
        // Row belongs to this component iff all its nonzero vars are inside.
        let mut out = Row::zeros(vars.len() + 1);
        for (new_i, &old_i) in vars.iter().enumerate() {
            out[new_i] = r[old_i];
        }
        out[vars.len()] = r[t.n];
        let touches = (0..t.n).any(|j| r[j] != 0 && vars.contains(&j));
        let outside = (0..t.n).any(|j| r[j] != 0 && !vars.contains(&j));
        if touches && !outside {
            Some(out)
        } else {
            None
        }
    };
    sub.ineqs.extend(t.ineqs.iter().filter_map(conv));
    sub.eqs.extend(t.eqs.iter().filter_map(conv));
    sub
}

/// Counts a single variable's feasible interval directly from the rows.
/// `limit` being set means the caller only needs a lower bound (emptiness
/// checks), so unbounded-but-satisfiable intervals saturate to the limit.
fn count_single(t: &Tableau, limit: Option<u128>) -> Result<u128> {
    debug_assert_eq!(t.n, 1);
    // Bounds in i128 (no sentinels): negating an i64::MIN constant is
    // representable, and an absent side stays distinguishable from a row
    // that genuinely pins the extreme value.
    let mut lo: Option<i128> = None;
    let mut hi: Option<i128> = None;
    for r in &t.ineqs {
        let a = r[0] as i128;
        let c = r[1] as i128;
        if a > 0 {
            let b = cd128(-c, a);
            if lo.is_none_or(|v| b > v) {
                lo = Some(b);
            }
        } else if a < 0 {
            let b = fd128(-c, a);
            if hi.is_none_or(|v| b < v) {
                hi = Some(b);
            }
        } else if c < 0 {
            return Ok(0);
        }
    }
    match (lo, hi) {
        (Some(l), Some(h)) => Ok(if h < l { 0 } else { (h - l + 1) as u128 }),
        _ => match limit {
            Some(l) => Ok(l.max(1)),
            None => Err(Error::Unbounded("cannot count a one-sided interval".into())),
        },
    }
}

/// Closed form for an arbitrary two-variable projection whose inner
/// variable has (after merging parallel rows) exactly one lower and one
/// upper bound — any integer coefficients, not just ±1.
///
/// With lower row `aₗ·x + p·y + cₗ ≥ 0` (`p > 0`) and upper row
/// `aᵤ·x − q·y + cᵤ ≥ 0` (`q > 0`), the per-`x` count is
///
/// ```text
/// #y(x) = ⌊(aᵤx + cᵤ)/q⌋ − ⌈−(aₗx + cₗ)/p⌉ + 1
///       = ⌊(aᵤx + cᵤ)/q⌋ + ⌊(aₗx + cₗ)/p⌋ + 1
/// ```
///
/// which is nonnegative exactly where the *rational* interval is
/// nonempty, i.e. on the half-line `(p·aᵤ + q·aₗ)·x + (p·cᵤ + q·cₗ) ≥ 0`
/// (cross-multiplying with positive denominators). Restricting `x` to
/// that region therefore drops only zero-count values, and the sum
/// telescopes into two Euclidean [`floor_sum`]s — `O(log)` regardless of
/// range width. Returns `Ok(None)` when the structure does not match
/// (several irreducible bounds on both orientations) and
/// [`Error::Overflow`] when the total exceeds the checked-i128 range.
fn count_pair_series(t: &Tableau, ranges: &[(Option<i64>, Option<i64>)]) -> Result<Option<u128>> {
    debug_assert_eq!(t.n, 2);
    if !t.eqs.is_empty() {
        return Ok(None);
    }
    // Try both orientations: either variable may be the closed-form inner.
    for (x, y) in [(0usize, 1usize), (1usize, 0usize)] {
        // Partition rows; merge parallel y-rows (same (a, b) after the
        // gcd normalization `normalize_ineqs` already applied) keeping
        // the strongest constant — smaller c is tighter for `… + c ≥ 0`.
        let mut lowers: Vec<(i128, i128, i128)> = Vec::new(); // (a_x, b_y>0, c)
        let mut uppers: Vec<(i128, i128, i128)> = Vec::new(); // (a_x, b_y<0, c)
        let mut x_rows = Vec::new();
        for r in &t.ineqs {
            let (a, b, c) = (r[x] as i128, r[y] as i128, r[2] as i128);
            if b == 0 {
                x_rows.push(r);
                continue;
            }
            let side = if b > 0 { &mut lowers } else { &mut uppers };
            match side.iter_mut().find(|(pa, pb, _)| *pa == a && *pb == b) {
                Some(row) => row.2 = row.2.min(c),
                None => side.push((a, b, c)),
            }
        }
        if lowers.len() != 1 || uppers.len() != 1 {
            continue;
        }
        let (mut xlo, mut xhi) = match ranges[x] {
            (Some(l), Some(h)) => (l as i128, h as i128),
            _ => continue,
        };
        // Tighten the x range with x-only rows (i128: `-c` must not wrap).
        for r in &x_rows {
            let a = r[x] as i128;
            let c = r[2] as i128;
            if a > 0 {
                xlo = xlo.max(cd128(-c, a));
            } else if a < 0 {
                xhi = xhi.min(fd128(-c, a));
            } else if c < 0 {
                return Ok(Some(0));
            }
        }
        let (al, p, cl) = lowers[0];
        let (au, nq, cu) = uppers[0];
        let q = -nq;
        debug_assert!(p > 0 && q > 0);
        // Rational-feasibility region: A·x + C >= 0. i64-sourced factors
        // keep every product within i128 (|v| <= 2^63, products <= 2^126).
        let a_reg = p
            .checked_mul(au)
            .and_then(|v| v.checked_add(q.checked_mul(al)?))
            .ok_or(Error::Overflow)?;
        let c_reg = p
            .checked_mul(cu)
            .and_then(|v| v.checked_add(q.checked_mul(cl)?))
            .ok_or(Error::Overflow)?;
        if a_reg > 0 {
            xlo = xlo.max(cd128(-c_reg, a_reg));
        } else if a_reg < 0 {
            xhi = xhi.min(fd128(-c_reg, a_reg));
        } else if c_reg < 0 {
            return Ok(Some(0));
        }
        if xhi < xlo {
            return Ok(Some(0));
        }
        // Σ_{x=xlo}^{xhi} #y(x): two floor-sums plus the +1 term. Every
        // intermediate is checked — ranges near i64 width must surface as
        // Error::Overflow, not wrap.
        let n = xhi - xlo + 1;
        let off_u = au
            .checked_mul(xlo)
            .and_then(|v| v.checked_add(cu))
            .ok_or(Error::Overflow)?;
        let off_l = al
            .checked_mul(xlo)
            .and_then(|v| v.checked_add(cl))
            .ok_or(Error::Overflow)?;
        let sum_u = floor_sum(n, q, au, off_u).ok_or(Error::Overflow)?;
        let sum_l = floor_sum(n, p, al, off_l).ok_or(Error::Overflow)?;
        let total = sum_u
            .checked_add(sum_l)
            .and_then(|v| v.checked_add(n))
            .ok_or(Error::Overflow)?;
        debug_assert!(total >= 0, "per-x counts are nonnegative on the region");
        note(FastPathKind::PairChain);
        return Ok(Some(total as u128));
    }
    Ok(None)
}

/// Closed-form dispatch: returns `Some(count)` when the (normalized,
/// equality-free) tableau is an axis-aligned box or a box intersected with
/// a single slab (one halfspace, or two-plus parallel ones), `None` when
/// the shape needs the recursive counter. `work` shares [`count_rec`]'s
/// effort budget: the halfspace enumeration charges its loop count.
/// Total value-table cells (sum of variable range widths) the pair-chain
/// DP may allocate before deferring to the recursive counter.
const PAIR_CHAIN_CELL_LIMIT: u128 = 1 << 18;

/// Value-table DP over a tableau whose constraint graph is a forest of
/// two-variable links.
///
/// Every inequality may touch at most two variables; distinct variable
/// pairs are the edges of a graph over the variables, and when that
/// graph is acyclic each tree closes bottom-up: `f_v(x)` = number of
/// assignments to `v`'s subtree consistent with `v = x`, computed per
/// child as a *prefix-sum range query* — the rows on the `(parent,
/// child)` edge pin the child to one contiguous interval for each parent
/// value, so a child's whole table folds into its parent in
/// `O(w_parent + w_child)`. The answer is the product over trees of `Σ_x f_root(x)`
/// (times plain interval widths for edge-free variables). Total cost is
/// linear in the summed range widths, guarded by
/// [`PAIR_CHAIN_CELL_LIMIT`], where recursion would pay a tableau
/// rebuild per enumerated value.
///
/// Single-variable rows are folded into `ranges` (the caller's
/// [`Tableau::propagate_bounds`] output) already; restricting each
/// variable to its derived range is sound because derived bounds are
/// implied. Returns `Ok(None)` — fall back to recursion — on any wider
/// row, a cycle, an unbounded variable, or a too-large table.
fn count_pair_chain(
    t: &Tableau,
    ranges: &[(Option<i64>, Option<i64>)],
    work: &mut u64,
) -> Result<Option<u128>> {
    if !t.eqs.is_empty() {
        return Ok(None);
    }
    let n = t.n;
    // Edges: canonical (lo, hi) variable pairs with their row indices.
    let mut edges: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    for (ri, r) in t.ineqs.iter().enumerate() {
        let mut vars = (0..n).filter(|&j| r[j] != 0);
        let (a, b) = match (vars.next(), vars.next(), vars.next()) {
            (Some(a), Some(b), None) => (a, b),
            (_, _, Some(_)) => return Ok(None), // 3+ variables: not a pair graph
            _ => continue,                      // 0/1-var rows live in `ranges`
        };
        match edges.iter_mut().find(|(ea, eb, _)| (*ea, *eb) == (a, b)) {
            Some((_, _, rows)) => rows.push(ri),
            None => edges.push((a, b, vec![ri])),
        }
    }
    if edges.is_empty() {
        return Ok(None); // pure box: count_fast owns that shape
    }
    // Acyclicity check (union-find over distinct pairs).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        parent[x] = r;
        r
    }
    for &(a, b, _) in &edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            return Ok(None); // cycle: intervals are no longer independent
        }
        parent[ra] = rb;
    }
    // Every edge variable needs a finite range within the table budget.
    let mut lo = vec![0i64; n];
    let mut width = vec![0usize; n]; // 0 = not on any edge
    let mut cells: u128 = 0;
    for &(a, b, _) in &edges {
        for v in [a, b] {
            if width[v] != 0 {
                continue;
            }
            let (Some(l), Some(h)) = ranges[v] else {
                return Ok(None);
            };
            let w = h as i128 - l as i128 + 1;
            debug_assert!(w >= 1, "caller rejected empty ranges");
            cells += w as u128;
            if cells > PAIR_CHAIN_CELL_LIMIT {
                return Ok(None);
            }
            lo[v] = l;
            width[v] = w as usize;
        }
    }
    *work = work.saturating_add(cells.min(u64::MAX as u128) as u64);
    if *work > WORK_LIMIT {
        return Err(Error::TooComplex("counting work limit exceeded".into()));
    }
    // Adjacency over the forest.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (neighbor, edge idx)
    for (ei, &(a, b, _)) in edges.iter().enumerate() {
        adj[a].push((b, ei));
        adj[b].push((a, ei));
    }
    // Interval a row pins `child` to, given `pval` for the other
    // variable; intersected into (clo, chi).
    let pin = |r: &Row, child: usize, other: usize, pval: i64, clo: &mut i128, chi: &mut i128| {
        let ac = r[child] as i128;
        let c = (r[other] as i128) * (pval as i128) + (r[n] as i128);
        if ac > 0 {
            *clo = (*clo).max(cd128(-c, ac));
        } else {
            *chi = (*chi).min(fd128(-c, ac));
        }
    };
    let mut tables: Vec<Vec<u128>> = vec![Vec::new(); n];
    let mut prefix: Vec<u128> = Vec::new();
    let mut total: u128 = 1;
    let mut visited = vec![false; n];
    for root in 0..n {
        if width[root] == 0 || visited[root] {
            continue;
        }
        // Iterative post-order: push children first, fold on unwind.
        let mut order: Vec<(usize, usize)> = Vec::new(); // (var, parent)
        let mut stack = vec![(root, usize::MAX)];
        while let Some((v, p)) = stack.pop() {
            visited[v] = true;
            order.push((v, p));
            for &(u, _) in &adj[v] {
                if u != p {
                    stack.push((u, v));
                }
            }
        }
        for &(v, _) in order.iter().rev() {
            tables[v] = vec![1u128; width[v]];
            for &(u, ei) in &adj[v] {
                if tables[u].is_empty() {
                    continue; // u is v's parent (not yet folded)
                }
                // Fold child u into v via prefix sums over u's table.
                prefix.clear();
                prefix.reserve(width[u] + 1);
                prefix.push(0);
                for &f in &tables[u] {
                    let last = *prefix.last().unwrap();
                    prefix.push(last.checked_add(f).ok_or(Error::Overflow)?);
                }
                let rows = &edges[ei].2;
                for (i, fv) in tables[v].iter_mut().enumerate() {
                    if *fv == 0 {
                        continue;
                    }
                    let pval = lo[v] + i as i64;
                    let (mut clo, mut chi) = (lo[u] as i128, lo[u] as i128 + width[u] as i128 - 1);
                    for &ri in rows {
                        pin(&t.ineqs[ri], u, v, pval, &mut clo, &mut chi);
                    }
                    let s = if clo > chi {
                        0
                    } else {
                        let a = (clo - lo[u] as i128) as usize;
                        let b = (chi - lo[u] as i128) as usize;
                        prefix[b + 1] - prefix[a]
                    };
                    *fv = fv.checked_mul(s).ok_or(Error::Overflow)?;
                }
                tables[u] = Vec::new(); // release folded child storage
            }
        }
        let mut tree: u128 = 0;
        for &f in &tables[root] {
            tree = tree.checked_add(f).ok_or(Error::Overflow)?;
        }
        tables[root] = Vec::new();
        if tree == 0 {
            note(FastPathKind::PairChain);
            return Ok(Some(0));
        }
        total = total.checked_mul(tree).ok_or(Error::Overflow)?;
    }
    // Variables on no edge contribute their plain interval width (their
    // single-variable rows are already folded into `ranges`).
    for v in 0..n {
        if width[v] != 0 {
            continue;
        }
        let (Some(l), Some(h)) = ranges[v] else {
            return Ok(None);
        };
        total = total
            .checked_mul((h as i128 - l as i128 + 1) as u128)
            .ok_or(Error::Overflow)?;
    }
    note(FastPathKind::PairChain);
    Ok(Some(total))
}

fn count_fast(t: &Tableau, limit: Option<u128>, work: &mut u64) -> Result<Option<u128>> {
    if !t.eqs.is_empty() {
        return Ok(None);
    }
    let Some((mut bounds, wide)) = scan_rows(t) else {
        return Ok(Some(0));
    };
    if wide.is_empty() {
        let c = count_box(&bounds, limit)?;
        note(FastPathKind::Box);
        return Ok(Some(c));
    }
    // Group the multi-variable rows by the linear expression they bound
    // (up to sign): each group is one slab `lo <= e <= hi` (one halfspace
    // is the degenerate slab with a side missing). A single group is the
    // classic skewed time-stamp shape of TENET dataflows (`t = p0 + p1 +
    // k` with `k` boxed); two-plus *independent* directions form the
    // zonotope-like shapes that used to fall back to the recursive
    // counter.
    let n = t.n;
    let mut groups: Vec<SlabGroup> = Vec::new();
    for &wi in &wide {
        let r = t.ineqs[wi].as_slice();
        let mut matched = false;
        for g in groups.iter_mut() {
            if r[..n] == g.dir[..] {
                // dir·x + c >= 0  =>  e >= -c.
                let b = -(r[n] as i128);
                if g.lo.is_none_or(|cur| b > cur) {
                    g.lo = Some(b);
                }
                matched = true;
                break;
            } else if r[..n]
                .iter()
                .zip(g.dir.iter())
                .all(|(a, d)| *a as i128 == -(*d as i128))
            {
                // -dir·x + c >= 0  =>  e <= c.
                let b = r[n] as i128;
                if g.hi.is_none_or(|cur| b < cur) {
                    g.hi = Some(b);
                }
                matched = true;
                break;
            }
        }
        if !matched {
            if groups.len() >= MAX_SLAB_GROUPS {
                return Ok(None); // too many directions: fall back
            }
            groups.push(SlabGroup {
                dir: r[..n].to_vec(),
                lo: Some(-(r[n] as i128)),
                hi: None,
            });
        }
    }
    // Derive bounds implied by the slab rows for variables the box leaves
    // open (e.g. the triangle `0 <= x, 0 <= y, x + y <= 3` bounds x and y
    // only through the wide row). Two passes propagate chains; derived
    // bounds are implied, so adding them never changes the set.
    for _ in 0..2 {
        for &wi in &wide {
            let r = t.ineqs[wi].as_slice();
            for v in 0..n {
                let av = r[v];
                if av == 0 {
                    continue;
                }
                // max over the box of (c + Σ_{i≠v} aᵢ·xᵢ).
                let mut rest_max: i128 = r[n] as i128;
                let mut bounded = true;
                for i in 0..n {
                    if i == v || r[i] == 0 {
                        continue;
                    }
                    let term = if r[i] > 0 {
                        bounds[i].1.map(|h| r[i] as i128 * h)
                    } else {
                        bounds[i].0.map(|l| r[i] as i128 * l)
                    };
                    match term {
                        Some(x) => rest_max += x,
                        None => {
                            bounded = false;
                            break;
                        }
                    }
                }
                if !bounded {
                    continue;
                }
                // The row implies av·x_v >= -rest_max for feasible points.
                // Derived bounds are optional tightenings, so only adopt
                // ones inside the i64 envelope — keeping the invariant that
                // every stored bound has magnitude <= 2^63.
                if av > 0 {
                    let b = cd128(-rest_max, av as i128);
                    if i64::try_from(b).is_ok() && bounds[v].0.is_none_or(|cur| b > cur) {
                        bounds[v].0 = Some(b);
                    }
                } else {
                    let b = fd128(-rest_max, av as i128);
                    if i64::try_from(b).is_ok() && bounds[v].1.is_none_or(|cur| b < cur) {
                        bounds[v].1 = Some(b);
                    }
                }
            }
        }
    }
    if groups.len() >= 2 {
        return count_multi_slab(&bounds, &groups, limit, work);
    }
    let SlabGroup {
        dir,
        lo: slab_lo,
        hi: slab_hi,
    } = groups.swap_remove(0);
    // Split variables into slab participants and pure box factors.
    let mut hs: Vec<(i128, i128, i64)> = Vec::new();
    let mut box_bounds: Vec<(Option<i128>, Option<i128>)> = Vec::new();
    let mut e_min: i128 = 0;
    let mut e_max: i128 = 0;
    for v in 0..n {
        if dir[v] == 0 {
            box_bounds.push(bounds[v]);
            continue;
        }
        match bounds[v] {
            (Some(l), Some(h)) => {
                if h < l {
                    return Ok(Some(0));
                }
                if dir[v] == i64::MIN {
                    return Ok(None); // coefficient not negatable below
                }
                hs.push((l, h, dir[v]));
                let a = dir[v] as i128;
                let (tmin, tmax) = if a > 0 { (l, h) } else { (h, l) };
                e_min = a
                    .checked_mul(tmin)
                    .and_then(|t| e_min.checked_add(t))
                    .ok_or(Error::Overflow)?;
                e_max = a
                    .checked_mul(tmax)
                    .and_then(|t| e_max.checked_add(t))
                    .ok_or(Error::Overflow)?;
            }
            _ => return Ok(None), // slab variable not boxed: fall back
        }
    }
    let lo = slab_lo.unwrap_or(e_min).max(e_min);
    let hi = slab_hi.unwrap_or(e_max).min(e_max);
    if hi < lo {
        return Ok(Some(0));
    }
    if limit.is_some() {
        // Emptiness probe. When every slab coefficient is ±1, e attains
        // every integer of [e_min, e_max] over the box (a Minkowski sum of
        // unit-step integer intervals is an integer interval), so the
        // nonempty window [lo, hi] ⊆ [e_min, e_max] is attained and the
        // system is feasible iff the box factor is nonempty. Larger
        // coefficients can step over the window; defer those to the exact
        // machinery.
        if hs.iter().all(|&(_, _, a)| a.abs() == 1) {
            let factor = count_box(&box_bounds, limit)?;
            note(FastPathKind::Slab);
            return Ok(Some(factor));
        }
        return Ok(None);
    }
    let factor = count_box(&box_bounds, None)?;
    if factor == 0 {
        return Ok(Some(0));
    }
    // Widest ranges first: positions 0 and 1 are handled in closed form,
    // the rest are enumerated.
    hs.sort_by_key(|&(l, h, _)| std::cmp::Reverse(h - l));
    let mut enum_work: u128 = 1;
    for &(l, h, _) in hs.iter().skip(2) {
        enum_work = enum_work.saturating_mul((h - l + 1) as u128);
    }
    if enum_work > HALFSPACE_ENUM_LIMIT {
        return Ok(None);
    }
    // The enumerated dimensions cost real work even on the closed-form
    // path; charge them against the shared recursion budget.
    *work = work.saturating_add(enum_work.min(u64::MAX as u128) as u64);
    if *work > WORK_LIMIT {
        return Err(Error::TooComplex("counting work limit exceeded".into()));
    }
    // F(T) = #{x in the sub-box : e(x) <= T}, via the negated halfspace
    // -e + T >= 0; the slab count is the telescoping difference.
    let neg: Vec<(i128, i128, i64)> = hs.iter().map(|&(l, h, a)| (l, h, -a)).collect();
    let upper = count_halfspace_rec(&neg, hi)?;
    let lower = if lo > e_min {
        count_halfspace_rec(&neg, lo - 1)?
    } else {
        0
    };
    debug_assert!(upper >= lower);
    let inner = upper - lower;
    note(FastPathKind::Slab);
    Ok(Some(factor.checked_mul(inner).ok_or(Error::Overflow)?))
}

/// One direction's worth of wide rows: the slab `lo <= dir·x <= hi`
/// (either side may be absent — a halfspace).
struct SlabGroup {
    dir: Vec<i64>,
    lo: Option<i128>,
    hi: Option<i128>,
}

/// Cap on distinct slab directions the fast path will analyze; beyond it
/// the recursive counter takes over.
const MAX_SLAB_GROUPS: usize = 6;

/// Exactly counts a box intersected with `k >= 2` slabs of independent
/// directions, including *coupled* slabs that share variables.
///
/// A small enumeration set `E` of variables is chosen greedily so that
/// after pinning `E`, the slabs still touching two or more free
/// variables are pairwise variable-disjoint — only *shared* variables
/// are ever pinned, so two slabs coupled through one variable cost a
/// single odometer axis instead of a whole slab's worth. Each remaining
/// multi-variable slab closes independently with the same Euclidean
/// floor-sum telescoping the single-slab path uses (their free-variable
/// sets are disjoint, so the per-assignment counts multiply); every
/// other slab collapses to a *single-variable interval* (or a constant
/// feasibility check), which merely tightens that variable's box
/// bounds. Pinning proceeds by odometer over `E`'s box ranges with
/// cheap integer arithmetic only; no tableau is rebuilt anywhere.
///
/// Dispatch is recorded as [`FastPathKind::CoupledSlab`] when two or
/// more true slabs survive the pinning (the shapes the old greedy — pin
/// until one slab remains — enumerated much more widely), and
/// [`FastPathKind::MultiSlab`] otherwise.
///
/// Returns `Ok(None)` when the shape is unsuitable (unboxed slab
/// variables, enumeration too wide, extreme coefficients) — the caller
/// then falls back to the recursive counter.
fn count_multi_slab(
    bounds: &[(Option<i128>, Option<i128>)],
    groups: &[SlabGroup],
    limit: Option<u128>,
    work: &mut u64,
) -> Result<Option<u128>> {
    if limit.is_some() {
        // Emptiness probes keep their pre-existing recursive treatment:
        // the exact count below could be arbitrarily more work than the
        // first-point probe needs.
        return Ok(None);
    }
    let n = bounds.len();
    // Every slab variable must be boxed, and every coefficient negatable.
    for g in groups {
        for (v, &b) in bounds.iter().enumerate() {
            if g.dir[v] == 0 {
                continue;
            }
            if g.dir[v] == i64::MIN {
                return Ok(None);
            }
            match b {
                (Some(l), Some(h)) => {
                    if h < l {
                        return Ok(Some(0));
                    }
                }
                _ => return Ok(None),
            }
        }
    }
    // Attainable range of each slab expression over the box; clip the
    // stated windows to it (and detect emptiness).
    let mut windows: Vec<(i128, i128)> = Vec::with_capacity(groups.len());
    for g in groups {
        let (mut e_min, mut e_max) = (0i128, 0i128);
        for (v, &b) in bounds.iter().enumerate() {
            let a = g.dir[v] as i128;
            if a == 0 {
                continue;
            }
            let (l, h) = (b.0.unwrap(), b.1.unwrap());
            let (tmin, tmax) = if a > 0 { (l, h) } else { (h, l) };
            e_min = a
                .checked_mul(tmin)
                .and_then(|t| e_min.checked_add(t))
                .ok_or(Error::Overflow)?;
            e_max = a
                .checked_mul(tmax)
                .and_then(|t| e_max.checked_add(t))
                .ok_or(Error::Overflow)?;
        }
        let lo = g.lo.unwrap_or(e_min).max(e_min);
        let hi = g.hi.unwrap_or(e_max).min(e_max);
        if hi < lo {
            return Ok(Some(0));
        }
        windows.push((lo, hi));
    }
    let width = |v: usize| bounds[v].1.unwrap() - bounds[v].0.unwrap() + 1;
    let free_of = |g: &SlabGroup, in_e: &[bool]| -> usize {
        (0..n).filter(|&v| g.dir[v] != 0 && !in_e[v]).count()
    };
    // Greedy enumeration set: while some variable is *shared* by two or
    // more slabs that keep >= 2 free variables, pin the variable
    // covering the most such slabs (ties: narrowest range first — it
    // costs the least to enumerate). Pinning stops as soon as the
    // multi-variable slabs are pairwise disjoint on free variables:
    // disjoint slabs close independently, so nothing more need be
    // enumerated.
    let mut in_e = vec![false; n];
    loop {
        let multi: Vec<usize> = (0..groups.len())
            .filter(|&i| free_of(&groups[i], &in_e) >= 2)
            .collect();
        if multi.len() <= 1 {
            break;
        }
        let mut best: Option<(usize, usize, i128)> = None;
        for (v, &pinned) in in_e.iter().enumerate() {
            if pinned {
                continue;
            }
            let cov = multi.iter().filter(|&&i| groups[i].dir[v] != 0).count();
            if cov < 2 {
                continue;
            }
            let w = width(v);
            if best.is_none_or(|(_, bc, bw)| cov > bc || (cov == bc && w < bw)) {
                best = Some((v, cov, w));
            }
        }
        match best {
            Some((v, _, _)) => in_e[v] = true,
            // No shared variable left: the remaining multi-variable
            // slabs are pairwise disjoint and each closes on its own.
            None => break,
        }
    }
    let enum_vars: Vec<usize> = (0..n).filter(|&v| in_e[v]).collect();
    let kept: Vec<usize> = (0..groups.len())
        .filter(|&i| free_of(&groups[i], &in_e) >= 2)
        .collect();
    let kept_r: Vec<Vec<usize>> = kept
        .iter()
        .map(|&kj| {
            (0..n)
                .filter(|&v| groups[kj].dir[v] != 0 && !in_e[v])
                .collect()
        })
        .collect();
    debug_assert!(
        kept_r
            .iter()
            .enumerate()
            .all(|(i, a)| kept_r[..i].iter().all(|b| a.iter().all(|v| !b.contains(v)))),
        "kept slabs must be pairwise disjoint on free variables"
    );
    // Work guard: odometer volume × each kept slab's inner enumeration
    // (its dimensions beyond the two widest, like the single-slab path).
    let mut volume: u128 = 1;
    for &v in &enum_vars {
        volume = volume.saturating_mul(width(v) as u128);
    }
    let mut inner_work: u128 = 1;
    for r in &kept_r {
        let mut widths: Vec<i128> = r.iter().map(|&v| width(v)).collect();
        widths.sort_unstable_by_key(|&w| std::cmp::Reverse(w));
        for &w in widths.iter().skip(2) {
            inner_work = inner_work.saturating_mul(w as u128);
        }
    }
    let total_work = volume.saturating_mul(inner_work);
    if total_work > HALFSPACE_ENUM_LIMIT {
        return Ok(None);
    }
    *work = work.saturating_add(total_work.min(u64::MAX as u128) as u64);
    if *work > WORK_LIMIT {
        return Err(Error::TooComplex("counting work limit exceeded".into()));
    }
    // Variables free of E and touched by some slab get per-assignment
    // tightened bounds; vars touched by nothing contribute a constant box
    // factor.
    let touched: Vec<usize> = (0..n)
        .filter(|&v| !in_e[v] && groups.iter().any(|g| g.dir[v] != 0))
        .collect();
    let untouched: Vec<(Option<i128>, Option<i128>)> = (0..n)
        .filter(|&v| !in_e[v] && groups.iter().all(|g| g.dir[v] == 0))
        .map(|v| bounds[v])
        .collect();
    let factor = count_box(&untouched, None)?;
    if factor == 0 {
        return Ok(Some(0));
    }
    // Per-slab E-support (coefficient per enum var) and the collapsed
    // single free variable of each non-kept slab.
    struct SlabPlan {
        e_coeffs: Vec<(usize, i128)>,    // (enum index, coefficient)
        free_var: Option<(usize, i128)>, // (var, coefficient); None = constant
    }
    let mut plans: Vec<SlabPlan> = Vec::with_capacity(groups.len());
    for (i, g) in groups.iter().enumerate() {
        let e_coeffs = enum_vars
            .iter()
            .enumerate()
            .filter(|(_, &v)| g.dir[v] != 0)
            .map(|(ei, &v)| (ei, g.dir[v] as i128))
            .collect();
        let mut free_var = None;
        if !kept.contains(&i) {
            for (v, &pinned) in in_e.iter().enumerate() {
                if g.dir[v] != 0 && !pinned {
                    debug_assert!(free_var.is_none(), "non-kept slab must have <= 1 free var");
                    free_var = Some((v, g.dir[v] as i128));
                }
            }
        }
        plans.push(SlabPlan { e_coeffs, free_var });
    }
    // Odometer over E.
    let mut point: Vec<i128> = enum_vars.iter().map(|&v| bounds[v].0.unwrap()).collect();
    let mut tb: Vec<(i128, i128)> = vec![(0, 0); n]; // tightened bounds, by var
    let mut triples: Vec<(i128, i128, i64)> = Vec::new();
    let mut kept_shifts: Vec<i128> = vec![0; kept.len()];
    let mut total: u128 = 0;
    'outer: loop {
        for &v in &touched {
            tb[v] = (bounds[v].0.unwrap(), bounds[v].1.unwrap());
        }
        let mut feasible = true;
        for (i, plan) in plans.iter().enumerate() {
            let mut c: i128 = 0;
            for &(ei, a) in &plan.e_coeffs {
                c = a
                    .checked_mul(point[ei])
                    .and_then(|t| c.checked_add(t))
                    .ok_or(Error::Overflow)?;
            }
            if let Some(ki) = kept.iter().position(|&kj| kj == i) {
                kept_shifts[ki] = c;
                continue;
            }
            let lo = windows[i].0.checked_sub(c).ok_or(Error::Overflow)?;
            let hi = windows[i].1.checked_sub(c).ok_or(Error::Overflow)?;
            match plan.free_var {
                None => {
                    // Fully pinned slab: the window must contain zero.
                    if lo > 0 || hi < 0 {
                        feasible = false;
                        break;
                    }
                }
                Some((v, a)) => {
                    // lo <= a·x_v <= hi tightens x_v's interval.
                    let (vlo, vhi) = if a > 0 {
                        (cd128(lo, a), fd128(hi, a))
                    } else {
                        (cd128(hi, a), fd128(lo, a))
                    };
                    tb[v].0 = tb[v].0.max(vlo);
                    tb[v].1 = tb[v].1.min(vhi);
                    if tb[v].0 > tb[v].1 {
                        feasible = false;
                        break;
                    }
                }
            }
        }
        if feasible {
            // Interval-collapsed variables outside every kept slab
            // multiply directly; each kept slab's residual closes with
            // floor-sums over its own (disjoint) free variables.
            let mut cnt: u128 = 1;
            for &v in &touched {
                if kept_r.iter().any(|r| r.contains(&v)) {
                    continue;
                }
                cnt = cnt
                    .checked_mul((tb[v].1 - tb[v].0 + 1) as u128)
                    .ok_or(Error::Overflow)?;
            }
            if cnt > 0 {
                for (ki, &kj) in kept.iter().enumerate() {
                    let (mut r_min, mut r_max) = (0i128, 0i128);
                    triples.clear();
                    for &v in &kept_r[ki] {
                        let a = groups[kj].dir[v] as i128;
                        let (l, h) = tb[v];
                        let (tmin, tmax) = if a > 0 { (l, h) } else { (h, l) };
                        r_min = a
                            .checked_mul(tmin)
                            .and_then(|t| r_min.checked_add(t))
                            .ok_or(Error::Overflow)?;
                        r_max = a
                            .checked_mul(tmax)
                            .and_then(|t| r_max.checked_add(t))
                            .ok_or(Error::Overflow)?;
                        triples.push((l, h, -groups[kj].dir[v]));
                    }
                    let lo = windows[kj]
                        .0
                        .checked_sub(kept_shifts[ki])
                        .ok_or(Error::Overflow)?
                        .max(r_min);
                    let hi = windows[kj]
                        .1
                        .checked_sub(kept_shifts[ki])
                        .ok_or(Error::Overflow)?
                        .min(r_max);
                    let inner = if hi < lo {
                        0
                    } else {
                        triples.sort_unstable_by_key(|&(l, h, _)| std::cmp::Reverse(h - l));
                        let upper = count_halfspace_rec(&triples, hi)?;
                        let lower = if lo > r_min {
                            count_halfspace_rec(&triples, lo - 1)?
                        } else {
                            0
                        };
                        debug_assert!(upper >= lower);
                        upper - lower
                    };
                    cnt = cnt.checked_mul(inner).ok_or(Error::Overflow)?;
                    if cnt == 0 {
                        break;
                    }
                }
                total = total.checked_add(cnt).ok_or(Error::Overflow)?;
            }
        }
        // Advance the odometer.
        for ei in 0..enum_vars.len() {
            point[ei] += 1;
            if point[ei] <= bounds[enum_vars[ei]].1.unwrap() {
                continue 'outer;
            }
            point[ei] = bounds[enum_vars[ei]].0.unwrap();
        }
        break;
    }
    note(if kept.len() >= 2 {
        FastPathKind::CoupledSlab
    } else {
        FastPathKind::MultiSlab
    });
    Ok(Some(factor.checked_mul(total).ok_or(Error::Overflow)?))
}

/// Recursively counts a pure-inequality tableau. `limit` allows early exit
/// (used for emptiness checks). `work` guards total effort. The owned
/// tableau's row containers return to `arena` when counting finishes.
fn count_rec(
    t: Tableau,
    limit: Option<u128>,
    work: &mut u64,
    arena: &mut RowArena,
) -> Result<u128> {
    let mut t = t;
    let r = count_rec_inner(&mut t, limit, work, arena, false);
    arena.reclaim(t);
    r
}

/// [`count_rec`] body. `par` permits one work-stealing split across
/// threads at this node's enumeration fallback (set only by
/// [`count_tableau`] for top-level exact counts; recursion below a split
/// is always serial).
fn count_rec_inner(
    t: &mut Tableau,
    limit: Option<u128>,
    work: &mut u64,
    arena: &mut RowArena,
    par: bool,
) -> Result<u128> {
    *work += 1;
    if *work > WORK_LIMIT {
        return Err(Error::TooComplex("counting work limit exceeded".into()));
    }
    if !t.normalize_ineqs() {
        return Ok(0);
    }
    if t.n == 0 {
        return Ok(1);
    }
    let mut factor: u128 = 1;
    if t.eqs.is_empty() {
        // Functional-window variables contribute an exact multiplicative
        // factor; dropping them early collapses mod/floor relations into
        // boxes and slabs.
        let n_before = t.n;
        factor = t.drop_functional_vars()?;
        if factor == 0 {
            return Ok(0);
        }
        if t.n < n_before {
            note(FastPathKind::Window);
        }
        if t.n == 0 {
            return Ok(factor);
        }
    }
    if factor > 1 {
        let inner = count_rec_inner(t, limit, work, arena, par)?;
        return match limit {
            Some(_) => Ok(inner.saturating_mul(factor)),
            None => inner.checked_mul(factor).ok_or(Error::Overflow),
        };
    }
    // Free variables (no nonzero coefficient anywhere) make the count
    // infinite. For limited queries (emptiness checks) they can be dropped
    // soundly — any value extends a solution of the rest; for exact counts
    // they are an error.
    for col in (0..t.n).rev() {
        let free = t.eqs.iter().chain(t.ineqs.iter()).all(|r| r[col] == 0);
        if free {
            if limit.is_none() {
                return Err(Error::Unbounded(format!("variable {col} is unconstrained")));
            }
            t.remove_col(col);
        }
    }
    if t.n == 0 {
        return Ok(1);
    }
    if t.n == 1 {
        return count_single(t, limit);
    }
    // Closed-form shortcuts: boxes and box ∩ slab count without recursion.
    if let Some(c) = count_fast(t, limit, work)? {
        return Ok(c);
    }
    let groups = components(t);
    if groups.len() > 1 {
        let mut prod: u128 = 1;
        for g in &groups {
            let sub = subsystem_with(t, g, arena);
            let c = count_rec(sub, limit, work, arena)?;
            if c == 0 {
                return Ok(0);
            }
            prod = match limit {
                // Limited counts may saturate (they only bound emptiness).
                Some(_) => prod.saturating_mul(c),
                None => prod.checked_mul(c).ok_or(Error::Overflow)?,
            };
        }
        return Ok(prod);
    }
    let ranges = t.propagate_bounds()?;
    for (l, h) in &ranges {
        if let (Some(l), Some(h)) = (l, h) {
            if l > h {
                return Ok(0);
            }
        }
    }
    if t.n == 2 {
        if let Some(c) = count_pair_series(t, &ranges)? {
            return Ok(c);
        }
    }
    // Chained two-variable links (and pair shapes the series above could
    // not close) fold by value-table DP instead of per-value recursion.
    // Limited probes skip it: enumeration exits at the first point, the
    // DP always pays the full table.
    if limit.is_none() {
        if let Some(c) = count_pair_chain(t, &ranges, work)? {
            return Ok(c);
        }
    }
    // Enumerate the variable with the smallest finite range. Widths are
    // compared in i128: bounds near the i64 limits would overflow an i64
    // subtraction and wrap past the ENUM_LIMIT guard.
    let mut best: Option<(usize, i64, i64)> = None;
    for (j, (l, h)) in ranges.iter().enumerate() {
        if let (Some(l), Some(h)) = (l, h) {
            let width = *h as i128 - *l as i128;
            if best.is_none_or(|(_, bl, bh)| width < bh as i128 - bl as i128) {
                best = Some((j, *l, *h));
            }
        }
    }
    let (var, lo, hi) = best
        .ok_or_else(|| Error::Unbounded("cannot count: no variable has a finite range".into()))?;
    if hi as i128 - lo as i128 >= ENUM_LIMIT as i128 {
        return Err(Error::TooComplex(format!(
            "enumeration range too large ({} values)",
            hi as i128 - lo as i128 + 1
        )));
    }
    if par && limit.is_none() && hi <= i64::MAX - 65 {
        // (The cursor in the split may run `threads` past `hi`; the guard
        // keeps its `fetch_add` off the wrapping edge.)
        let threads = enum_threads();
        if threads > 1 && hi as i128 - lo as i128 + 1 >= PAR_SPLIT_MIN_WIDTH as i128 {
            return count_split_parallel(t, var, lo, hi, threads);
        }
    }
    let mut total: u128 = 0;
    for v in lo..=hi {
        let sub = t.fix_with(var, v, arena)?;
        total = total
            .checked_add(count_rec(
                sub,
                limit.map(|l| l.saturating_sub(total)),
                work,
                arena,
            )?)
            .ok_or(Error::Overflow)?;
        if let Some(l) = limit {
            if total >= l {
                return Ok(total);
            }
        }
    }
    Ok(total)
}

/// Minimum enumeration width before the top-level counting split fans
/// out across threads (narrower splits don't amortize thread spawn).
const PAR_SPLIT_MIN_WIDTH: u64 = 16;

/// Worker threads for parallel enumeration/counting: the machine's
/// available parallelism capped at 8, overridable via
/// `TENET_ISL_THREADS` (useful to force the parallel paths on small
/// boxes, or to pin them off).
fn enum_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("TENET_ISL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, 64);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    })
}

/// Work-stealing parallel form of the enumeration fallback: workers
/// claim values of `var` off a shared atomic cursor (granularity 1, so
/// skewed per-value costs balance), each counting its substituted
/// subproblem serially with a private arena. Partial totals add with
/// overflow checks; the first error wins. Each worker carries its own
/// [`WORK_LIMIT`] budget — a deliberate widening (≤ `threads ×` the
/// serial budget) in exchange for not contending on a shared counter.
/// Attached [`crate::CounterHandle`]s propagate to the workers, so
/// scoped fast-path/dispatch attribution stays exact across the split.
fn count_split_parallel(t: &Tableau, var: usize, lo: i64, hi: i64, threads: usize) -> Result<u128> {
    use std::sync::atomic::AtomicI64;
    let next = AtomicI64::new(lo);
    let span = (hi as i128 - lo as i128 + 1).min(threads as i128) as usize;
    let handles = crate::cache::attached_handles();
    let results: Vec<Result<u128>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..span)
            .map(|_| {
                let next = &next;
                let handles = &handles;
                s.spawn(move || -> Result<u128> {
                    let _guards: Vec<_> = handles.iter().map(|h| h.attach()).collect();
                    let mut arena = RowArena::new();
                    let mut work = 0u64;
                    let mut total: u128 = 0;
                    loop {
                        let v = next.fetch_add(1, Ordering::Relaxed);
                        if v > hi {
                            return Ok(total);
                        }
                        let sub = t.fix_with(var, v, &mut arena)?;
                        total = total
                            .checked_add(count_rec(sub, None, &mut work, &mut arena)?)
                            .ok_or(Error::Overflow)?;
                    }
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let mut total: u128 = 0;
    for r in results {
        total = total.checked_add(r?).ok_or(Error::Overflow)?;
    }
    Ok(total)
}

/// Counts a borrowed basic map, stopping early once `limit` points are
/// known to exist (`limit` is only used for emptiness-style probes).
pub(crate) fn count_basic_limited(bm: &BasicMap, limit: Option<u128>) -> Result<u128> {
    count_tableau(Tableau::from_basic(bm)?, limit)
}

/// Exactly counts an owned basic map, moving its rows into the tableau
/// (no per-row copies).
pub(crate) fn count_basic_owned(bm: BasicMap) -> Result<u128> {
    count_tableau(Tableau::from_basic_owned(bm)?, None)
}

fn count_tableau(mut t: Tableau, limit: Option<u128>) -> Result<u128> {
    if !t.eliminate_equalities()? {
        return Ok(0);
    }
    let mut work = 0u64;
    let mut arena = RowArena::new();
    // Exact top-level counts may split their enumeration fallback across
    // threads; recursion below the split (and every limited probe, which
    // wants first-point early exit) stays serial.
    count_rec_inner(&mut t, limit, &mut work, &mut arena, limit.is_none())
}

/// Whether a basic map contains no integer point.
pub(crate) fn basic_is_empty(bm: &BasicMap) -> Result<bool> {
    Ok(count_basic_limited(bm, Some(1))? == 0)
}

/// Best-known finite range of a visible variable column.
pub(crate) fn var_range(bm: &BasicMap, col: usize) -> Result<(i64, i64)> {
    let t = Tableau::from_basic(bm)?;
    let ranges = t.propagate_bounds()?;
    match ranges[col] {
        (Some(l), Some(h)) => Ok((l, h)),
        _ => Err(Error::Unbounded(format!(
            "variable {col} has no finite range"
        ))),
    }
}

/// Returns one point (over the visible dims) of a basic map, or `None`.
pub(crate) fn basic_sample(bm: &BasicMap) -> Result<Option<Vec<i64>>> {
    if count_basic_limited(bm, Some(1))? == 0 {
        return Ok(None);
    }
    // The set is non-empty and bounded; enumerate lazily until the first
    // point is found.
    let mut found: Option<Vec<i64>> = None;
    // The sentinel error aborts the walk at the first point; any other
    // failure mode is also absorbed (the emptiness pre-check above makes
    // a point's existence certain, matching the previous behavior).
    let _ = basic_points_visit(bm, &mut |p| {
        found = Some(p.to_vec());
        Err(Error::TooComplex("sample found".into()))
    });
    Ok(found)
}

/// Enumerates all points (over the visible dims) of a basic map.
/// Intended for small sets (simulation, testing); errors out beyond
/// `limit` points.
///
/// With more than one available thread (see [`enum_threads`]) and an
/// outermost variable of finite width ≥ 2, the walk splits into a
/// work-stealing scan over that variable's propagated range: workers
/// claim one value at a time off an atomic cursor and run the ordinary
/// depth-first enumeration below it; per-value buckets merge back in
/// ascending order, so the output order matches the serial walk exactly.
pub(crate) fn basic_points(bm: &BasicMap, limit: usize) -> Result<Vec<Vec<i64>>> {
    let threads = enum_threads();
    if threads > 1 {
        let n_vis = bm.div0();
        let t = Tableau::from_basic(bm)?;
        if t.n > 0 {
            let ranges = t.propagate_bounds()?;
            if let (Some(lo), Some(hi)) = ranges[0] {
                // Same wrap guard as the counting split's cursor.
                if hi as i128 - lo as i128 + 1 >= 2 && hi <= i64::MAX - 65 {
                    return basic_points_par(&t, n_vis, lo, hi, limit, threads, &ranges);
                }
            }
        }
    }
    let mut out: Vec<Vec<i64>> = Vec::new();
    basic_points_visit(bm, &mut |p| {
        if out.len() >= limit {
            return Err(Error::TooComplex(format!(
                "more than {limit} points during enumeration"
            )));
        }
        out.push(p.to_vec());
        Ok(())
    })?;
    Ok(out)
}

/// Parallel body of [`basic_points`]: splits on the outermost variable.
///
/// Enumerating from depth 1 with `point[0]` pinned is sound because the
/// leaf check validates *every* row exactly — a pinned value that
/// violates some depth-0 bound simply yields no points. The propagated
/// ranges are implied by the system, so scanning `[lo, hi]` covers every
/// solution.
fn basic_points_par(
    t: &Tableau,
    n_vis: usize,
    lo: i64,
    hi: i64,
    limit: usize,
    threads: usize,
    ranges: &[(Option<i64>, Option<i64>)],
) -> Result<Vec<Vec<i64>>> {
    use std::sync::atomic::AtomicI64;
    let next = AtomicI64::new(lo);
    let span = (hi as i128 - lo as i128 + 1).min(threads as i128) as usize;
    type Buckets = Vec<(i64, Vec<Vec<i64>>)>;
    let results: Vec<Result<Buckets>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..span)
            .map(|_| {
                let next = &next;
                s.spawn(move || -> Result<Buckets> {
                    let mut buckets: Buckets = Vec::new();
                    let mut point = vec![0i64; t.n];
                    let mut rng = Some(ranges.to_vec());
                    let mut mine = 0usize;
                    loop {
                        let v = next.fetch_add(1, Ordering::Relaxed);
                        if v > hi {
                            return Ok(buckets);
                        }
                        point[0] = v;
                        let mut pts: Vec<Vec<i64>> = Vec::new();
                        enum_rec(
                            t,
                            1,
                            &mut point,
                            &mut |p| {
                                if mine >= limit {
                                    return Err(Error::TooComplex(format!(
                                        "more than {limit} points during enumeration"
                                    )));
                                }
                                mine += 1;
                                pts.push(p.to_vec());
                                Ok(())
                            },
                            n_vis,
                            &mut rng,
                        )?;
                        if !pts.is_empty() {
                            buckets.push((v, pts));
                        }
                    }
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let mut all: Buckets = Vec::new();
    for r in results {
        all.extend(r?);
    }
    all.sort_unstable_by_key(|&(v, _)| v);
    let mut out: Vec<Vec<i64>> = Vec::new();
    for (_, mut pts) in all {
        out.append(&mut pts);
    }
    if out.len() > limit {
        return Err(Error::TooComplex(format!(
            "more than {limit} points during enumeration"
        )));
    }
    Ok(out)
}

/// Depth-first visit of every point (over the visible dims) of a basic
/// map, without materializing the point list: `sink` observes each point
/// as a borrowed slice and may abort the walk by returning an error.
/// Each visible point is visited exactly once (div columns are functions
/// of the visible variables, pinned by their bracket constraints).
pub(crate) fn basic_points_visit(
    bm: &BasicMap,
    sink: &mut dyn FnMut(&[i64]) -> Result<()>,
) -> Result<()> {
    let n_vis = bm.div0();
    let t = Tableau::from_basic(bm)?;
    let mut point = vec![0i64; t.n];
    let mut ranges = None;
    enum_rec(&t, 0, &mut point, sink, n_vis, &mut ranges)
}

fn enum_rec(
    t: &Tableau,
    depth: usize,
    point: &mut Vec<i64>,
    sink: &mut dyn FnMut(&[i64]) -> Result<()>,
    n_vis: usize,
    // The propagated global ranges are a function of `t` alone, but cost
    // real work; they are computed lazily at most once per enumeration
    // and shared down the whole tree (they used to be recomputed at every
    // node that needed the fallback, which dominated `points()` time).
    ranges: &mut Option<Vec<(Option<i64>, Option<i64>)>>,
) -> Result<()> {
    if depth == t.n {
        // Verify equalities and inequalities exactly.
        let eval = |r: &Row| -> i128 {
            let mut s = r[t.n] as i128;
            for j in 0..t.n {
                s += (r[j] as i128) * (point[j] as i128);
            }
            s
        };
        if t.eqs.iter().all(|r| eval(r) == 0) && t.ineqs.iter().all(|r| eval(r) >= 0) {
            sink(&point[..n_vis])?;
        }
        return Ok(());
    }
    // Partially substituted system: derive bounds for `depth` given the
    // fixed prefix, using rows whose later variables are all zero.
    let mut lo = i64::MIN;
    let mut hi = i64::MAX;
    let bound = |r: &Row, is_eq: bool, lo: &mut i64, hi: &mut i64| -> Result<()> {
        let a = r[depth];
        if a == 0 || (depth + 1..t.n).any(|j| r[j] != 0) {
            return Ok(());
        }
        let mut c = r[t.n] as i128;
        for j in 0..depth {
            c += (r[j] as i128) * (point[j] as i128);
        }
        let c = i64::try_from(c).map_err(|_| Error::Overflow)?;
        if a > 0 {
            *lo = (*lo).max(ceil_div(-c, a));
            if is_eq {
                *hi = (*hi).min(floor_div(-c, a));
            }
        } else {
            *hi = (*hi).min(floor_div(-c, a));
            if is_eq {
                *lo = (*lo).max(ceil_div(-c, a));
            }
        }
        Ok(())
    };
    for r in &t.ineqs {
        bound(r, false, &mut lo, &mut hi)?;
    }
    for r in &t.eqs {
        bound(r, true, &mut lo, &mut hi)?;
    }
    // Also use the global propagated ranges as a backstop.
    if lo == i64::MIN || hi == i64::MAX {
        if ranges.is_none() {
            *ranges = Some(t.propagate_bounds()?);
        }
        if let (Some(l), Some(h)) = ranges.as_ref().expect("just filled")[depth] {
            lo = lo.max(l);
            hi = hi.min(h);
        }
    }
    if lo == i64::MIN || hi == i64::MAX {
        return Err(Error::Unbounded(format!(
            "variable {depth} unbounded during enumeration"
        )));
    }
    for v in lo..=hi {
        point[depth] = v;
        enum_rec(t, depth + 1, point, sink, n_vis, ranges)?;
    }
    point[depth] = 0;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Space, Tuple};

    fn boxed(bounds: &[(i64, i64)]) -> BasicMap {
        let dims: Vec<String> = (0..bounds.len()).map(|i| format!("x{i}")).collect();
        let mut bm = BasicMap::universe(Space::set(Tuple::new("B", dims)));
        for (i, &(l, h)) in bounds.iter().enumerate() {
            let mut lo = bm.zero_row();
            lo[i] = 1;
            let k = bm.konst();
            lo[k] = -l;
            bm.add_ineq(lo);
            let mut hi = bm.zero_row();
            hi[i] = -1;
            hi[bm.konst()] = h;
            bm.add_ineq(hi);
        }
        bm
    }

    #[test]
    fn count_box() {
        let bm = boxed(&[(0, 3), (0, 4)]);
        assert_eq!(count_basic_limited(&bm, None).unwrap(), 20);
    }

    #[test]
    fn count_empty_box() {
        let bm = boxed(&[(2, 1)]);
        assert_eq!(count_basic_limited(&bm, None).unwrap(), 0);
    }

    #[test]
    fn count_triangle() {
        // 0 <= x, y ; x + y <= 3 -> 10 points.
        let mut bm = boxed(&[(0, 100), (0, 100)]);
        let mut r = bm.zero_row();
        r[0] = -1;
        r[1] = -1;
        let k = bm.konst();
        r[k] = 3;
        bm.add_ineq(r);
        assert_eq!(count_basic_limited(&bm, None).unwrap(), 10);
    }

    #[test]
    fn count_with_equality() {
        // 0 <= x,y <= 9 and x = y -> 10 points.
        let mut bm = boxed(&[(0, 9), (0, 9)]);
        let mut r = bm.zero_row();
        r[0] = 1;
        r[1] = -1;
        bm.add_eq(r);
        assert_eq!(count_basic_limited(&bm, None).unwrap(), 10);
    }

    #[test]
    fn count_with_nonunit_equality() {
        // 0 <= x <= 20, 0 <= y <= 20, 2x = 3y -> y even, x = 3y/2:
        // y in {0,2,4,...,12} gives x in {0,3,...,18}: but x <= 20 -> y <= 13
        // and x = 3y/2 <= 20 -> y <= 13 -> y in {0,2,...,12}: 7 points.
        let mut bm = boxed(&[(0, 20), (0, 20)]);
        let mut r = bm.zero_row();
        r[0] = 2;
        r[1] = -3;
        bm.add_eq(r);
        assert_eq!(count_basic_limited(&bm, None).unwrap(), 7);
    }

    #[test]
    fn count_with_div() {
        // { [i] : 0 <= i < 16 and i mod 8 < 4 } -> 8 points.
        let mut bm = boxed(&[(0, 15)]);
        let num = bm.zero_row();
        let mut num = num;
        num[0] = 1;
        let d = bm.add_div(num, 8).unwrap();
        // i - 8q <= 3  ->  -i + 8q + 3 >= 0
        let mut r = bm.zero_row();
        r[0] = -1;
        r[d] = 8;
        let k = bm.konst();
        r[k] = 3;
        bm.add_ineq(r);
        assert_eq!(count_basic_limited(&bm, None).unwrap(), 8);
    }

    #[test]
    fn count_big_series() {
        // 0 <= x < 100000, 0 <= y <= x: triangular number.
        let mut bm = boxed(&[(0, 99_999), (0, 1_000_000)]);
        let mut r = bm.zero_row();
        r[0] = 1;
        r[1] = -1;
        bm.add_ineq(r); // y <= x
        let n: u128 = 100_000;
        assert_eq!(count_basic_limited(&bm, None).unwrap(), n * (n + 1) / 2);
    }

    #[test]
    fn points_enumeration() {
        let bm = boxed(&[(0, 2), (1, 2)]);
        let pts = basic_points(&bm, 100).unwrap();
        assert_eq!(pts.len(), 6);
        assert!(pts.contains(&vec![0, 1]));
        assert!(pts.contains(&vec![2, 2]));
    }

    #[test]
    fn count_many_parallel_rows_then_steeper() {
        // Regression: scan_rows used to stop scanning after collecting 7
        // multi-variable rows, so a steeper row sorted after redundant
        // parallel ones was silently dropped and the slab fast path
        // returned the full box count. 0 <= x,y <= 9 with x+y >= -k for
        // k = 1..7 (all redundant) plus x + 2y >= 3 has 96 points, not 100.
        let mut bm = boxed(&[(0, 9), (0, 9)]);
        let k = bm.konst();
        for c in 1..=7 {
            let mut r = bm.zero_row();
            r[0] = 1;
            r[1] = 1;
            r[k] = c;
            bm.add_ineq(r);
        }
        let mut r = bm.zero_row();
        r[0] = 1;
        r[1] = 2;
        r[k] = -3;
        bm.add_ineq(r);
        assert_eq!(count_basic_limited(&bm, None).unwrap(), 96);
    }

    #[test]
    fn count_many_parallel_rows_slab() {
        // 8+ parallel wide rows where the slab form genuinely applies:
        // the tightest pair wins and the fast path stays exact.
        // 0 <= x,y <= 9 with 1 <= x + y <= 5 (stated redundantly).
        let mut bm = boxed(&[(0, 9), (0, 9)]);
        let k = bm.konst();
        for c in [-1i64, -1, -1, -1, -1] {
            let mut r = bm.zero_row();
            r[0] = 1;
            r[1] = 1;
            r[k] = c;
            bm.add_ineq(r);
        }
        for c in [5i64, 6, 7, 8] {
            let mut r = bm.zero_row();
            r[0] = -1;
            r[1] = -1;
            r[k] = c;
            bm.add_ineq(r);
        }
        // #{0<=x,y<=9 : 1 <= x+y <= 5} = Σ_{s=1}^{5} (s+1) = 20.
        assert_eq!(count_basic_limited(&bm, None).unwrap(), 20);
    }

    #[test]
    fn pair_series_overflow_is_reported() {
        // y in [0, M*x] for x in [0, H] with huge M: the arithmetic-series
        // total exceeds i128 and must surface as Error::Overflow rather
        // than wrapping to a bogus count.
        let m = 1i64 << 62;
        let h = i64::MAX / 2;
        let row = |a: i64, b: i64, c: i64| {
            let mut r = Row::zeros(3);
            r[0] = a;
            r[1] = b;
            r[2] = c;
            r
        };
        let t = Tableau {
            n: 2,
            eqs: Vec::new(),
            ineqs: vec![row(1, 0, 0), row(-1, 0, h), row(0, 1, 0), row(m, -1, 0)],
        };
        let ranges = vec![(Some(0), Some(h)), (Some(0), None)];
        assert!(matches!(
            count_pair_series(&t, &ranges),
            Err(Error::Overflow)
        ));
    }

    #[test]
    fn floor_sum_checked() {
        // Σ_{x=0}^{4} floor((2x+1)/3) = 0+1+1+2+3 = 7.
        assert_eq!(floor_sum(5, 3, 2, 1), Some(7));
        // Negative a/b normalization stays exact.
        assert_eq!(
            floor_sum(4, 3, -2, -1),
            Some((0..4).map(|x: i128| (-2 * x - 1).div_euclid(3)).sum())
        );
        // Quadratic blow-up past i128 reports overflow instead of wrapping.
        assert_eq!(
            floor_sum(i128::from(i64::MAX), 1, i64::MAX as i128, 0),
            None
        );
    }

    #[test]
    fn functional_window_min_coeff_does_not_cancel() {
        // ri[v] = rj[v] = i64::MIN wrap-adds to 0; the window test must
        // compare in i128 or the pair is dropped as a functional window
        // and the count comes back 80 instead of 8.
        let row = |a: i64, b: i64, c: i64| {
            let mut r = Row::zeros(3);
            r[0] = a;
            r[1] = b;
            r[2] = c;
            r
        };
        let t = Tableau {
            n: 2,
            eqs: Vec::new(),
            ineqs: vec![
                row(1, 0, 0),         // x >= 0
                row(-1, 0, 9),        // x <= 9
                row(i64::MIN, 1, 0),  // MIN·x + q >= 0
                row(i64::MIN, -1, 7), // MIN·x - q + 7 >= 0
            ],
        };
        // Only x = 0 admits any q (0 <= q <= 7): 8 points.
        assert_eq!(count_tableau(t, None).unwrap(), 8);
    }

    #[test]
    fn enumeration_width_guard_survives_extreme_bounds() {
        // Bounds spanning more than i64::MAX must trip the enumeration
        // guard (TooComplex), not wrap the i64 width computation.
        let row = |a: i64, b: i64, c: i64| {
            let mut r = Row::zeros(3);
            r[0] = a;
            r[1] = b;
            r[2] = c;
            r
        };
        let h = i64::MAX - 1;
        let t = Tableau {
            n: 2,
            eqs: Vec::new(),
            ineqs: vec![
                row(1, 0, h),   // x >= -(MAX-1)
                row(-1, 0, h),  // x <= MAX-1
                row(0, 1, h),   // y >= -(MAX-1)
                row(0, -1, h),  // y <= MAX-1
                row(1, 1, 0),   // x + y >= 0
                row(-1, -2, 9), // x + 2y <= 9
            ],
        };
        assert!(matches!(
            count_tableau(t, None),
            Err(Error::TooComplex(_) | Error::Overflow)
        ));
    }

    #[test]
    fn min_constant_rows_count_exactly() {
        // A row constant of i64::MIN means `x >= 2^63`; negating it must
        // widen to i128, not wrap back to i64::MIN and admit the full box.
        let row1 = |a: i64, c: i64| {
            let mut r = Row::zeros(2);
            r[0] = a;
            r[1] = c;
            r
        };
        // Single variable (count_single): x >= 2^63 and x <= 9 is empty.
        // The third row keeps the pair out of the functional-window drop.
        let t = Tableau {
            n: 1,
            eqs: Vec::new(),
            ineqs: vec![row1(1, i64::MIN), row1(2, i64::MIN), row1(-1, 9)],
        };
        assert_eq!(count_tableau(t, None).unwrap(), 0);
        // Box path (scan_rows): same contradiction on x, y boxed; three
        // rows per variable again defeat the window shortcut.
        let row2 = |a: i64, b: i64, c: i64| {
            let mut r = Row::zeros(3);
            r[0] = a;
            r[1] = b;
            r[2] = c;
            r
        };
        let t = Tableau {
            n: 2,
            eqs: Vec::new(),
            ineqs: vec![
                row2(1, 0, i64::MIN), // x >= 2^63
                row2(2, 0, i64::MIN), // x >= 2^62 (redundant)
                row2(-1, 0, 9),       // x <= 9
                row2(0, 1, 0),        // y >= 0
                row2(0, 1, 1),        // y >= -1 (redundant)
                row2(0, -1, 4),       // y <= 4
            ],
        };
        assert_eq!(count_tableau(t, None).unwrap(), 0);
    }

    #[test]
    fn emptiness() {
        let mut bm = boxed(&[(0, 9)]);
        let mut r = bm.zero_row();
        r[0] = 1;
        let k = bm.konst();
        r[k] = -100; // x >= 100 contradicts x <= 9
        bm.add_ineq(r);
        assert!(basic_is_empty(&bm).unwrap());
    }
}
