//! Exact integer point counting.
//!
//! The paper computes every metric with `isl_union_map_card` /
//! Barvinok counting. This module provides the equivalent for bounded,
//! non-parametric sets (the only kind TENET's evaluation produces):
//!
//! 1. div columns are expanded into ordinary variables with their bracket
//!    constraints (`0 <= num - den*q < den`) — a bijection, so the count is
//!    unchanged;
//! 2. equalities are removed with the Omega-test equality reduction
//!    (unit-coefficient substitution plus Pugh's `sigma` reduction for
//!    non-unit coefficients) — every step is a bijection;
//! 3. the remaining pure-inequality system is counted by independent-
//!    component factoring, closed-form interval and arithmetic-series sums,
//!    and recursive enumeration with bound propagation.
//!
//! Every path is exact; property tests compare against brute force.

use crate::basic::{BasicMap, Row};
use crate::value::{ceil_div, floor_div, gcd, mod_hat};
use crate::{Error, Result};

/// Hard cap on the number of values a single variable may be enumerated
/// over before we give up with [`Error::TooComplex`].
const ENUM_LIMIT: i64 = 4_000_000;
/// Hard cap on total recursion work.
const WORK_LIMIT: u64 = 400_000_000;

/// A free-form constraint system: `n` variables, rows of width `n + 1`
/// (constant last). Inequalities mean `row >= 0`, equalities `row == 0`.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    pub n: usize,
    pub eqs: Vec<Row>,
    pub ineqs: Vec<Row>,
}

impl Tableau {
    /// Builds a tableau from a basic map: visible dims keep their column
    /// indices; div columns become trailing variables with bracket
    /// constraints.
    pub(crate) fn from_basic(bm: &BasicMap) -> Result<Tableau> {
        let n_vis = bm.div0();
        let n_div = bm.n_div();
        let n = n_vis + n_div;
        let conv = |r: &Row| -> Row {
            // Same layout minus nothing: [vis | divs | const] already.
            r.clone()
        };
        let mut t = Tableau {
            n,
            eqs: bm.eqs.iter().map(conv).collect(),
            ineqs: bm.ineqs.iter().map(conv).collect(),
        };
        // Bracket constraints for each div: 0 <= num - den*q <= den - 1.
        for (d, def) in bm.divs.iter().enumerate() {
            let col = n_vis + d;
            let mut lo = def.num.clone();
            lo[col] -= def.den;
            let mut hi: Row = def.num.iter().map(|c| -c).collect();
            hi[col] += def.den;
            let k = hi.len() - 1;
            hi[k] += def.den - 1;
            t.ineqs.push(lo);
            t.ineqs.push(hi);
        }
        Ok(t)
    }

    fn remove_col(&mut self, col: usize) {
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            debug_assert_eq!(r[col], 0);
            r.remove(col);
        }
        self.n -= 1;
    }

    fn add_col(&mut self) -> usize {
        let at = self.n;
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            r.insert(at, 0);
        }
        self.n += 1;
        at
    }

    /// Uses `eq` (with `eq[col] == ±1`) to substitute `col` out of every
    /// row, then removes the column. Exact for inequalities because the
    /// scale factor is one.
    fn substitute_unit(&mut self, eq: &Row, col: usize) {
        let mut eq = eq.clone();
        if eq[col] < 0 {
            for c in eq.iter_mut() {
                *c = -*c;
            }
        }
        debug_assert_eq!(eq[col], 1);
        for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            let c = r[col];
            if c != 0 {
                for (ri, ei) in r.iter_mut().zip(eq.iter()) {
                    *ri -= c * ei;
                }
            }
        }
        self.remove_col(col);
    }

    /// Removes all equalities via the Omega-test reduction.
    /// Returns `false` when the system is infeasible.
    fn eliminate_equalities(&mut self) -> Result<bool> {
        let mut guard = 0usize;
        while !self.eqs.is_empty() {
            guard += 1;
            if guard > 10_000 {
                return Err(Error::TooComplex(
                    "equality elimination did not converge".into(),
                ));
            }
            let mut eq = self.eqs.swap_remove(0);
            let k = self.n; // constant index within this row
            let g = eq[..k].iter().fold(0, |a, &c| gcd(a, c));
            if g == 0 {
                if eq[k] != 0 {
                    return Ok(false);
                }
                continue;
            }
            if eq[k] % g != 0 {
                return Ok(false);
            }
            if g > 1 {
                for c in eq.iter_mut() {
                    *c /= g;
                }
            }
            // Unit coefficient: direct substitution.
            if let Some(col) = (0..k).find(|&i| eq[i].abs() == 1) {
                self.substitute_unit(&eq, col);
                continue;
            }
            // Pugh reduction: introduce sigma with m = |a_min| + 1.
            let col = (0..k)
                .filter(|&i| eq[i] != 0)
                .min_by_key(|&i| eq[i].abs())
                .expect("gcd nonzero implies a nonzero coefficient");
            let m = eq[col]
                .abs()
                .checked_add(1)
                .ok_or(Error::Overflow)?;
            let sigma = self.add_col();
            eq.insert(sigma, 0);
            let kc = self.n; // new constant index
            let mut eq2 = vec![0i64; kc + 1];
            for i in 0..kc {
                if i == sigma {
                    eq2[i] = -m;
                } else {
                    eq2[i] = mod_hat(eq[i], m);
                }
            }
            eq2[kc] = mod_hat(eq[kc], m);
            debug_assert_eq!(eq2[col].abs(), 1, "mod-hat of the pivot must be ±1");
            // Substitute the pivot out of every row (including `eq`).
            let c = eq[col];
            let s = if eq2[col] > 0 { 1 } else { -1 };
            let mut eq2n = eq2.clone();
            if s < 0 {
                for v in eq2n.iter_mut() {
                    *v = -*v;
                }
            }
            let fold = |r: &mut Row| {
                let cc = r[col];
                if cc != 0 {
                    for (ri, ei) in r.iter_mut().zip(eq2n.iter()) {
                        *ri -= cc * ei;
                    }
                }
            };
            let _ = c;
            for r in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
                fold(r);
            }
            fold(&mut eq);
            self.eqs.push(eq);
            self.remove_col(col);
        }
        Ok(true)
    }

    /// Drops trivial rows; returns `false` on a syntactic contradiction.
    fn normalize_ineqs(&mut self) -> bool {
        let k = self.n;
        let mut ok = true;
        self.ineqs.retain_mut(|r| {
            let g = r[..k].iter().fold(0, |a, &c| gcd(a, c));
            if g == 0 {
                if r[k] < 0 {
                    ok = false;
                }
                return false;
            }
            if g > 1 {
                for c in r[..k].iter_mut() {
                    *c /= g;
                }
                r[k] = floor_div(r[k], g);
            }
            true
        });
        self.ineqs.sort();
        self.ineqs.dedup();
        ok
    }

    /// Interval propagation: best-known integer ranges for all variables.
    ///
    /// When plain per-row propagation stalls (every row bounding a
    /// variable also contains another unbounded variable), single-variable
    /// bounds are derived by pairwise Fourier–Motzkin combination and
    /// propagation resumes — this closes systems like
    /// `0 <= o - d <= 5 and 0 <= o + 5d <= 35` that have no direct
    /// one-variable rows.
    fn propagate_bounds(&self) -> Result<Vec<(Option<i64>, Option<i64>)>> {
        let mut rows = self.ineqs.clone();
        let n = self.n;
        // Derivation: for every variable, combine each (lower, upper) row
        // pair; keep combinations that mention exactly one variable.
        let mut derived: Vec<Row> = Vec::new();
        for v in 0..n {
            let lowers: Vec<&Row> = rows.iter().filter(|r| r[v] > 0).collect();
            let uppers: Vec<&Row> = rows.iter().filter(|r| r[v] < 0).collect();
            if lowers.len() * uppers.len() > 64 {
                continue;
            }
            for l in &lowers {
                for u in &uppers {
                    let a = l[v] as i128;
                    let b = -(u[v]) as i128;
                    let mut row = Vec::with_capacity(n + 1);
                    let mut ok = true;
                    for (x, y) in l.iter().zip(u.iter()) {
                        let val = b * (*x as i128) + a * (*y as i128);
                        match i64::try_from(val) {
                            Ok(v) => row.push(v),
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    let nonzero = (0..n).filter(|&j| row[j] != 0).count();
                    if nonzero == 1 && !rows.contains(&row) && !derived.contains(&row) {
                        derived.push(row);
                    }
                }
            }
        }
        rows.extend(derived);
        let mut lo: Vec<Option<i128>> = vec![None; n];
        let mut hi: Vec<Option<i128>> = vec![None; n];
        for _round in 0..64 {
            let mut changed = false;
            for r in &rows {
                for j in 0..n {
                    let aj = r[j];
                    if aj == 0 {
                        continue;
                    }
                    // a_j x_j >= -c - sum_{i != j} a_i x_i; a universally
                    // valid implied bound uses the *maximum* of the sum.
                    let mut rest_max: i128 = r[n] as i128;
                    let mut bounded = true;
                    for i in 0..n {
                        if i == j || r[i] == 0 {
                            continue;
                        }
                        let term = if r[i] > 0 {
                            hi[i].map(|v| r[i] as i128 * v)
                        } else {
                            lo[i].map(|v| r[i] as i128 * v)
                        };
                        match term {
                            Some(t) => rest_max += t,
                            None => {
                                bounded = false;
                                break;
                            }
                        }
                    }
                    if !bounded {
                        continue;
                    }
                    // a_j x_j >= -(c + rest_max)
                    let rhs = -rest_max;
                    if aj > 0 {
                        let b = cd128(rhs, aj as i128);
                        if lo[j].is_none_or(|cur| b > cur) {
                            lo[j] = Some(b);
                            changed = true;
                        }
                    } else {
                        let b = fd128(rhs, aj as i128);
                        if hi[j].is_none_or(|cur| b < cur) {
                            hi[j] = Some(b);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
            // Detect emptiness early.
            for j in 0..n {
                if let (Some(l), Some(h)) = (lo[j], hi[j]) {
                    if l > h {
                        return Ok(vec![(Some(1), Some(0)); n]);
                    }
                }
            }
        }
        let clamp = |v: Option<i128>| -> Result<Option<i64>> {
            match v {
                None => Ok(None),
                Some(x) => {
                    if x > i64::MAX as i128 || x < i64::MIN as i128 {
                        Ok(None)
                    } else {
                        Ok(Some(x as i64))
                    }
                }
            }
        };
        let mut out = Vec::with_capacity(n);
        for j in 0..n {
            out.push((clamp(lo[j])?, clamp(hi[j])?));
        }
        Ok(out)
    }

    /// Substitutes `var = val`, folding the column into the constant.
    fn fix(&self, var: usize, val: i64) -> Tableau {
        let n = self.n;
        let mut t = Tableau {
            n: n - 1,
            eqs: Vec::with_capacity(self.eqs.len()),
            ineqs: Vec::with_capacity(self.ineqs.len()),
        };
        let conv = |r: &Row| -> Row {
            let mut out = Vec::with_capacity(n);
            for (i, &c) in r.iter().enumerate() {
                if i == var {
                    continue;
                }
                out.push(c);
            }
            let k = out.len() - 1;
            out[k] += r[var] * val;
            out
        };
        t.eqs.extend(self.eqs.iter().map(conv));
        t.ineqs.extend(self.ineqs.iter().map(conv));
        t
    }
}

/// Floor division over `i128`.
fn fd128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division over `i128`.
fn cd128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Union-find over variables connected by shared constraints.
fn components(t: &Tableau) -> Vec<Vec<usize>> {
    let n = t.n;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != c {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for r in t.ineqs.iter().chain(t.eqs.iter()) {
        let mut first: Option<usize> = None;
        for (j, &coef) in r.iter().enumerate().take(n) {
            if coef != 0 {
                match first {
                    None => first = Some(j),
                    Some(f) => {
                        let (a, b) = (find(&mut parent, f), find(&mut parent, j));
                        if a != b {
                            parent[a] = b;
                        }
                    }
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let r = find(&mut parent, j);
        groups[r].push(j);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Extracts the subsystem touching exactly the variables in `vars`.
fn subsystem(t: &Tableau, vars: &[usize]) -> Tableau {
    let mut sub = Tableau {
        n: vars.len(),
        eqs: Vec::new(),
        ineqs: Vec::new(),
    };
    let conv = |r: &Row| -> Option<Row> {
        // Row belongs to this component iff all its nonzero vars are inside.
        let mut out = vec![0i64; vars.len() + 1];
        for (new_i, &old_i) in vars.iter().enumerate() {
            out[new_i] = r[old_i];
        }
        out[vars.len()] = r[t.n];
        let touches = (0..t.n).any(|j| r[j] != 0 && vars.contains(&j));
        let outside = (0..t.n).any(|j| r[j] != 0 && !vars.contains(&j));
        if touches && !outside {
            Some(out)
        } else {
            None
        }
    };
    sub.ineqs.extend(t.ineqs.iter().filter_map(conv));
    let conv2 = |r: &Row| -> Option<Row> {
        let mut out = vec![0i64; vars.len() + 1];
        for (new_i, &old_i) in vars.iter().enumerate() {
            out[new_i] = r[old_i];
        }
        out[vars.len()] = r[t.n];
        let touches = (0..t.n).any(|j| r[j] != 0 && vars.contains(&j));
        let outside = (0..t.n).any(|j| r[j] != 0 && !vars.contains(&j));
        if touches && !outside {
            Some(out)
        } else {
            None
        }
    };
    sub.eqs.extend(t.eqs.iter().filter_map(conv2));
    sub
}

/// Counts a single variable's feasible interval directly from the rows.
/// `limit` being set means the caller only needs a lower bound (emptiness
/// checks), so unbounded-but-satisfiable intervals saturate to the limit.
fn count_single(t: &Tableau, limit: Option<u128>) -> Result<u128> {
    debug_assert_eq!(t.n, 1);
    let mut lo = i64::MIN;
    let mut hi = i64::MAX;
    for r in &t.ineqs {
        let a = r[0];
        let c = r[1];
        if a > 0 {
            lo = lo.max(ceil_div(-c, a));
        } else if a < 0 {
            hi = hi.min(floor_div(-c, a));
        } else if c < 0 {
            return Ok(0);
        }
    }
    if hi < lo {
        return Ok(0);
    }
    if lo == i64::MIN || hi == i64::MAX {
        return match limit {
            Some(l) => Ok(l.max(1)),
            None => Err(Error::Unbounded(
                "cannot count a one-sided interval".into(),
            )),
        };
    }
    Ok((hi - lo + 1) as u128)
}

/// Arithmetic-series closed form for a two-variable component where the
/// second variable has exactly one unit-coefficient lower and upper bound.
/// Returns `None` when the structure does not match.
fn count_pair_series(t: &Tableau, ranges: &[(Option<i64>, Option<i64>)]) -> Option<u128> {
    debug_assert_eq!(t.n, 2);
    if !t.eqs.is_empty() {
        return None;
    }
    // Choose y = variable 1 (arbitrary; try both orders).
    for (x, y) in [(0usize, 1usize), (1usize, 0usize)] {
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut x_rows = Vec::new();
        let mut ok = true;
        for r in &t.ineqs {
            if r[y] == 0 {
                x_rows.push(r);
            } else if r[y] == 1 {
                lowers.push(r);
            } else if r[y] == -1 {
                uppers.push(r);
            } else {
                ok = false;
                break;
            }
        }
        if !ok || lowers.len() != 1 || uppers.len() != 1 {
            continue;
        }
        let (xlo, xhi) = match ranges[x] {
            (Some(l), Some(h)) => (l, h),
            _ => continue,
        };
        // y >= -(b x + c_l); y <= u x + c_u.
        let l = lowers[0];
        let u = uppers[0];
        // Tighten the x range with x-only rows.
        let (mut xlo, mut xhi) = (xlo, xhi);
        for r in &x_rows {
            let a = r[x];
            let c = r[2];
            if a > 0 {
                xlo = xlo.max(ceil_div(-c, a));
            } else if a < 0 {
                xhi = xhi.min(floor_div(-c, a));
            } else if c < 0 {
                return Some(0);
            }
        }
        if xhi < xlo {
            return Some(0);
        }
        // len(x) = (u[x] + l[x]) x + (u[2] + l[2] + 1)
        let a = (u[x] as i128) + (l[x] as i128);
        let b = (u[2] as i128) + (l[2] as i128) + 1;
        let (mut s, mut e) = (xlo as i128, xhi as i128);
        if a == 0 {
            if b <= 0 {
                return Some(0);
            }
            return Some((b as u128) * ((e - s + 1) as u128));
        }
        // Solve a*x + b >= 1 over [s, e].
        if a > 0 {
            s = s.max(cd128(1 - b, a));
        } else {
            e = e.min(fd128(1 - b, a));
        }
        if e < s {
            return Some(0);
        }
        // Sum of (a*x + b) for x in [s, e]: arithmetic series.
        let cnt = e - s + 1;
        let total = a * (s + e) * cnt / 2 + b * cnt;
        debug_assert!(total >= 0);
        return Some(total as u128);
    }
    None
}

/// Recursively counts a pure-inequality tableau. `limit` allows early exit
/// (used for emptiness checks). `work` guards total effort.
fn count_rec(t: &Tableau, limit: Option<u128>, work: &mut u64) -> Result<u128> {
    *work += 1;
    if *work > WORK_LIMIT {
        return Err(Error::TooComplex("counting work limit exceeded".into()));
    }
    let mut t = t.clone();
    if !t.normalize_ineqs() {
        return Ok(0);
    }
    if t.n == 0 {
        return Ok(1);
    }
    // Free variables (no nonzero coefficient anywhere) make the count
    // infinite. For limited queries (emptiness checks) they can be dropped
    // soundly — any value extends a solution of the rest; for exact counts
    // they are an error.
    for col in (0..t.n).rev() {
        let free = t
            .eqs
            .iter()
            .chain(t.ineqs.iter())
            .all(|r| r[col] == 0);
        if free {
            if limit.is_none() {
                return Err(Error::Unbounded(format!(
                    "variable {col} is unconstrained"
                )));
            }
            t.remove_col(col);
        }
    }
    if t.n == 0 {
        return Ok(1);
    }
    if t.n == 1 {
        return count_single(&t, limit);
    }
    let groups = components(&t);
    if groups.len() > 1 {
        let mut prod: u128 = 1;
        for g in &groups {
            let sub = subsystem(&t, g);
            let c = count_rec(&sub, limit, work)?;
            if c == 0 {
                return Ok(0);
            }
            prod = match limit {
                // Limited counts may saturate (they only bound emptiness).
                Some(_) => prod.saturating_mul(c),
                None => prod.checked_mul(c).ok_or(Error::Overflow)?,
            };
        }
        return Ok(prod);
    }
    let ranges = t.propagate_bounds()?;
    for (l, h) in &ranges {
        if let (Some(l), Some(h)) = (l, h) {
            if l > h {
                return Ok(0);
            }
        }
    }
    if t.n == 2 {
        if let Some(c) = count_pair_series(&t, &ranges) {
            return Ok(c);
        }
    }
    // Enumerate the variable with the smallest finite range.
    let mut best: Option<(usize, i64, i64)> = None;
    for (j, (l, h)) in ranges.iter().enumerate() {
        if let (Some(l), Some(h)) = (l, h) {
            let width = h - l;
            if best.is_none_or(|(_, bl, bh)| width < bh - bl) {
                best = Some((j, *l, *h));
            }
        }
    }
    let (var, lo, hi) = best.ok_or_else(|| {
        Error::Unbounded("cannot count: no variable has a finite range".into())
    })?;
    if hi - lo >= ENUM_LIMIT {
        return Err(Error::TooComplex(format!(
            "enumeration range too large ({} values)",
            (hi - lo) as i128 + 1
        )));
    }
    let mut total: u128 = 0;
    for v in lo..=hi {
        let sub = t.fix(var, v);
        total = total
            .checked_add(count_rec(&sub, limit.map(|l| l.saturating_sub(total)), work)?)
            .ok_or(Error::Overflow)?;
        if let Some(l) = limit {
            if total >= l {
                return Ok(total);
            }
        }
    }
    Ok(total)
}

/// Exactly counts the integer points of a basic map (pairs of the
/// relation), over its visible in+out dimensions.
pub(crate) fn count_basic(bm: &BasicMap) -> Result<u128> {
    count_basic_limited(bm, None)
}

/// Like [`count_basic`] but stops early once `limit` points are found.
pub(crate) fn count_basic_limited(bm: &BasicMap, limit: Option<u128>) -> Result<u128> {
    let mut t = Tableau::from_basic(bm)?;
    if !t.eliminate_equalities()? {
        return Ok(0);
    }
    let mut work = 0u64;
    count_rec(&t, limit, &mut work)
}

/// Whether a basic map contains no integer point.
pub(crate) fn basic_is_empty(bm: &BasicMap) -> Result<bool> {
    Ok(count_basic_limited(bm, Some(1))? == 0)
}

/// Best-known finite range of a visible variable column.
pub(crate) fn var_range(bm: &BasicMap, col: usize) -> Result<(i64, i64)> {
    let t = Tableau::from_basic(bm)?;
    let ranges = t.propagate_bounds()?;
    match ranges[col] {
        (Some(l), Some(h)) => Ok((l, h)),
        _ => Err(Error::Unbounded(format!(
            "variable {col} has no finite range"
        ))),
    }
}

/// Returns one point (over the visible dims) of a basic map, or `None`.
pub(crate) fn basic_sample(bm: &BasicMap) -> Result<Option<Vec<i64>>> {
    if count_basic_limited(bm, Some(1))? == 0 {
        return Ok(None);
    }
    // The set is non-empty and bounded; enumerate lazily until the first
    // point is found.
    let n_vis = bm.div0();
    let t = Tableau::from_basic(bm)?;
    let mut point = vec![0i64; t.n];
    let mut out = Vec::new();
    match sample_rec(&t, 0, &mut point, &mut out, n_vis) {
        Ok(()) => Ok(out.into_iter().next()),
        Err(e) => Err(e),
    }
}

fn sample_rec(
    t: &Tableau,
    depth: usize,
    point: &mut Vec<i64>,
    out: &mut Vec<Vec<i64>>,
    n_vis: usize,
) -> Result<()> {
    if !out.is_empty() {
        return Ok(());
    }
    enum_rec(t, depth, point, out, n_vis, 1).or(Ok(()))
}

/// Enumerates all points (over the visible dims) of a basic map.
/// Intended for small sets (simulation, testing); errors out beyond
/// `limit` points.
pub(crate) fn basic_points(bm: &BasicMap, limit: usize) -> Result<Vec<Vec<i64>>> {
    let n_vis = bm.div0();
    let t = Tableau::from_basic(bm)?;
    let mut out = Vec::new();
    let mut point = vec![0i64; t.n];
    enum_rec(&t, 0, &mut point, &mut out, n_vis, limit)?;
    Ok(out)
}

fn enum_rec(
    t: &Tableau,
    depth: usize,
    point: &mut Vec<i64>,
    out: &mut Vec<Vec<i64>>,
    n_vis: usize,
    limit: usize,
) -> Result<()> {
    if depth == t.n {
        // Verify equalities and inequalities exactly.
        let eval = |r: &Row| -> i128 {
            let mut s = r[t.n] as i128;
            for j in 0..t.n {
                s += (r[j] as i128) * (point[j] as i128);
            }
            s
        };
        if t.eqs.iter().all(|r| eval(r) == 0) && t.ineqs.iter().all(|r| eval(r) >= 0) {
            if out.len() >= limit {
                return Err(Error::TooComplex(format!(
                    "more than {limit} points during enumeration"
                )));
            }
            out.push(point[..n_vis].to_vec());
        }
        return Ok(());
    }
    // Partially substituted system: derive bounds for `depth` given the
    // fixed prefix, using rows whose later variables are all zero.
    let mut lo = i64::MIN;
    let mut hi = i64::MAX;
    let bound = |r: &Row, is_eq: bool, lo: &mut i64, hi: &mut i64| -> Result<()> {
        let a = r[depth];
        if a == 0 || (depth + 1..t.n).any(|j| r[j] != 0) {
            return Ok(());
        }
        let mut c = r[t.n] as i128;
        for j in 0..depth {
            c += (r[j] as i128) * (point[j] as i128);
        }
        let c = i64::try_from(c).map_err(|_| Error::Overflow)?;
        if a > 0 {
            *lo = (*lo).max(ceil_div(-c, a));
            if is_eq {
                *hi = (*hi).min(floor_div(-c, a));
            }
        } else {
            *hi = (*hi).min(floor_div(-c, a));
            if is_eq {
                *lo = (*lo).max(ceil_div(-c, a));
            }
        }
        Ok(())
    };
    for r in &t.ineqs {
        bound(r, false, &mut lo, &mut hi)?;
    }
    for r in &t.eqs {
        bound(r, true, &mut lo, &mut hi)?;
    }
    // Also use the global propagated ranges as a backstop.
    if lo == i64::MIN || hi == i64::MAX {
        let ranges = t.propagate_bounds()?;
        if let (Some(l), Some(h)) = ranges[depth] {
            lo = lo.max(l);
            hi = hi.min(h);
        }
    }
    if lo == i64::MIN || hi == i64::MAX {
        return Err(Error::Unbounded(format!(
            "variable {depth} unbounded during enumeration"
        )));
    }
    for v in lo..=hi {
        point[depth] = v;
        enum_rec(t, depth + 1, point, out, n_vis, limit)?;
    }
    point[depth] = 0;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Space, Tuple};

    fn boxed(bounds: &[(i64, i64)]) -> BasicMap {
        let dims: Vec<String> = (0..bounds.len()).map(|i| format!("x{i}")).collect();
        let mut bm = BasicMap::universe(Space::set(Tuple::new("B", dims)));
        for (i, &(l, h)) in bounds.iter().enumerate() {
            let mut lo = bm.zero_row();
            lo[i] = 1;
            let k = bm.konst();
            lo[k] = -l;
            bm.add_ineq(lo);
            let mut hi = bm.zero_row();
            hi[i] = -1;
            hi[bm.konst()] = h;
            bm.add_ineq(hi);
        }
        bm
    }

    #[test]
    fn count_box() {
        let bm = boxed(&[(0, 3), (0, 4)]);
        assert_eq!(count_basic(&bm).unwrap(), 20);
    }

    #[test]
    fn count_empty_box() {
        let bm = boxed(&[(2, 1)]);
        assert_eq!(count_basic(&bm).unwrap(), 0);
    }

    #[test]
    fn count_triangle() {
        // 0 <= x, y ; x + y <= 3 -> 10 points.
        let mut bm = boxed(&[(0, 100), (0, 100)]);
        let mut r = bm.zero_row();
        r[0] = -1;
        r[1] = -1;
        let k = bm.konst();
        r[k] = 3;
        bm.add_ineq(r);
        assert_eq!(count_basic(&bm).unwrap(), 10);
    }

    #[test]
    fn count_with_equality() {
        // 0 <= x,y <= 9 and x = y -> 10 points.
        let mut bm = boxed(&[(0, 9), (0, 9)]);
        let mut r = bm.zero_row();
        r[0] = 1;
        r[1] = -1;
        bm.add_eq(r);
        assert_eq!(count_basic(&bm).unwrap(), 10);
    }

    #[test]
    fn count_with_nonunit_equality() {
        // 0 <= x <= 20, 0 <= y <= 20, 2x = 3y -> y even, x = 3y/2:
        // y in {0,2,4,...,12} gives x in {0,3,...,18}: but x <= 20 -> y <= 13
        // and x = 3y/2 <= 20 -> y <= 13 -> y in {0,2,...,12}: 7 points.
        let mut bm = boxed(&[(0, 20), (0, 20)]);
        let mut r = bm.zero_row();
        r[0] = 2;
        r[1] = -3;
        bm.add_eq(r);
        assert_eq!(count_basic(&bm).unwrap(), 7);
    }

    #[test]
    fn count_with_div() {
        // { [i] : 0 <= i < 16 and i mod 8 < 4 } -> 8 points.
        let mut bm = boxed(&[(0, 15)]);
        let num = bm.zero_row();
        let mut num = num;
        num[0] = 1;
        let d = bm.add_div(num, 8).unwrap();
        // i - 8q <= 3  ->  -i + 8q + 3 >= 0
        let mut r = bm.zero_row();
        r[0] = -1;
        r[d] = 8;
        let k = bm.konst();
        r[k] = 3;
        bm.add_ineq(r);
        assert_eq!(count_basic(&bm).unwrap(), 8);
    }

    #[test]
    fn count_big_series() {
        // 0 <= x < 100000, 0 <= y <= x: triangular number.
        let mut bm = boxed(&[(0, 99_999), (0, 1_000_000)]);
        let mut r = bm.zero_row();
        r[0] = 1;
        r[1] = -1;
        bm.add_ineq(r); // y <= x
        let n: u128 = 100_000;
        assert_eq!(count_basic(&bm).unwrap(), n * (n + 1) / 2);
    }

    #[test]
    fn points_enumeration() {
        let bm = boxed(&[(0, 2), (1, 2)]);
        let pts = basic_points(&bm, 100).unwrap();
        assert_eq!(pts.len(), 6);
        assert!(pts.contains(&vec![0, 1]));
        assert!(pts.contains(&vec![2, 2]));
    }

    #[test]
    fn emptiness() {
        let mut bm = boxed(&[(0, 9)]);
        let mut r = bm.zero_row();
        r[0] = 1;
        let k = bm.konst();
        r[k] = -100; // x >= 100 contradicts x <= 9
        bm.add_ineq(r);
        assert!(basic_is_empty(&bm).unwrap());
    }
}
