//! Parser for the ISL-style textual notation used throughout the paper,
//! e.g.:
//!
//! ```text
//! { S[i,j,k] -> PE[i mod 8, j mod 8] : 0 <= i < 64 and 0 <= j < 64 }
//! { S[k,c,ox,oy,rx,ry] -> T[floor(k/8), floor(c/8), oy, k mod 8 + c mod 8 + ox] }
//! ```
//!
//! Supported expressions are integer-affine combinations of dimensions plus
//! `floor(e / d)` (alias `fl(e / d)`) and `e mod d` / `e % d` with positive
//! literal divisors. Conditions are comparison chains joined by `and`, with
//! `or` and `;` producing unions.

use crate::basic::BasicMap;
use crate::map::Map;
use crate::set::Set;
use crate::space::{Space, Tuple};
use crate::{Error, Result};
use std::collections::HashMap;

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LBrace,
    RBrace,
    LBrack,
    RBrack,
    LParen,
    RParen,
    Comma,
    Arrow,
    Colon,
    Semi,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    EqEq,
    Ge,
    Gt,
    And,
    Or,
    Mod,
    Floor,
}

fn lex(text: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '[' => {
                out.push(Tok::LBrack);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBrack);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '%' => {
                out.push(Tok::Percent);
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    out.push(Tok::Arrow);
                    i += 2;
                } else {
                    out.push(Tok::Minus);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    i += 2;
                } else {
                    i += 1;
                }
                out.push(Tok::EqEq);
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let s: String = bytes[start..i].iter().collect();
                let v: i64 = s
                    .parse()
                    .map_err(|_| Error::Parse(format!("integer literal out of range: {s}")))?;
                out.push(Tok::Int(v));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '\'')
                {
                    i += 1;
                }
                let s: String = bytes[start..i].iter().collect();
                match s.as_str() {
                    "and" => out.push(Tok::And),
                    "or" => out.push(Tok::Or),
                    "mod" => out.push(Tok::Mod),
                    "floor" | "fl" | "floord" => out.push(Tok::Floor),
                    _ => out.push(Tok::Ident(s)),
                }
            }
            _ => return Err(Error::Parse(format!("unexpected character `{c}`"))),
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------- AST ---

#[derive(Debug, Clone)]
enum EAst {
    Int(i64),
    Var(String),
    Neg(Box<EAst>),
    Add(Box<EAst>, Box<EAst>),
    Sub(Box<EAst>, Box<EAst>),
    Mul(Box<EAst>, Box<EAst>),
    Floor(Box<EAst>, Box<EAst>),
    Mod(Box<EAst>, Box<EAst>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmp {
    Lt,
    Le,
    Eq,
    Ge,
    Gt,
}

#[derive(Debug, Clone)]
struct Chain {
    items: Vec<EAst>,
    ops: Vec<Cmp>,
}

/// One `or`-branch: a conjunction of chains.
type Conj = Vec<Chain>;

#[derive(Debug, Clone)]
struct DisjunctAst {
    in_tuple: Option<(Option<String>, Vec<EAst>)>,
    out_tuple: (Option<String>, Vec<EAst>),
    branches: Vec<Conj>, // at least one (empty = no condition)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        let got = self.next()?;
        if got != t {
            return Err(Error::Parse(format!("expected {t:?}, found {got:?}")));
        }
        Ok(())
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_relation(&mut self) -> Result<Vec<DisjunctAst>> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        loop {
            out.push(self.parse_disjunct()?);
            if self.eat(&Tok::Semi) {
                continue;
            }
            break;
        }
        self.expect(Tok::RBrace)?;
        if self.pos != self.toks.len() {
            return Err(Error::Parse("trailing input after `}`".into()));
        }
        Ok(out)
    }

    fn parse_disjunct(&mut self) -> Result<DisjunctAst> {
        let first = self.parse_tuple()?;
        let (in_tuple, out_tuple) = if self.eat(&Tok::Arrow) {
            let second = self.parse_tuple()?;
            (Some(first), second)
        } else {
            (None, first)
        };
        let mut branches = vec![Vec::new()];
        if self.eat(&Tok::Colon) {
            branches = self.parse_or()?;
        }
        Ok(DisjunctAst {
            in_tuple,
            out_tuple,
            branches,
        })
    }

    fn parse_tuple(&mut self) -> Result<(Option<String>, Vec<EAst>)> {
        let name = match self.peek() {
            Some(Tok::Ident(_)) => {
                if let Tok::Ident(n) = self.next()? {
                    Some(n)
                } else {
                    unreachable!()
                }
            }
            _ => None,
        };
        self.expect(Tok::LBrack)?;
        let mut entries = Vec::new();
        if self.peek() != Some(&Tok::RBrack) {
            loop {
                entries.push(self.parse_expr()?);
                if self.eat(&Tok::Comma) {
                    continue;
                }
                break;
            }
        }
        self.expect(Tok::RBrack)?;
        Ok((name, entries))
    }

    fn parse_or(&mut self) -> Result<Vec<Conj>> {
        let mut out = vec![self.parse_and()?];
        while self.eat(&Tok::Or) {
            out.push(self.parse_and()?);
        }
        Ok(out)
    }

    fn parse_and(&mut self) -> Result<Conj> {
        let mut out = vec![self.parse_chain()?];
        while self.eat(&Tok::And) {
            out.push(self.parse_chain()?);
        }
        Ok(out)
    }

    fn parse_chain(&mut self) -> Result<Chain> {
        let mut items = vec![self.parse_expr()?];
        let mut ops = Vec::new();
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => Cmp::Lt,
                Some(Tok::Le) => Cmp::Le,
                Some(Tok::EqEq) => Cmp::Eq,
                Some(Tok::Ge) => Cmp::Ge,
                Some(Tok::Gt) => Cmp::Gt,
                _ => break,
            };
            self.pos += 1;
            ops.push(op);
            items.push(self.parse_expr()?);
        }
        if ops.is_empty() {
            return Err(Error::Parse("expected a comparison operator".into()));
        }
        Ok(Chain { items, ops })
    }

    fn parse_expr(&mut self) -> Result<EAst> {
        let mut lhs = self.parse_term()?;
        loop {
            if self.eat(&Tok::Plus) {
                let rhs = self.parse_term()?;
                lhs = EAst::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Minus) {
                let rhs = self.parse_term()?;
                lhs = EAst::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<EAst> {
        let mut lhs = self.parse_postfix()?;
        loop {
            if self.eat(&Tok::Star) {
                let rhs = self.parse_postfix()?;
                lhs = EAst::Mul(Box::new(lhs), Box::new(rhs));
            } else if matches!(
                self.peek(),
                Some(Tok::Ident(_)) | Some(Tok::LParen) | Some(Tok::Floor)
            ) {
                // Implicit multiplication, e.g. `2 j` or `8 floor(i/8)`
                // as produced by ISL-style printers.
                let rhs = self.parse_postfix()?;
                lhs = EAst::Mul(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_postfix(&mut self) -> Result<EAst> {
        let mut e = self.parse_factor()?;
        loop {
            if self.eat(&Tok::Mod) || self.eat(&Tok::Percent) {
                let d = self.parse_factor()?;
                e = EAst::Mod(Box::new(e), Box::new(d));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_factor(&mut self) -> Result<EAst> {
        match self.next()? {
            Tok::Int(v) => Ok(EAst::Int(v)),
            Tok::Ident(n) => {
                // Implicit multiplication such as `2i` is not produced by
                // the lexer (it splits at the digit/alpha boundary), so an
                // identifier is always a plain variable here.
                Ok(EAst::Var(n))
            }
            Tok::Minus => Ok(EAst::Neg(Box::new(self.parse_factor()?))),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Floor => {
                self.expect(Tok::LParen)?;
                let num = self.parse_expr()?;
                self.expect(Tok::Slash)?;
                let den = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(EAst::Floor(Box::new(num), Box::new(den)))
            }
            t => Err(Error::Parse(format!(
                "unexpected token {t:?} in expression"
            ))),
        }
    }
}

// ----------------------------------------------------------- evaluation --

/// A linear expression over the visible dims and div indices of a basic map
/// under construction.
#[derive(Debug, Clone)]
struct Lin {
    vis: Vec<i64>,
    divs: Vec<(usize, i64)>, // (div index, coefficient)
    k: i64,
}

impl Lin {
    fn konst(n_vis: usize, v: i64) -> Lin {
        Lin {
            vis: vec![0; n_vis],
            divs: Vec::new(),
            k: v,
        }
    }

    fn var(n_vis: usize, col: usize) -> Lin {
        let mut vis = vec![0; n_vis];
        vis[col] = 1;
        Lin {
            vis,
            divs: Vec::new(),
            k: 0,
        }
    }

    fn as_const(&self) -> Option<i64> {
        if self.vis.iter().all(|&c| c == 0) && self.divs.is_empty() {
            Some(self.k)
        } else {
            None
        }
    }

    fn add(&self, other: &Lin, sign: i64) -> Result<Lin> {
        let mut vis = self.vis.clone();
        for (a, b) in vis.iter_mut().zip(other.vis.iter()) {
            *a = a
                .checked_add(sign.checked_mul(*b).ok_or(Error::Overflow)?)
                .ok_or(Error::Overflow)?;
        }
        let mut divs = self.divs.clone();
        for &(d, c) in &other.divs {
            match divs.iter_mut().find(|(dd, _)| *dd == d) {
                Some((_, cc)) => *cc += sign * c,
                None => divs.push((d, sign * c)),
            }
        }
        divs.retain(|&(_, c)| c != 0);
        Ok(Lin {
            vis,
            divs,
            k: self
                .k
                .checked_add(sign.checked_mul(other.k).ok_or(Error::Overflow)?)
                .ok_or(Error::Overflow)?,
        })
    }

    fn scale(&self, s: i64) -> Result<Lin> {
        let mut out = self.clone();
        for c in out.vis.iter_mut() {
            *c = c.checked_mul(s).ok_or(Error::Overflow)?;
        }
        for (_, c) in out.divs.iter_mut() {
            *c = c.checked_mul(s).ok_or(Error::Overflow)?;
        }
        out.k = out.k.checked_mul(s).ok_or(Error::Overflow)?;
        Ok(out)
    }

    fn to_row(&self, bm: &BasicMap) -> crate::basic::Row {
        let mut row = crate::basic::Row::zeros(bm.n_cols());
        row[..self.vis.len()].copy_from_slice(&self.vis);
        let div0 = bm.div0();
        for &(d, c) in &self.divs {
            row[div0 + d] = c;
        }
        let k = bm.konst();
        row[k] = self.k;
        row
    }
}

fn eval(ast: &EAst, bm: &mut BasicMap, dims: &HashMap<String, usize>) -> Result<Lin> {
    let n_vis = bm.div0();
    match ast {
        EAst::Int(v) => Ok(Lin::konst(n_vis, *v)),
        EAst::Var(n) => {
            let col = *dims
                .get(n)
                .ok_or_else(|| Error::Parse(format!("unknown dimension `{n}`")))?;
            Ok(Lin::var(n_vis, col))
        }
        EAst::Neg(e) => eval(e, bm, dims)?.scale(-1),
        EAst::Add(a, b) => {
            let la = eval(a, bm, dims)?;
            let lb = eval(b, bm, dims)?;
            la.add(&lb, 1)
        }
        EAst::Sub(a, b) => {
            let la = eval(a, bm, dims)?;
            let lb = eval(b, bm, dims)?;
            la.add(&lb, -1)
        }
        EAst::Mul(a, b) => {
            let la = eval(a, bm, dims)?;
            let lb = eval(b, bm, dims)?;
            match (la.as_const(), lb.as_const()) {
                (Some(c), _) => lb.scale(c),
                (_, Some(c)) => la.scale(c),
                _ => Err(Error::Parse(
                    "non-affine product of two non-constant expressions".into(),
                )),
            }
        }
        EAst::Floor(num, den) => {
            let lden = eval(den, bm, dims)?;
            let d = lden
                .as_const()
                .filter(|&d| d > 0)
                .ok_or_else(|| Error::Parse("floor divisor must be a positive constant".into()))?;
            let lnum = eval(num, bm, dims)?;
            let row = lnum.to_row(bm);
            let col = bm.add_div(row, d)?;
            let idx = col - bm.div0();
            Ok(Lin {
                vis: vec![0; n_vis],
                divs: vec![(idx, 1)],
                k: 0,
            })
        }
        EAst::Mod(num, den) => {
            let lden = eval(den, bm, dims)?;
            let d = lden
                .as_const()
                .filter(|&d| d > 0)
                .ok_or_else(|| Error::Parse("mod divisor must be a positive constant".into()))?;
            let lnum = eval(num, bm, dims)?;
            let row = lnum.to_row(bm);
            let col = bm.add_div(row, d)?;
            let idx = col - bm.div0();
            let q = Lin {
                vis: vec![0; n_vis],
                divs: vec![(idx, 1)],
                k: 0,
            };
            lnum.add(&q.scale(d)?, -1)
        }
    }
}

/// Builds the basic maps for one disjunct. The returned space `Arc` is
/// shared by every produced basic map.
fn build_disjunct(d: &DisjunctAst, is_map: bool) -> Result<(std::sync::Arc<Space>, Vec<BasicMap>)> {
    if is_map && d.in_tuple.is_none() {
        return Err(Error::Parse("expected a map (`->` missing)".into()));
    }
    if !is_map && d.in_tuple.is_some() {
        return Err(Error::Parse("expected a set, found a map".into()));
    }
    // Input dims must be plain fresh identifiers.
    let mut dims: HashMap<String, usize> = HashMap::new();
    let mut in_names = Vec::new();
    if let Some((_, entries)) = &d.in_tuple {
        for e in entries {
            match e {
                EAst::Var(n) if !dims.contains_key(n) => {
                    dims.insert(n.clone(), in_names.len());
                    in_names.push(n.clone());
                }
                _ => {
                    return Err(Error::Parse(
                        "input tuple entries must be distinct identifiers".into(),
                    ))
                }
            }
        }
    }
    // Output entries: fresh identifier -> named dim; otherwise anonymous
    // dim pinned by an equality.
    let n_in = in_names.len();
    let mut out_names = Vec::new();
    let mut pinned: Vec<(usize, EAst)> = Vec::new();
    for (i, e) in d.out_tuple.1.iter().enumerate() {
        match e {
            EAst::Var(n) if !dims.contains_key(n) => {
                dims.insert(n.clone(), n_in + out_names.len());
                out_names.push(n.clone());
            }
            _ => {
                let name = format!("_o{i}");
                dims.insert(name.clone(), n_in + out_names.len());
                out_names.push(name);
                pinned.push((i, e.clone()));
            }
        }
    }
    let space = std::sync::Arc::new(Space {
        input: Tuple {
            name: d.in_tuple.as_ref().and_then(|(n, _)| n.clone()),
            dims: in_names,
        },
        output: Tuple {
            name: d.out_tuple.0.clone(),
            dims: out_names,
        },
    });
    let mut base = BasicMap::universe(space.clone());
    for (i, e) in &pinned {
        let lin = eval(e, &mut base, &dims)?;
        let mut row = lin.to_row(&base);
        let col = n_in + i;
        row[col] -= 1; // out_col == expr  ->  expr - out_col == 0
        base.add_eq(row);
    }
    let mut basics = Vec::new();
    for branch in &d.branches {
        let mut bm = base.clone();
        for chain in branch {
            let mut lins = Vec::new();
            for item in &chain.items {
                lins.push(eval(item, &mut bm, &dims)?);
            }
            for (w, op) in chain.ops.iter().enumerate() {
                let a = &lins[w];
                let b = &lins[w + 1];
                match op {
                    Cmp::Eq => {
                        let row = b.add(a, -1)?.to_row(&bm);
                        bm.add_eq(row);
                    }
                    Cmp::Le => {
                        let row = b.add(a, -1)?.to_row(&bm);
                        bm.add_ineq(row);
                    }
                    Cmp::Lt => {
                        let mut row = b.add(a, -1)?.to_row(&bm);
                        let k = bm.konst();
                        row[k] -= 1;
                        bm.add_ineq(row);
                    }
                    Cmp::Ge => {
                        let row = a.add(b, -1)?.to_row(&bm);
                        bm.add_ineq(row);
                    }
                    Cmp::Gt => {
                        let mut row = a.add(b, -1)?.to_row(&bm);
                        let k = bm.konst();
                        row[k] -= 1;
                        bm.add_ineq(row);
                    }
                }
            }
        }
        if bm.simplify() {
            basics.push(bm);
        }
    }
    Ok((space, basics))
}

pub(crate) fn parse_map(text: &str) -> Result<Map> {
    let toks = lex(text)?;
    let mut p = Parser { toks, pos: 0 };
    let disjuncts = p.parse_relation()?;
    let mut result: Option<Map> = None;
    for d in &disjuncts {
        let (space, basics) = build_disjunct(d, true)?;
        let m = Map { space, basics };
        result = Some(match result {
            None => m,
            Some(acc) => acc.union(&m)?,
        });
    }
    result.ok_or_else(|| Error::Parse("empty relation".into()))
}

pub(crate) fn parse_set(text: &str) -> Result<Set> {
    let toks = lex(text)?;
    let mut p = Parser { toks, pos: 0 };
    let disjuncts = p.parse_relation()?;
    let mut result: Option<Map> = None;
    for d in &disjuncts {
        let (space, basics) = build_disjunct(d, false)?;
        let m = Map { space, basics };
        result = Some(match result {
            None => m,
            Some(acc) => acc.union(&m)?,
        });
    }
    let m = result.ok_or_else(|| Error::Parse("empty set".into()))?;
    Set::try_from_map(m)
}

#[cfg(test)]
mod tests {
    use crate::{Map, Set};

    #[test]
    fn parse_simple_box() {
        let s = Set::parse("{ S[i, j] : 0 <= i < 4 and 0 <= j < 3 }").unwrap();
        assert_eq!(s.card().unwrap(), 12);
    }

    #[test]
    fn parse_chain_comparisons() {
        let s = Set::parse("{ A[i] : 0 <= i <= 9 }").unwrap();
        assert_eq!(s.card().unwrap(), 10);
    }

    #[test]
    fn parse_map_with_expressions() {
        let m = Map::parse("{ S[i, j] -> T[i + j] : 0 <= i < 2 and 0 <= j < 2 }").unwrap();
        assert!(m.contains_point(&[1, 1, 2]).unwrap());
        assert!(!m.contains_point(&[1, 1, 1]).unwrap());
    }

    #[test]
    fn parse_mod_and_floor() {
        let m = Map::parse("{ S[i] -> PE[i mod 8, floor(i/8)] : 0 <= i < 16 }").unwrap();
        assert!(m.contains_point(&[10, 2, 1]).unwrap());
        assert!(!m.contains_point(&[10, 3, 1]).unwrap());
        assert_eq!(m.card().unwrap(), 16);
    }

    #[test]
    fn parse_fl_alias_and_percent() {
        let m = Map::parse("{ S[i] -> PE[i % 4, fl(i/4)] : 0 <= i < 8 }").unwrap();
        assert!(m.contains_point(&[6, 2, 1]).unwrap());
    }

    #[test]
    fn parse_or_union() {
        let s = Set::parse("{ A[i] : 0 <= i < 2 or 10 <= i < 12 }").unwrap();
        assert_eq!(s.card().unwrap(), 4);
    }

    #[test]
    fn parse_semicolon_union() {
        let s = Set::parse("{ A[i] : 0 <= i < 2; A[i] : 5 <= i < 7 }").unwrap();
        assert_eq!(s.card().unwrap(), 4);
    }

    #[test]
    fn parse_coefficient_product() {
        let m = Map::parse("{ S[c, ry] -> PE[ry + 3*(c mod 4)] }").unwrap();
        assert!(m.contains_point(&[5, 2, 5]).unwrap()); // 2 + 3*1 = 5
    }

    #[test]
    fn parse_rejects_nonaffine() {
        assert!(Map::parse("{ S[i, j] -> T[i * j] }").is_err());
    }

    #[test]
    fn parse_rejects_unknown_dim() {
        assert!(Set::parse("{ A[i] : 0 <= z }").is_err());
    }

    #[test]
    fn parse_negative_and_parens() {
        let m = Map::parse("{ S[i] -> T[-(i - 3)] : 0 <= i < 4 }").unwrap();
        assert!(m.contains_point(&[0, 3]).unwrap());
        assert!(m.contains_point(&[3, 0]).unwrap());
    }

    #[test]
    fn parse_anonymous_tuple() {
        let s = Set::parse("{ [i] : 0 <= i < 5 }").unwrap();
        assert_eq!(s.card().unwrap(), 5);
    }

    #[test]
    fn out_dim_reusing_in_dim_name_is_equality() {
        // `i` on the right refers to the input dim -> equality constraint.
        let m = Map::parse("{ S[i] -> T[i] : 0 <= i < 3 }").unwrap();
        assert!(m.contains_point(&[2, 2]).unwrap());
        assert!(!m.contains_point(&[2, 1]).unwrap());
    }
}
