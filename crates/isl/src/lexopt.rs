//! Lexicographic optimization: `lexmin` / `lexmax` of bounded sets.
//!
//! ISL exposes `isl_set_lexmin`; TENET uses it implicitly whenever a
//! schedule's first or last stamp matters (e.g. the make-span of a
//! time-stamp relation). This module implements the operation for the
//! bounded sets of this crate by dimension-wise binary search over
//! feasibility, which needs only `O(Σ log(range_d))` emptiness tests.

use crate::basic::BasicMap;
use crate::count::{basic_is_empty, var_range};
use crate::map::Map;
use crate::set::Set;
use crate::Result;

/// Lexicographically smallest (`maximize = false`) or largest point of a
/// single basic map over its visible dimensions.
pub(crate) fn basic_lexopt(bm: &BasicMap, maximize: bool) -> Result<Option<Vec<i64>>> {
    if basic_is_empty(bm)? {
        return Ok(None);
    }
    let n_vis = bm.div0();
    let mut cur = bm.clone();
    let mut point = Vec::with_capacity(n_vis);
    for d in 0..n_vis {
        let (mut lo, mut hi) = var_range(&cur, d)?;
        while lo < hi {
            if maximize {
                // Try the upper half: feasible with x_d >= mid?
                let mid = lo + (hi - lo + 1) / 2;
                let mut probe = cur.clone();
                let mut row = probe.zero_row();
                row[d] = 1;
                let k = probe.konst();
                row[k] = -mid;
                probe.add_ineq(row);
                if basic_is_empty(&probe)? {
                    hi = mid - 1;
                } else {
                    lo = mid;
                }
            } else {
                // Try the lower half: feasible with x_d <= mid?
                let mid = lo + (hi - lo) / 2;
                let mut probe = cur.clone();
                let mut row = probe.zero_row();
                row[d] = -1;
                let k = probe.konst();
                row[k] = mid;
                probe.add_ineq(row);
                if basic_is_empty(&probe)? {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
        }
        let mut row = cur.zero_row();
        row[d] = 1;
        let k = cur.konst();
        row[k] = -lo;
        cur.add_eq(row);
        point.push(lo);
    }
    Ok(Some(point))
}

/// `a <_lex b`.
fn lex_less(a: &[i64], b: &[i64]) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

pub(crate) fn map_lexopt(map: &Map, maximize: bool) -> Result<Option<Vec<i64>>> {
    let mut best: Option<Vec<i64>> = None;
    for b in map.basics() {
        if let Some(p) = basic_lexopt(b, maximize)? {
            best = Some(match best {
                None => p,
                Some(q) => {
                    let p_better = if maximize {
                        lex_less(&q, &p)
                    } else {
                        lex_less(&p, &q)
                    };
                    if p_better {
                        p
                    } else {
                        q
                    }
                }
            });
        }
    }
    Ok(best)
}

impl Set {
    /// The lexicographically smallest point of the set, or `None` if it
    /// is empty.
    ///
    /// ```
    /// use tenet_isl::Set;
    /// let s = Set::parse("{ T[i, j] : 0 <= i < 4 and 0 <= j < 3 and i + j >= 2 }")?;
    /// assert_eq!(s.lexmin()?, Some(vec![0, 2]));
    /// # Ok::<(), tenet_isl::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Fails with [`crate::Error::Unbounded`] if some dimension has no
    /// finite bound.
    pub fn lexmin(&self) -> Result<Option<Vec<i64>>> {
        map_lexopt(self.as_map(), false)
    }

    /// The lexicographically largest point of the set, or `None` if it is
    /// empty.
    ///
    /// # Errors
    ///
    /// Fails with [`crate::Error::Unbounded`] if some dimension has no
    /// finite bound.
    pub fn lexmax(&self) -> Result<Option<Vec<i64>>> {
        map_lexopt(self.as_map(), true)
    }
}

impl Map {
    /// The lexicographically smallest pair `(in ++ out)` of the relation,
    /// or `None` if it is empty.
    ///
    /// # Errors
    ///
    /// Fails with [`crate::Error::Unbounded`] if some dimension has no
    /// finite bound.
    pub fn lexmin(&self) -> Result<Option<Vec<i64>>> {
        map_lexopt(self, false)
    }

    /// The lexicographically largest pair `(in ++ out)` of the relation,
    /// or `None` if it is empty.
    ///
    /// # Errors
    ///
    /// Fails with [`crate::Error::Unbounded`] if some dimension has no
    /// finite bound.
    pub fn lexmax(&self) -> Result<Option<Vec<i64>>> {
        map_lexopt(self, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexmin_of_box() {
        let s = Set::parse("{ A[i, j] : 2 <= i < 9 and -3 <= j < 5 }").unwrap();
        assert_eq!(s.lexmin().unwrap(), Some(vec![2, -3]));
        assert_eq!(s.lexmax().unwrap(), Some(vec![8, 4]));
    }

    #[test]
    fn lexmin_respects_coupling() {
        // Smallest i is 0, but then j must be >= 2.
        let s = Set::parse("{ A[i, j] : 0 <= i < 4 and 0 <= j < 3 and i + j >= 2 }").unwrap();
        assert_eq!(s.lexmin().unwrap(), Some(vec![0, 2]));
        assert_eq!(s.lexmax().unwrap(), Some(vec![3, 2]));
    }

    #[test]
    fn lexopt_of_empty_set_is_none() {
        let s = Set::parse("{ A[i] : 0 <= i < 4 and i >= 7 }").unwrap();
        assert_eq!(s.lexmin().unwrap(), None);
        assert_eq!(s.lexmax().unwrap(), None);
    }

    #[test]
    fn lexopt_across_disjuncts() {
        let a = Set::parse("{ A[i] : 5 <= i < 9 }").unwrap();
        let b = Set::parse("{ A[i] : 0 <= i < 2 }").unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.lexmin().unwrap(), Some(vec![0]));
        assert_eq!(u.lexmax().unwrap(), Some(vec![8]));
    }

    #[test]
    fn lexopt_with_divs() {
        // Even numbers in [1, 10): lexmin 2, lexmax 8.
        let s = Set::parse("{ A[i] : 1 <= i < 10 and i mod 2 = 0 }").unwrap();
        assert_eq!(s.lexmin().unwrap(), Some(vec![2]));
        assert_eq!(s.lexmax().unwrap(), Some(vec![8]));
    }

    #[test]
    fn lexopt_matches_enumeration() {
        let s =
            Set::parse("{ A[i, j, k] : 0 <= i < 5 and 0 <= j < 5 and 0 <= k < 5 and i + 2 j - k >= 3 and k >= i }")
                .unwrap();
        let mut pts = s.points(1000).unwrap();
        pts.sort();
        assert_eq!(s.lexmin().unwrap().as_deref(), pts.first().map(|v| &v[..]));
        assert_eq!(s.lexmax().unwrap().as_deref(), pts.last().map(|v| &v[..]));
    }

    #[test]
    fn map_lexmin_orders_input_then_output() {
        let m = crate::Map::parse("{ A[i] -> B[j] : 0 <= i < 3 and i <= j < 4 }").unwrap();
        assert_eq!(m.lexmin().unwrap(), Some(vec![0, 0]));
        assert_eq!(m.lexmax().unwrap(), Some(vec![2, 3]));
    }

    #[test]
    fn unbounded_dimension_errors() {
        let s = Set::parse("{ A[i] : i >= 0 }").unwrap();
        assert!(s.lexmin().is_err());
    }
}
