//! The shared operation-memoization context.
//!
//! TENET metrics recompute the *same* relational operations constantly: a
//! DSE sweep evaluates thousands of dataflow candidates that all share the
//! same access maps, and a single report queries `card` on the same
//! intermediate relations many times (volumes, latency, bandwidth, energy
//! all start from the assignment relation). This module gives the crate a
//! process-wide, thread-safe memo table so those repeats cost a hash
//! lookup instead of a Presburger computation.
//!
//! # Design
//!
//! * **Interning.** Every [`Map`] that participates in a memoized
//!   operation is interned: the map value is the key of a hash table
//!   mapping to a small integer id. Interning makes the memo keys compact
//!   (`(op, id, id, extra)`) and — because the table compares keys with
//!   full structural equality, never by hash alone — collision-proof.
//! * **Memoization.** Results are stored under `(op kind, interned
//!   operand ids, extra operand)`. Cached values are returned as clones of
//!   the stored result.
//! * **Exactness.** The cache can only return a value that was computed
//!   by the very operation being memoized on structurally identical
//!   operands, so cached and uncached results are *bit-identical* — there
//!   is no approximation, rounding, or hash-collision risk anywhere.
//!   Property tests (`tests/fastpath.rs`) assert this end to end.
//! * **Bounding.** The table is cleared wholesale when it exceeds
//!   [`MAX_ENTRIES`]; correctness never depends on a hit, so eviction is
//!   free to be coarse.
//! * **Concurrency.** One global mutex guards the tables. The lock is
//!   held only for lookups and insertions, never while computing a missed
//!   operation, so parallel DSE threads serialize on microseconds, not on
//!   the Presburger math. Concurrent misses of the same key may compute
//!   the value twice; both compute the same value, and the second insert
//!   is a no-op.
//!
//! Disable globally with [`set_enabled`] or the `TENET_ISL_CACHE=off`
//! environment variable (checked once, at first use).

use crate::map::Map;
use crate::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Entry cap: the whole table is cleared when exceeded.
const MAX_ENTRIES: usize = 1 << 17;

/// Which memoized operation produced a cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum OpKind {
    /// [`Map::reverse`]
    Reverse,
    /// [`Map::apply_range`]
    ApplyRange,
    /// [`Map::intersect`]
    Intersect,
    /// [`Map::subtract`]
    Subtract,
    /// [`Map::project_out_in`] / [`Map::project_out_out`] (side in `extra`)
    Project,
    /// [`Map::card`]
    Card,
    /// [`Map::is_empty`]
    Empty,
    /// [`Map::coalesce`]
    Coalesce,
}

#[derive(Clone)]
enum CachedVal {
    Map(Arc<Map>),
    Count(u128),
    Bool(bool),
}

#[derive(Default)]
struct Tables {
    /// Interned maps: structural value -> id.
    ids: HashMap<Arc<Map>, u64>,
    next_id: u64,
    /// Memo: (op, lhs id, rhs id or MAX, extra) -> result.
    memo: HashMap<(OpKind, u64, u64, i64), CachedVal>,
    /// Parse memos: source text -> parsed map, one table per entry point
    /// (`Map::parse` vs `Set::parse` — each accepts texts the other
    /// rejects, so a hit must never cross them; separate tables also allow
    /// allocation-free borrowed lookups). Parsing is deterministic, and
    /// the generated relation texts of the analysis layer (spacetime
    /// maps, windows) recur verbatim.
    parsed_map: HashMap<String, Arc<Map>>,
    parsed_set: HashMap<String, Arc<Map>>,
    /// Bumped whenever the tables are cleared. Stores capture the
    /// generation at lookup time and are dropped if eviction intervened,
    /// so a result can never be filed under a reused intern id.
    generation: u64,
}

struct Ctx {
    tables: Mutex<Tables>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: AtomicBool,
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let off = std::env::var("TENET_ISL_CACHE")
            .map(|v| v.eq_ignore_ascii_case("off") || v == "0")
            .unwrap_or(false);
        Ctx {
            tables: Mutex::new(Tables::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled: AtomicBool::new(!off),
        }
    })
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Distinct interned relations.
    pub interned: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Current global cache counters.
pub fn stats() -> CacheStats {
    let c = ctx();
    let t = c.tables.lock().expect("isl cache poisoned");
    CacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        entries: t.memo.len() as u64,
        interned: t.ids.len() as u64,
    }
}

/// Clears all cached results and interned relations (counters survive).
pub fn clear() {
    let c = ctx();
    let mut t = c.tables.lock().expect("isl cache poisoned");
    t.memo.clear();
    t.ids.clear();
    t.parsed_map.clear();
    t.parsed_set.clear();
    t.next_id = 0;
    t.generation += 1;
}

/// Resets the hit/miss counters (entries survive).
pub fn reset_stats() {
    let c = ctx();
    c.hits.store(0, Ordering::Relaxed);
    c.misses.store(0, Ordering::Relaxed);
}

/// Globally enables or disables memoization (e.g. for A/B measurements).
pub fn set_enabled(on: bool) {
    ctx().enabled.store(on, Ordering::Relaxed);
}

/// Whether memoization is currently enabled.
pub fn enabled() -> bool {
    ctx().enabled.load(Ordering::Relaxed)
}

/// Interns `m`, returning its id. Caller holds the lock.
fn intern_locked(t: &mut Tables, m: &Map) -> u64 {
    if let Some(&id) = t.ids.get(m) {
        return id;
    }
    let id = t.next_id;
    t.next_id += 1;
    t.ids.insert(Arc::new(m.clone()), id);
    id
}

fn evict_if_full(t: &mut Tables) {
    if t.memo.len() > MAX_ENTRIES
        || t.ids.len() > MAX_ENTRIES
        || t.parsed_map.len() > MAX_ENTRIES
        || t.parsed_set.len() > MAX_ENTRIES
    {
        t.memo.clear();
        t.ids.clear();
        t.parsed_map.clear();
        t.parsed_set.clear();
        t.next_id = 0;
        t.generation += 1;
    }
}

const NO_RHS: u64 = u64::MAX;

/// A pending store slot: the interned operand ids plus the table
/// generation they belong to.
struct Slot {
    ia: u64,
    ib: u64,
    generation: u64,
    hit: Option<CachedVal>,
}

fn lookup(op: OpKind, a: &Map, b: Option<&Map>, extra: i64) -> Option<Slot> {
    let c = ctx();
    if !c.enabled.load(Ordering::Relaxed) {
        return None;
    }
    let mut t = c.tables.lock().expect("isl cache poisoned");
    evict_if_full(&mut t);
    let ia = intern_locked(&mut t, a);
    let ib = match b {
        Some(b) => intern_locked(&mut t, b),
        None => NO_RHS,
    };
    let hit = t.memo.get(&(op, ia, ib, extra)).cloned();
    match &hit {
        Some(_) => c.hits.fetch_add(1, Ordering::Relaxed),
        None => c.misses.fetch_add(1, Ordering::Relaxed),
    };
    Some(Slot {
        ia,
        ib,
        generation: t.generation,
        hit,
    })
}

fn store(op: OpKind, slot: &Slot, extra: i64, val: CachedVal) {
    let c = ctx();
    let mut t = c.tables.lock().expect("isl cache poisoned");
    // An eviction between lookup and store invalidates the captured ids
    // (they may have been reassigned to different relations — note that
    // `compute` itself can trigger eviction through nested memoized ops);
    // dropping the write is always safe: the memo is an accelerator,
    // never a source of truth.
    if t.generation == slot.generation {
        t.memo.insert((op, slot.ia, slot.ib, extra), val);
    }
}

/// Memoizes parsing by source text. `compute` runs without the lock held.
pub(crate) fn memo_parse(
    as_set: bool,
    text: &str,
    compute: impl FnOnce() -> Result<Map>,
) -> Result<Map> {
    let c = ctx();
    if !c.enabled.load(Ordering::Relaxed) {
        return compute();
    }
    {
        let mut t = c.tables.lock().expect("isl cache poisoned");
        evict_if_full(&mut t);
        let table = if as_set { &t.parsed_set } else { &t.parsed_map };
        if let Some(m) = table.get(text) {
            c.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((**m).clone());
        }
        c.misses.fetch_add(1, Ordering::Relaxed);
    }
    let m = compute()?;
    let mut t = c.tables.lock().expect("isl cache poisoned");
    let table = if as_set {
        &mut t.parsed_set
    } else {
        &mut t.parsed_map
    };
    table.insert(text.to_string(), Arc::new(m.clone()));
    Ok(m)
}

/// Memoizes a map-valued operation. `compute` runs without the lock held.
pub(crate) fn memo_map(
    op: OpKind,
    a: &Map,
    b: Option<&Map>,
    extra: i64,
    compute: impl FnOnce() -> Result<Map>,
) -> Result<Map> {
    let slot = lookup(op, a, b, extra);
    if let Some(Slot {
        hit: Some(CachedVal::Map(m)),
        ..
    }) = &slot
    {
        return Ok((**m).clone());
    }
    let result = compute()?;
    if let Some(slot) = slot {
        store(op, &slot, extra, CachedVal::Map(Arc::new(result.clone())));
    }
    Ok(result)
}

/// Memoizes a count-valued operation.
pub(crate) fn memo_count(
    op: OpKind,
    a: &Map,
    compute: impl FnOnce() -> Result<u128>,
) -> Result<u128> {
    let slot = lookup(op, a, None, 0);
    if let Some(Slot {
        hit: Some(CachedVal::Count(n)),
        ..
    }) = &slot
    {
        return Ok(*n);
    }
    let result = compute()?;
    if let Some(slot) = slot {
        store(op, &slot, 0, CachedVal::Count(result));
    }
    Ok(result)
}

/// Memoizes a boolean-valued operation.
pub(crate) fn memo_bool(
    op: OpKind,
    a: &Map,
    compute: impl FnOnce() -> Result<bool>,
) -> Result<bool> {
    let slot = lookup(op, a, None, 0);
    if let Some(Slot {
        hit: Some(CachedVal::Bool(v)),
        ..
    }) = &slot
    {
        return Ok(*v);
    }
    let result = compute()?;
    if let Some(slot) = slot {
        store(op, &slot, 0, CachedVal::Bool(result));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global enabled flag.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap()
    }

    #[test]
    fn card_is_memoized_and_identical() {
        let _guard = test_lock();
        let m = Map::parse("{ S[i, j] -> PE[i] : 0 <= i < 9 and 0 <= j < 7 }").unwrap();
        set_enabled(true);
        clear();
        reset_stats();
        let a = m.card().unwrap();
        let s1 = stats();
        let b = m.card().unwrap();
        let s2 = stats();
        assert_eq!(a, b);
        assert_eq!(a, 63);
        assert!(
            s2.hits > s1.hits,
            "second card call must hit: {s1:?} {s2:?}"
        );
    }

    #[test]
    fn disabled_cache_bypasses() {
        let _guard = test_lock();
        let m = Map::parse("{ S[i] -> T[i] : 0 <= i < 5 }").unwrap();
        set_enabled(false);
        clear();
        reset_stats();
        let _ = m.card().unwrap();
        let _ = m.card().unwrap();
        let s = stats();
        assert_eq!(s.hits + s.misses, 0, "disabled cache must not count");
        set_enabled(true);
    }

    #[test]
    fn distinct_maps_do_not_collide() {
        let _guard = test_lock();
        set_enabled(true);
        let a = Map::parse("{ S[i] -> T[i] : 0 <= i < 5 }").unwrap();
        let b = Map::parse("{ S[i] -> T[i] : 0 <= i < 6 }").unwrap();
        assert_eq!(a.card().unwrap(), 5);
        assert_eq!(b.card().unwrap(), 6);
        assert_eq!(a.card().unwrap(), 5);
    }
}
