//! The shared operation-memoization context.
//!
//! TENET metrics recompute the *same* relational operations constantly: a
//! DSE sweep evaluates thousands of dataflow candidates that all share the
//! same access maps, and a single report queries `card` on the same
//! intermediate relations many times (volumes, latency, bandwidth, energy
//! all start from the assignment relation). This module gives the crate a
//! process-wide, thread-safe memo table so those repeats cost a hash
//! lookup instead of a Presburger computation.
//!
//! # Design
//!
//! * **Interning.** Every [`Map`] that participates in a memoized
//!   operation is interned: the map value is the key of a hash table
//!   mapping to a small integer id. Interning makes the memo keys compact
//!   (`(op, id, id, extra)`) and — because the table compares keys with
//!   full structural equality, never by hash alone — collision-proof.
//! * **Memoization.** Results are stored under `(op kind, interned
//!   operand ids, extra operand)`. Cached values are returned as clones of
//!   the stored result.
//! * **Exactness.** The cache can only return a value that was computed
//!   by the very operation being memoized on structurally identical
//!   operands, so cached and uncached results are *bit-identical* — there
//!   is no approximation, rounding, or hash-collision risk anywhere.
//!   Property tests (`tests/fastpath.rs`) assert this end to end.
//! * **Bounding.** The table is cleared wholesale when it exceeds
//!   [`MAX_ENTRIES`]; correctness never depends on a hit, so eviction is
//!   free to be coarse.
//! * **Concurrency.** One global mutex guards the tables. The lock is
//!   held only for lookups and insertions, never while computing a missed
//!   operation, so parallel DSE threads serialize on microseconds, not on
//!   the Presburger math. Concurrent misses of the same key may compute
//!   the value twice; both compute the same value, and the second insert
//!   is a no-op.
//!
//! Disable globally with [`set_enabled`] or the `TENET_ISL_CACHE=off`
//! environment variable (checked once, at first use).

use crate::map::Map;
use crate::Result;
use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Entry cap: the whole table is cleared when exceeded.
const MAX_ENTRIES: usize = 1 << 17;

/// Which memoized operation produced a cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum OpKind {
    /// [`Map::reverse`]
    Reverse,
    /// [`Map::apply_range`]
    ApplyRange,
    /// [`Map::intersect`]
    Intersect,
    /// [`Map::subtract`]
    Subtract,
    /// [`Map::project_out_in`] / [`Map::project_out_out`] (side in `extra`)
    Project,
    /// [`Map::union`]
    Union,
    /// [`Map::intersect_domain`]
    IntersectDomain,
    /// [`Map::intersect_range`]
    IntersectRange,
    /// [`Map::card`]
    Card,
    /// [`Map::is_empty`]
    Empty,
    /// [`Map::coalesce`]
    Coalesce,
    /// [`Map::fix_in`] / [`Map::fix_out`] (column and value in `extra`)
    Fix,
    /// [`crate::Set::max_suffix_slice_card`] (split position in `extra`)
    SliceMax,
}

#[derive(Clone)]
enum CachedVal {
    Map(Arc<Map>),
    Count(u128),
    Bool(bool),
}

#[derive(Default)]
struct Tables {
    /// Interned maps, bucketed by a *precomputed* structural hash (see
    /// [`map_hash`]): callers hash — and, for first-seen operands, clone —
    /// outside the global mutex, so the locked section only does bucket
    /// lookups and (rare) equality scans. Buckets hold every interned map
    /// with that hash; equality disambiguates, so collisions stay safe.
    ids: HashMap<u64, Vec<(Arc<Map>, u64)>>,
    /// Count of interned maps across all buckets.
    n_interned: usize,
    next_id: u64,
    /// Memo: (op, lhs id, rhs id or MAX, extra) -> result.
    memo: HashMap<(OpKind, u64, u64, i128), CachedVal>,
    /// Parse memos: source text -> parsed map, one table per entry point
    /// (`Map::parse` vs `Set::parse` — each accepts texts the other
    /// rejects, so a hit must never cross them; separate tables also allow
    /// allocation-free borrowed lookups). Parsing is deterministic, and
    /// the generated relation texts of the analysis layer (spacetime
    /// maps, windows) recur verbatim.
    parsed_map: HashMap<String, Arc<Map>>,
    parsed_set: HashMap<String, Arc<Map>>,
    /// Bumped whenever the tables are cleared. Stores capture the
    /// generation at lookup time and are dropped if eviction intervened,
    /// so a result can never be filed under a reused intern id.
    generation: u64,
}

struct Ctx {
    tables: Mutex<Tables>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: AtomicBool,
}

thread_local! {
    /// Counter handles attached to the current thread (a stack: nested
    /// scopes may each attach their own handle).
    static ATTACHED: RefCell<Vec<CounterHandle>> = const { RefCell::new(Vec::new()) };
}

/// Exact per-run hit/miss counters, independent of the process-wide
/// totals.
///
/// A handle only observes lookups made on threads it is [attached] to, so
/// concurrent cache users (other exploration runs, server requests on
/// other workers) never pollute its numbers — unlike deltas of
/// [`stats`], which are process-wide. Handles are cheap `Arc` clones;
/// attach the same handle on several threads (see
/// [`attached_handles`] for propagating into worker pools) to aggregate
/// one logical run that spans threads.
///
/// [attached]: CounterHandle::attach
#[derive(Clone, Default)]
pub struct CounterHandle {
    inner: Arc<HandleCounters>,
}

#[derive(Default)]
struct HandleCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    /// Wall nanoseconds spent inside *cold* (missed) memo computations on
    /// attached threads. Nested memoized ops only accrue at the outermost
    /// compute, so the total never exceeds wall time.
    cold_ns: AtomicU64,
    /// Closed-form fast-path dispatches (`count_fast` family) taken on
    /// attached threads.
    fast: AtomicU64,
    /// Per-kind dispatch counts, indexed by
    /// [`crate::count::FastPathKind`] discriminant.
    fast_kinds: [AtomicU64; crate::count::FAST_PATH_KINDS],
}

impl CounterHandle {
    /// A fresh handle with zeroed counters.
    pub fn new() -> CounterHandle {
        CounterHandle::default()
    }

    /// Attaches the handle to the current thread until the guard drops.
    ///
    /// Every memo lookup performed on this thread inside the guard's
    /// lifetime bumps the handle's counters (in addition to the global
    /// ones and any other attached handles).
    pub fn attach(&self) -> AttachGuard {
        ATTACHED.with(|a| a.borrow_mut().push(self.clone()));
        AttachGuard {
            handle: self.clone(),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Lookups answered from the memo on attached threads.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute on attached threads.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Hit fraction in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Wall nanoseconds spent in cold (missed) memo computations on
    /// attached threads — the per-request "ISL cold time" the tracing
    /// layer splits out of a request's compute phase.
    pub fn cold_ns(&self) -> u64 {
        self.inner.cold_ns.load(Ordering::Relaxed)
    }

    /// Closed-form counting fast-path dispatches taken on attached
    /// threads (the per-request slice of [`crate::fast_path_stats`]).
    pub fn fast_paths(&self) -> u64 {
        self.inner.fast.load(Ordering::Relaxed)
    }

    /// Per-kind dispatch counts scoped to attached threads — the racing
    /// process-global [`crate::fast_path_stats`] sliced down to this
    /// handle, so dispatch assertions stay exact under test parallelism.
    pub fn fast_path_stats(&self) -> crate::count::CountStats {
        let k = |i: crate::count::FastPathKind| {
            self.inner.fast_kinds[i as usize].load(Ordering::Relaxed)
        };
        use crate::count::FastPathKind as K;
        crate::count::CountStats {
            window_counts: k(K::Window),
            box_counts: k(K::Box),
            slab_counts: k(K::Slab),
            multi_slab_counts: k(K::MultiSlab),
            pair_chain_counts: k(K::PairChain),
            coupled_slab_counts: k(K::CoupledSlab),
        }
    }
}

/// Detaches a [`CounterHandle`] from the current thread on drop.
///
/// Deliberately `!Send`: the guard must drop on the thread that attached.
pub struct AttachGuard {
    handle: CounterHandle,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        ATTACHED.with(|a| {
            let mut v = a.borrow_mut();
            // Pop the most recent attachment of *this* handle (stack
            // discipline holds for scoped guards; search defensively).
            if let Some(pos) = v
                .iter()
                .rposition(|h| Arc::ptr_eq(&h.inner, &self.handle.inner))
            {
                v.remove(pos);
            }
        });
    }
}

/// The handles currently attached to this thread.
///
/// Worker-pool fan-out (e.g. `explore_parallel`) captures this on the
/// spawning thread and re-attaches each handle on its workers, so a
/// logical run keeps exact attribution across its own threads.
pub fn attached_handles() -> Vec<CounterHandle> {
    ATTACHED.with(|a| a.borrow().clone())
}

thread_local! {
    /// Nesting depth of [`timed_compute`] on this thread: cold time is
    /// accrued only at depth 0, so a missed op whose compute recursively
    /// misses nested memoized ops is not double-counted.
    static COLD_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Runs a missed operation's `compute`, charging its wall time to every
/// attached handle's cold-time counter. Free (one thread-local check)
/// when no handle is attached.
fn timed_compute<T>(compute: impl FnOnce() -> Result<T>) -> Result<T> {
    if ATTACHED.with(|a| a.borrow().is_empty()) {
        return compute();
    }
    struct Depth;
    impl Drop for Depth {
        fn drop(&mut self) {
            COLD_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    let outermost = COLD_DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v == 0
    });
    let _depth = Depth;
    let t0 = outermost.then(Instant::now);
    let result = compute();
    if let Some(t0) = t0 {
        let ns = t0.elapsed().as_nanos() as u64;
        ATTACHED.with(|a| {
            for h in a.borrow().iter() {
                h.inner.cold_ns.fetch_add(ns, Ordering::Relaxed);
            }
        });
    }
    result
}

/// Bumps every attached handle's fast-path counters (total and
/// per-kind); called next to the global fast-path counters in the
/// counting layer.
pub(crate) fn note_fastpath(kind: crate::count::FastPathKind) {
    ATTACHED.with(|a| {
        for h in a.borrow().iter() {
            h.inner.fast.fetch_add(1, Ordering::Relaxed);
            h.inner.fast_kinds[kind as usize].fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Bumps the global counters plus every handle attached to this thread.
fn record(c: &Ctx, hit: bool) {
    let global = if hit { &c.hits } else { &c.misses };
    global.fetch_add(1, Ordering::Relaxed);
    ATTACHED.with(|a| {
        for h in a.borrow().iter() {
            let ctr = if hit { &h.inner.hits } else { &h.inner.misses };
            ctr.fetch_add(1, Ordering::Relaxed);
        }
    });
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let off = std::env::var("TENET_ISL_CACHE")
            .map(|v| v.eq_ignore_ascii_case("off") || v == "0")
            .unwrap_or(false);
        Ctx {
            tables: Mutex::new(Tables::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled: AtomicBool::new(!off),
        }
    })
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Distinct interned relations.
    pub interned: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Current global cache counters.
pub fn stats() -> CacheStats {
    let c = ctx();
    let t = c.tables.lock().expect("isl cache poisoned");
    CacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        entries: t.memo.len() as u64,
        interned: t.n_interned as u64,
    }
}

/// Clears all cached results and interned relations (counters survive).
pub fn clear() {
    let c = ctx();
    let mut t = c.tables.lock().expect("isl cache poisoned");
    t.memo.clear();
    t.ids.clear();
    t.n_interned = 0;
    t.parsed_map.clear();
    t.parsed_set.clear();
    t.next_id = 0;
    t.generation += 1;
}

/// Resets the hit/miss counters (entries survive).
pub fn reset_stats() {
    let c = ctx();
    c.hits.store(0, Ordering::Relaxed);
    c.misses.store(0, Ordering::Relaxed);
}

/// Globally enables or disables memoization (e.g. for A/B measurements).
pub fn set_enabled(on: bool) {
    ctx().enabled.store(on, Ordering::Relaxed);
}

/// Whether memoization is currently enabled.
pub fn enabled() -> bool {
    ctx().enabled.load(Ordering::Relaxed)
}

/// Structural hash of a map with a *deterministic* hasher, computed by
/// callers outside the global mutex. `DefaultHasher::new()` is seeded
/// with fixed keys, so every thread derives the same bucket for the same
/// relation.
fn map_hash(m: &Map) -> u64 {
    let mut h = DefaultHasher::new();
    m.hash(&mut h);
    h.finish()
}

/// Looks up the intern id of `m` in the bucket for its precomputed hash.
/// Caller holds the lock; only (rare) same-hash equality scans run here.
fn find_interned(t: &Tables, h: u64, m: &Map) -> Option<u64> {
    t.ids
        .get(&h)?
        .iter()
        .find(|(k, _)| **k == *m)
        .map(|(_, id)| *id)
}

/// Files an already-cloned map under its precomputed hash. Caller holds
/// the lock and has verified the map is not yet interned.
fn insert_interned(t: &mut Tables, h: u64, m: Arc<Map>) -> u64 {
    let id = t.next_id;
    t.next_id += 1;
    t.ids.entry(h).or_default().push((m, id));
    t.n_interned += 1;
    id
}

fn evict_if_full(t: &mut Tables) {
    if t.memo.len() > MAX_ENTRIES
        || t.n_interned > MAX_ENTRIES
        || t.parsed_map.len() > MAX_ENTRIES
        || t.parsed_set.len() > MAX_ENTRIES
    {
        t.memo.clear();
        t.ids.clear();
        t.n_interned = 0;
        t.parsed_map.clear();
        t.parsed_set.clear();
        t.next_id = 0;
        t.generation += 1;
    }
}

const NO_RHS: u64 = u64::MAX;

/// A pending store slot: the interned operand ids plus the table
/// generation they belong to.
struct Slot {
    ia: u64,
    ib: u64,
    generation: u64,
    hit: Option<CachedVal>,
}

/// Finishes a lookup once both operand ids are known. Caller holds the
/// lock.
fn finish_lookup(c: &Ctx, t: &Tables, op: OpKind, ia: u64, ib: u64, extra: i128) -> Slot {
    let hit = t.memo.get(&(op, ia, ib, extra)).cloned();
    record(c, hit.is_some());
    Slot {
        ia,
        ib,
        generation: t.generation,
        hit,
    }
}

fn lookup(op: OpKind, a: &Map, b: Option<&Map>, extra: i128) -> Option<Slot> {
    let c = ctx();
    if !c.enabled.load(Ordering::Relaxed) {
        return None;
    }
    // Structural hashes are computed before taking the lock.
    let ha = map_hash(a);
    let hb = b.map(map_hash);
    // Fast phase: after warm-up both operands are almost always interned
    // already, so one short locked section resolves the whole lookup.
    let (a_known, b_known) = {
        let mut t = c.tables.lock().expect("isl cache poisoned");
        evict_if_full(&mut t);
        let ia = find_interned(&t, ha, a);
        let ib = match (b, hb) {
            (Some(bm), Some(hb)) => find_interned(&t, hb, bm),
            _ => Some(NO_RHS),
        };
        if let (Some(ia), Some(ib)) = (ia, ib) {
            return Some(finish_lookup(c, &t, op, ia, ib, extra));
        }
        (ia.is_some(), ib.is_some())
    };
    // Slow phase: at least one operand is first-seen. Clone it into its
    // `Arc` *outside* the lock — for large unions the deep copy dwarfs the
    // bucket bookkeeping — then re-resolve under the lock (another thread
    // may have interned it meanwhile; its clone simply wins).
    let arc_a = (!a_known).then(|| Arc::new(a.clone()));
    let arc_b = match (b, b_known) {
        (Some(bm), false) => Some(Arc::new(bm.clone())),
        _ => None,
    };
    let mut t = c.tables.lock().expect("isl cache poisoned");
    let ia = match find_interned(&t, ha, a) {
        Some(id) => id,
        None => insert_interned(&mut t, ha, arc_a?),
    };
    let ib = match (b, hb) {
        (Some(bm), Some(hb)) => match find_interned(&t, hb, bm) {
            Some(id) => id,
            None => insert_interned(&mut t, hb, arc_b?),
        },
        _ => NO_RHS,
    };
    Some(finish_lookup(c, &t, op, ia, ib, extra))
}

fn store(op: OpKind, slot: &Slot, extra: i128, val: CachedVal) {
    let c = ctx();
    let mut t = c.tables.lock().expect("isl cache poisoned");
    // An eviction between lookup and store invalidates the captured ids
    // (they may have been reassigned to different relations — note that
    // `compute` itself can trigger eviction through nested memoized ops);
    // dropping the write is always safe: the memo is an accelerator,
    // never a source of truth.
    if t.generation == slot.generation {
        t.memo.insert((op, slot.ia, slot.ib, extra), val);
    }
}

/// Memoizes parsing by source text. `compute` runs without the lock held.
pub(crate) fn memo_parse(
    as_set: bool,
    text: &str,
    compute: impl FnOnce() -> Result<Map>,
) -> Result<Map> {
    let c = ctx();
    if !c.enabled.load(Ordering::Relaxed) {
        return timed_compute(compute);
    }
    {
        let mut t = c.tables.lock().expect("isl cache poisoned");
        evict_if_full(&mut t);
        let table = if as_set { &t.parsed_set } else { &t.parsed_map };
        if let Some(m) = table.get(text) {
            let m = Arc::clone(m);
            drop(t);
            record(c, true);
            return Ok((*m).clone());
        }
        record(c, false);
    }
    let m = timed_compute(compute)?;
    let mut t = c.tables.lock().expect("isl cache poisoned");
    let table = if as_set {
        &mut t.parsed_set
    } else {
        &mut t.parsed_map
    };
    table.insert(text.to_string(), Arc::new(m.clone()));
    Ok(m)
}

/// Memoizes a map-valued operation. `compute` runs without the lock held.
pub(crate) fn memo_map(
    op: OpKind,
    a: &Map,
    b: Option<&Map>,
    extra: i128,
    compute: impl FnOnce() -> Result<Map>,
) -> Result<Map> {
    let slot = lookup(op, a, b, extra);
    if let Some(Slot {
        hit: Some(CachedVal::Map(m)),
        ..
    }) = &slot
    {
        return Ok((**m).clone());
    }
    let result = timed_compute(compute)?;
    if let Some(slot) = slot {
        store(op, &slot, extra, CachedVal::Map(Arc::new(result.clone())));
    }
    Ok(result)
}

/// Memoizes a count-valued operation.
pub(crate) fn memo_count(
    op: OpKind,
    a: &Map,
    extra: i128,
    compute: impl FnOnce() -> Result<u128>,
) -> Result<u128> {
    let slot = lookup(op, a, None, extra);
    if let Some(Slot {
        hit: Some(CachedVal::Count(n)),
        ..
    }) = &slot
    {
        return Ok(*n);
    }
    let result = timed_compute(compute)?;
    if let Some(slot) = slot {
        store(op, &slot, extra, CachedVal::Count(result));
    }
    Ok(result)
}

/// Memoizes a boolean-valued operation.
pub(crate) fn memo_bool(
    op: OpKind,
    a: &Map,
    compute: impl FnOnce() -> Result<bool>,
) -> Result<bool> {
    let slot = lookup(op, a, None, 0);
    if let Some(Slot {
        hit: Some(CachedVal::Bool(v)),
        ..
    }) = &slot
    {
        return Ok(*v);
    }
    let result = timed_compute(compute)?;
    if let Some(slot) = slot {
        store(op, &slot, 0, CachedVal::Bool(result));
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// Snapshot export / import
// ---------------------------------------------------------------------------

/// Stable wire name of an [`OpKind`]; the inverse of [`op_from_name`].
/// Snapshot files persist these strings, so renaming a variant must keep
/// its wire name (or bump the snapshot format version).
fn op_name(op: OpKind) -> &'static str {
    match op {
        OpKind::Reverse => "reverse",
        OpKind::ApplyRange => "apply_range",
        OpKind::Intersect => "intersect",
        OpKind::Subtract => "subtract",
        OpKind::Project => "project",
        OpKind::Union => "union",
        OpKind::IntersectDomain => "intersect_domain",
        OpKind::IntersectRange => "intersect_range",
        OpKind::Card => "card",
        OpKind::Empty => "empty",
        OpKind::Coalesce => "coalesce",
        OpKind::Fix => "fix",
        OpKind::SliceMax => "slice_max",
    }
}

fn op_from_name(name: &str) -> Option<OpKind> {
    Some(match name {
        "reverse" => OpKind::Reverse,
        "apply_range" => OpKind::ApplyRange,
        "intersect" => OpKind::Intersect,
        "subtract" => OpKind::Subtract,
        "project" => OpKind::Project,
        "union" => OpKind::Union,
        "intersect_domain" => OpKind::IntersectDomain,
        "intersect_range" => OpKind::IntersectRange,
        "card" => OpKind::Card,
        "empty" => OpKind::Empty,
        "coalesce" => OpKind::Coalesce,
        "fix" => OpKind::Fix,
        "slice_max" => OpKind::SliceMax,
        _ => return None,
    })
}

/// Whether `m` Display-prints in set notation (no `->` arrow), which
/// decides the parser entry point on restore (`Set::parse` accepts texts
/// `Map::parse` rejects and vice versa).
fn set_shaped(m: &Map) -> bool {
    m.n_in() == 0 && m.space().input.name.is_none()
}

/// A relation in portable text form: the canonical `fmt` notation plus
/// which parser entry point reconstructs it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelExport {
    /// Canonical text (`Display` output, accepted by the parser).
    pub text: String,
    /// `true` when the text is set notation (restore via `Set::parse`).
    pub set: bool,
}

/// A memoized result in portable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValExport {
    /// A map-valued result, as canonical text.
    Map(RelExport),
    /// A count-valued result.
    Count(u128),
    /// A boolean-valued result.
    Bool(bool),
}

/// One memo entry in portable form: operand *texts*, never raw intern
/// ids — restore is re-parse + re-intern under fresh ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoExport {
    /// Stable operation name (see [`op_name`]).
    pub op: String,
    /// Left operand.
    pub lhs: RelExport,
    /// Right operand, absent for unary operations.
    pub rhs: Option<RelExport>,
    /// The packed extra operand (projection side, fix column/value, …).
    pub extra: i128,
    /// The memoized result.
    pub value: ValExport,
}

/// A portable, self-contained image of the memo context.
///
/// Produced by [`export`] under a single lock acquisition, so the image
/// is always a consistent point-in-time view — a concurrent wholesale
/// clear (cap overflow or [`clear`]) lands entirely before or entirely
/// after it, never in the middle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheExport {
    /// Source texts memoized by `Map::parse`.
    pub parsed_map: Vec<String>,
    /// Source texts memoized by `Set::parse`.
    pub parsed_set: Vec<String>,
    /// Memoized operation entries.
    pub memo: Vec<MemoExport>,
}

/// Outcome counts of [`import`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Parse-table texts restored.
    pub parsed: u64,
    /// Memo entries restored.
    pub memo: u64,
    /// Entries dropped (unknown op name, unparseable text, table full).
    pub skipped: u64,
}

/// Exports the memo context as re-parseable text.
///
/// The whole walk happens under one acquisition of the table mutex, so
/// the result is a consistent snapshot even while other threads insert
/// or clear concurrently. Entries involving an *empty* relation with a
/// non-set space are skipped: their printed form loses the input tuple,
/// so they cannot round-trip.
pub fn export() -> CacheExport {
    let c = ctx();
    let t = c.tables.lock().expect("isl cache poisoned");
    let mut by_id: HashMap<u64, &Arc<Map>> = HashMap::with_capacity(t.n_interned);
    for bucket in t.ids.values() {
        for (m, id) in bucket {
            by_id.insert(*id, m);
        }
    }
    let rel = |m: &Map| -> Option<RelExport> {
        let set = set_shaped(m);
        if m.basics.is_empty() && !set {
            return None; // printed form would drop the input tuple
        }
        Some(RelExport {
            text: m.to_string(),
            set,
        })
    };
    let mut memo = Vec::with_capacity(t.memo.len());
    for (&(op, ia, ib, extra), val) in &t.memo {
        // Operand ids always resolve: the memo and intern tables are read
        // under the same lock acquisition, and every store went through
        // interning. A panic here means export lost its consistency.
        let Some(lhs) = rel(by_id.get(&ia).expect("memo lhs interned")) else {
            continue;
        };
        let rhs = if ib == NO_RHS {
            None
        } else {
            match rel(by_id.get(&ib).expect("memo rhs interned")) {
                Some(r) => Some(r),
                None => continue,
            }
        };
        let value = match val {
            CachedVal::Map(m) => match rel(m) {
                Some(r) => ValExport::Map(r),
                None => continue,
            },
            CachedVal::Count(n) => ValExport::Count(*n),
            CachedVal::Bool(b) => ValExport::Bool(*b),
        };
        memo.push(MemoExport {
            op: op_name(op).to_string(),
            lhs,
            rhs,
            extra,
            value,
        });
    }
    CacheExport {
        parsed_map: t.parsed_map.keys().cloned().collect(),
        parsed_set: t.parsed_set.keys().cloned().collect(),
        memo,
    }
}

/// Re-parses `r` with the parser entry point it was exported for. Goes
/// through the public parse paths, so the parse memo warms as a side
/// effect.
fn reparse(r: &RelExport) -> Option<Map> {
    if r.set {
        crate::Set::parse(&r.text).ok().map(crate::Set::into_map)
    } else {
        Map::parse(&r.text).ok()
    }
}

/// Imports a previously [`export`]ed image: re-parse every text and
/// re-intern under fresh ids. Unknown ops and unparseable texts are
/// skipped (counted), never fatal — the memo is an accelerator, not a
/// source of truth. No-op when the cache is disabled.
pub fn import(snap: &CacheExport) -> ImportReport {
    let c = ctx();
    let mut report = ImportReport::default();
    if !c.enabled.load(Ordering::Relaxed) {
        return report;
    }
    for text in snap.parsed_map.iter() {
        match Map::parse(text) {
            Ok(_) => report.parsed += 1,
            Err(_) => report.skipped += 1,
        }
    }
    for text in snap.parsed_set.iter() {
        match crate::Set::parse(text) {
            Ok(_) => report.parsed += 1,
            Err(_) => report.skipped += 1,
        }
    }
    // Parse all memo operands/values outside the lock, deduplicating
    // repeated texts, then intern + insert in one locked pass.
    let mut parsed: HashMap<(String, bool), Option<Map>> = HashMap::new();
    let mut resolve = |r: &RelExport| -> Option<Map> {
        parsed
            .entry((r.text.clone(), r.set))
            .or_insert_with(|| reparse(r))
            .clone()
    };
    let mut ready: Vec<(OpKind, Map, Option<Map>, i128, CachedVal)> = Vec::new();
    for e in snap.memo.iter() {
        let prepared = op_from_name(&e.op).and_then(|op| {
            let lhs = resolve(&e.lhs)?;
            let rhs = match &e.rhs {
                Some(r) => Some(resolve(r)?),
                None => None,
            };
            let val = match &e.value {
                ValExport::Map(r) => CachedVal::Map(Arc::new(resolve(r)?)),
                ValExport::Count(n) => CachedVal::Count(*n),
                ValExport::Bool(b) => CachedVal::Bool(*b),
            };
            Some((op, lhs, rhs, e.extra, val))
        });
        match prepared {
            Some(p) => ready.push(p),
            None => report.skipped += 1,
        }
    }
    let mut t = c.tables.lock().expect("isl cache poisoned");
    for (op, lhs, rhs, extra, val) in ready {
        if t.memo.len() >= MAX_ENTRIES || t.n_interned >= MAX_ENTRIES {
            report.skipped += 1;
            continue;
        }
        let ha = map_hash(&lhs);
        let ia = match find_interned(&t, ha, &lhs) {
            Some(id) => id,
            None => insert_interned(&mut t, ha, Arc::new(lhs)),
        };
        let ib = match rhs {
            Some(r) => {
                let hb = map_hash(&r);
                match find_interned(&t, hb, &r) {
                    Some(id) => id,
                    None => insert_interned(&mut t, hb, Arc::new(r)),
                }
            }
            None => NO_RHS,
        };
        t.memo.entry((op, ia, ib, extra)).or_insert(val);
        report.memo += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global enabled flag.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap()
    }

    #[test]
    fn card_is_memoized_and_identical() {
        let _guard = test_lock();
        let m = Map::parse("{ S[i, j] -> PE[i] : 0 <= i < 9 and 0 <= j < 7 }").unwrap();
        set_enabled(true);
        clear();
        reset_stats();
        let a = m.card().unwrap();
        let s1 = stats();
        let b = m.card().unwrap();
        let s2 = stats();
        assert_eq!(a, b);
        assert_eq!(a, 63);
        assert!(
            s2.hits > s1.hits,
            "second card call must hit: {s1:?} {s2:?}"
        );
    }

    #[test]
    fn disabled_cache_bypasses() {
        let _guard = test_lock();
        let m = Map::parse("{ S[i] -> T[i] : 0 <= i < 5 }").unwrap();
        set_enabled(false);
        clear();
        reset_stats();
        let _ = m.card().unwrap();
        let _ = m.card().unwrap();
        let s = stats();
        assert_eq!(s.hits + s.misses, 0, "disabled cache must not count");
        set_enabled(true);
    }

    #[test]
    fn counter_handle_ignores_other_threads() {
        let _guard = test_lock();
        set_enabled(true);
        clear();
        let handle = CounterHandle::new();
        // A polluter thread hammers the cache with its own relations the
        // whole time; none of its lookups may land on our handle.
        let stop = Arc::new(AtomicBool::new(false));
        let polluter = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let m = Map::parse("{ P[x] -> Q[x] : 0 <= x < 11 }").unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let _ = m.card();
                }
            })
        };
        let m = Map::parse("{ S[i, j] -> PE[j] : 0 <= i < 4 and 0 <= j < 5 }").unwrap();
        {
            let _attached = handle.attach();
            for _ in 0..10 {
                assert_eq!(m.card().unwrap(), 20);
            }
        }
        stop.store(true, Ordering::Relaxed);
        polluter.join().unwrap();
        // Exactly 10 attributed card lookups: 1 miss then 9 hits.
        assert_eq!(handle.hits() + handle.misses(), 10, "exact attribution");
        assert_eq!(handle.misses(), 1);
        assert_eq!(handle.hits(), 9);
        // Detached now: further lookups must not move the handle.
        let _ = m.card().unwrap();
        assert_eq!(handle.hits() + handle.misses(), 10);
    }

    #[test]
    fn attached_handles_snapshot_propagates() {
        let _guard = test_lock();
        set_enabled(true);
        let h = CounterHandle::new();
        let _a = h.attach();
        let snapshot = attached_handles();
        assert_eq!(snapshot.len(), 1);
        // Re-attaching the snapshot on another thread funnels that
        // thread's lookups into the same handle.
        std::thread::scope(|s| {
            s.spawn(move || {
                let _guards: Vec<_> = snapshot.iter().map(|h| h.attach()).collect();
                let m = Map::parse("{ W[x] -> V[x] : 0 <= x < 7 }").unwrap();
                let _ = m.card().unwrap();
            });
        });
        assert!(h.hits() + h.misses() >= 1, "worker lookups must count");
    }

    #[test]
    fn export_import_round_trip_restores_hits() {
        let _guard = test_lock();
        set_enabled(true);
        clear();
        let m = Map::parse("{ S[i, j] -> PE[i] : 0 <= i < 9 and 0 <= j < 7 }").unwrap();
        let s = crate::Set::parse("{ P[x, y] : 0 <= x < 5 and 0 <= y < 3 }").unwrap();
        assert_eq!(m.card().unwrap(), 63);
        assert!(!s.as_map().is_empty().unwrap());
        let snap = export();
        assert!(
            snap.parsed_map.len() == 1 && snap.parsed_set.len() == 1,
            "both parse tables exported: {snap:?}"
        );
        assert!(snap.memo.len() >= 2, "card + empty memoized: {snap:?}");
        clear();
        let report = import(&snap);
        assert_eq!(report.skipped, 0, "round-trip must not drop entries");
        assert_eq!(report.memo as usize, snap.memo.len());
        // Replaying the same source texts and operations must hit: parse
        // is deterministic, so re-parsed operands are structurally
        // identical to the re-interned snapshot operands.
        reset_stats();
        let m2 = Map::parse("{ S[i, j] -> PE[i] : 0 <= i < 9 and 0 <= j < 7 }").unwrap();
        assert_eq!(m2.card().unwrap(), 63);
        let s2 = crate::Set::parse("{ P[x, y] : 0 <= x < 5 and 0 <= y < 3 }").unwrap();
        assert!(!s2.as_map().is_empty().unwrap());
        let st = stats();
        assert_eq!(
            st.misses, 0,
            "replay after restore must be all-warm: {st:?}"
        );
        assert_eq!(st.hits, 4, "parse x2 + card + empty: {st:?}");
    }

    #[test]
    fn export_is_consistent_under_concurrent_clears() {
        let _guard = test_lock();
        set_enabled(true);
        clear();
        // Writers keep repopulating while a clearer wipes the tables
        // wholesale; every export must be a coherent point-in-time view
        // (operand ids resolve — export panics if not — and importing it
        // into a cleared context drops nothing).
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let m = Map::parse("{ W[i, j] -> PE[j] : 0 <= i < 6 and 0 <= j < 4 }").unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let _ = m.card();
                    let _ = m.is_empty();
                }
            })
        };
        let clearer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    clear();
                    std::thread::yield_now();
                }
            })
        };
        for _ in 0..200 {
            let snap = export();
            clear();
            let report = import(&snap);
            assert_eq!(
                report.skipped, 0,
                "a consistent export imports without drops: {snap:?}"
            );
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        clearer.join().unwrap();
    }

    #[test]
    fn import_rejects_unknown_ops_without_failing() {
        let _guard = test_lock();
        set_enabled(true);
        clear();
        let snap = CacheExport {
            parsed_map: vec!["{ A[i] -> B[i] : 0 <= i < 3 }".into(), "not a map".into()],
            parsed_set: Vec::new(),
            memo: vec![MemoExport {
                op: "warp_speed".into(),
                lhs: RelExport {
                    text: "{ A[i] -> B[i] : 0 <= i < 3 }".into(),
                    set: false,
                },
                rhs: None,
                extra: 0,
                value: ValExport::Count(3),
            }],
        };
        let report = import(&snap);
        assert_eq!(report.parsed, 1);
        assert_eq!(report.skipped, 2, "bad text + unknown op: {report:?}");
        assert_eq!(report.memo, 0);
    }

    #[test]
    fn distinct_maps_do_not_collide() {
        let _guard = test_lock();
        set_enabled(true);
        let a = Map::parse("{ S[i] -> T[i] : 0 <= i < 5 }").unwrap();
        let b = Map::parse("{ S[i] -> T[i] : 0 <= i < 6 }").unwrap();
        assert_eq!(a.card().unwrap(), 5);
        assert_eq!(b.card().unwrap(), 6);
        assert_eq!(a.card().unwrap(), 5);
    }
}
