//! [`Row`]: the constraint-row representation — a small-vector of `i64`
//! coefficients stored inline up to [`INLINE`] columns.
//!
//! Constraint rows are the innermost data structure of the whole library:
//! every relational operation reads, combines, widens, and copies rows.
//! The original representation (`Vec<i64>`) paid one heap allocation per
//! row; TENET's relations almost always have fewer than 16 columns
//! (loop dims + spacetime dims + divs + constant), so an inline array
//! removes nearly all allocation from the hot paths and makes row copies
//! plain `memcpy`s.
//!
//! `Row` dereferences to `[i64]`, so indexing, slicing, iteration, and
//! comparisons read exactly like the `Vec` code they replaced. Ordering,
//! equality, and hashing are element-wise over the logical contents, which
//! makes rows (and the [`crate::BasicMap`]s containing them) usable as
//! structural cache keys.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Number of coefficients stored inline before spilling to the heap.
pub(crate) const INLINE: usize = 16;

/// A constraint row: coefficients over `[in | out | divs | constant]`.
#[derive(Clone)]
pub struct Row(Repr);

#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [i64; INLINE] },
    Heap(Vec<i64>),
}

impl Row {
    /// The empty row.
    #[inline]
    pub fn new() -> Row {
        Row(Repr::Inline {
            len: 0,
            buf: [0; INLINE],
        })
    }

    /// A row of `n` zeros.
    #[inline]
    pub fn zeros(n: usize) -> Row {
        if n <= INLINE {
            Row(Repr::Inline {
                len: n as u8,
                buf: [0; INLINE],
            })
        } else {
            Row(Repr::Heap(vec![0; n]))
        }
    }

    /// An empty row with room for `n` coefficients.
    #[inline]
    pub fn with_capacity(n: usize) -> Row {
        if n <= INLINE {
            Row::new()
        } else {
            Row(Repr::Heap(Vec::with_capacity(n)))
        }
    }

    /// A row copying `s`.
    #[inline]
    pub fn from_slice(s: &[i64]) -> Row {
        if s.len() <= INLINE {
            let mut buf = [0; INLINE];
            buf[..s.len()].copy_from_slice(s);
            Row(Repr::Inline {
                len: s.len() as u8,
                buf,
            })
        } else {
            Row(Repr::Heap(s.to_vec()))
        }
    }

    /// The coefficients as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[i64] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// The coefficients as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i64] {
        match &mut self.0 {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Appends a coefficient.
    #[inline]
    pub fn push(&mut self, v: i64) {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                let l = *len as usize;
                if l < INLINE {
                    buf[l] = v;
                    *len += 1;
                } else {
                    let mut vec = Vec::with_capacity(INLINE * 2);
                    vec.extend_from_slice(&buf[..l]);
                    vec.push(v);
                    self.0 = Repr::Heap(vec);
                }
            }
            Repr::Heap(vec) => vec.push(v),
        }
    }

    /// Inserts a coefficient at `at`, shifting the tail right.
    pub fn insert(&mut self, at: usize, v: i64) {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                let l = *len as usize;
                debug_assert!(at <= l);
                if l < INLINE {
                    buf.copy_within(at..l, at + 1);
                    buf[at] = v;
                    *len += 1;
                } else {
                    let mut vec = Vec::with_capacity(INLINE * 2);
                    vec.extend_from_slice(&buf[..l]);
                    vec.insert(at, v);
                    self.0 = Repr::Heap(vec);
                }
            }
            Repr::Heap(vec) => vec.insert(at, v),
        }
    }

    /// Removes and returns the coefficient at `at`, shifting the tail left.
    pub fn remove(&mut self, at: usize) -> i64 {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                let l = *len as usize;
                debug_assert!(at < l);
                let v = buf[at];
                buf.copy_within(at + 1..l, at);
                buf[l - 1] = 0;
                *len -= 1;
                v
            }
            Repr::Heap(vec) => {
                let v = vec.remove(at);
                // Shrink back to inline form once small enough so later
                // clones stay allocation-free.
                if vec.len() <= INLINE {
                    let mut buf = [0; INLINE];
                    buf[..vec.len()].copy_from_slice(vec);
                    self.0 = Repr::Inline {
                        len: vec.len() as u8,
                        buf,
                    };
                }
                v
            }
        }
    }

    /// Appends all coefficients of `s`.
    #[inline]
    pub fn extend_from_slice(&mut self, s: &[i64]) {
        match &mut self.0 {
            Repr::Inline { len, buf } if (*len as usize) + s.len() <= INLINE => {
                let l = *len as usize;
                buf[l..l + s.len()].copy_from_slice(s);
                *len += s.len() as u8;
            }
            _ => {
                for &v in s {
                    self.push(v);
                }
            }
        }
    }
}

impl Default for Row {
    fn default() -> Self {
        Row::new()
    }
}

impl Deref for Row {
    type Target = [i64];
    #[inline]
    fn deref(&self) -> &[i64] {
        self.as_slice()
    }
}

impl DerefMut for Row {
    #[inline]
    fn deref_mut(&mut self) -> &mut [i64] {
        self.as_mut_slice()
    }
}

impl PartialEq for Row {
    #[inline]
    fn eq(&self, other: &Row) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Row {}

impl PartialOrd for Row {
    #[inline]
    fn partial_cmp(&self, other: &Row) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Row {
    #[inline]
    fn cmp(&self, other: &Row) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Row {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<Vec<i64>> for Row {
    #[inline]
    fn from(v: Vec<i64>) -> Row {
        if v.len() <= INLINE {
            Row::from_slice(&v)
        } else {
            Row(Repr::Heap(v))
        }
    }
}

impl From<&[i64]> for Row {
    #[inline]
    fn from(s: &[i64]) -> Row {
        Row::from_slice(s)
    }
}

impl FromIterator<i64> for Row {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Row {
        let mut r = Row::new();
        for v in iter {
            r.push(v);
        }
        r
    }
}

impl<'a> IntoIterator for &'a Row {
    type Item = &'a i64;
    type IntoIter = std::slice::Iter<'a, i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_push_insert_remove() {
        let mut r = Row::new();
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 10);
        r.insert(3, 99);
        assert_eq!(r[3], 99);
        assert_eq!(r[4], 3);
        assert_eq!(r.remove(3), 99);
        assert_eq!(r.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn spills_to_heap_and_back() {
        let mut r = Row::zeros(INLINE);
        r.push(7); // spill
        assert_eq!(r.len(), INLINE + 1);
        assert_eq!(r[INLINE], 7);
        r.insert(0, -1);
        assert_eq!(r.len(), INLINE + 2);
        r.remove(0);
        r.remove(INLINE); // back at INLINE len -> re-inlined
        assert_eq!(r.len(), INLINE);
        let s: Vec<i64> = (0..40).collect();
        let big = Row::from_slice(&s);
        assert_eq!(big.len(), 40);
        assert_eq!(big[39], 39);
    }

    #[test]
    fn eq_ord_hash_cross_repr() {
        use std::collections::hash_map::DefaultHasher;
        let small = Row::from_slice(&[1, 2, 3]);
        let mut spilled = Row::zeros(INLINE + 4);
        while spilled.len() > 3 {
            spilled.remove(spilled.len() - 1);
        }
        spilled[0] = 1;
        spilled[1] = 2;
        spilled[2] = 3;
        assert_eq!(small, spilled);
        let h = |r: &Row| {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&small), h(&spilled));
        assert!(Row::from_slice(&[1, 2]) < Row::from_slice(&[1, 3]));
    }

    #[test]
    fn slicing_and_iteration() {
        let r = Row::from_slice(&[5, 6, 7, 8]);
        assert_eq!(&r[1..3], &[6, 7]);
        assert_eq!(r.iter().sum::<i64>(), 26);
        let doubled: Row = r.iter().map(|&c| c * 2).collect();
        assert_eq!(doubled.as_slice(), &[10, 12, 14, 16]);
    }
}
