//! Union coalescing: merges disjuncts produced by case splits back into
//! single basic maps when the union is exactly representable, keeping
//! downstream intersections and counts small.
//!
//! Pieces are compared in *expanded inequality form* (each equality
//! contributes its two half-spaces). Two pieces merge when they share all
//! but a few rows and the differing rows bound the same expression with
//! adjacent or overlapping intervals:
//!
//! * `{e >= -c1} ∪ {e >= -c2}`            → the weaker half-space
//! * `{e >= c} ∪ {e <= c'}` with `c <= c'+1` → the row disappears
//! * `[l1, u1] ∪ [l2, u2]` adjacent        → `[min l, max u]`
//! * half-space ∪ adjacent interval        → extended half-space
//!
//! All merges are exact; a fixpoint loop applies them until no pair
//! merges.

use crate::basic::{BasicMap, Row};
use crate::map::Map;

/// One piece in expanded inequality form.
struct Expanded {
    rows: Vec<Row>,
}

fn expand(bm: &BasicMap) -> Expanded {
    let mut rows: Vec<Row> = bm.ineqs.clone();
    for e in &bm.eqs {
        rows.push(e.clone());
        rows.push(e.iter().map(|v| -v).collect());
    }
    rows.sort();
    rows.dedup();
    Expanded { rows }
}

/// Splits `x \ y` and `y \ x` row sets. Both sides are sorted and
/// deduplicated ([`expand`]), so a single merge walk suffices; the walk
/// aborts early once both differences are too large to ever merge
/// (&gt; 2 rows each) — the common case across unrelated pieces.
fn diff_rows(x: &Expanded, y: &Expanded) -> Option<(Vec<Row>, Vec<Row>)> {
    let mut x_only: Vec<Row> = Vec::new();
    let mut y_only: Vec<Row> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < x.rows.len() || j < y.rows.len() {
        if x_only.len() > 2 && y_only.len() > 2 {
            return None;
        }
        match (x.rows.get(i), y.rows.get(j)) {
            (Some(a), Some(b)) => match a.cmp(b) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    x_only.push(a.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    y_only.push(b.clone());
                    j += 1;
                }
            },
            (Some(a), None) => {
                x_only.push(a.clone());
                i += 1;
            }
            (None, Some(b)) => {
                y_only.push(b.clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    Some((x_only, y_only))
}

/// Classifies a set of 1-2 rows as bounds on a common direction vector.
/// Returns (direction, lower const, upper const) where the piece satisfies
/// `lower <= dir·v <= upper` (`i64::MIN`/`MAX` mean unbounded).
fn as_interval(rows: &[Row]) -> Option<(Vec<i64>, i64, i64)> {
    let k = rows[0].len() - 1;
    let mut dir: Option<Vec<i64>> = None;
    let mut lo = i64::MIN;
    let mut hi = i64::MAX;
    for r in rows {
        let coeffs = &r[..k];
        if coeffs.iter().all(|&c| c == 0) {
            return None;
        }
        // Normalize direction: first nonzero coefficient positive.
        let positive = coeffs.iter().find(|&&c| c != 0).copied().unwrap() > 0;
        let d: Vec<i64> = if positive {
            coeffs.to_vec()
        } else {
            coeffs.iter().map(|c| -c).collect()
        };
        match &dir {
            None => dir = Some(d.clone()),
            Some(existing) if *existing == d => {}
            _ => return None,
        }
        if positive {
            // d·v + c >= 0  =>  d·v >= -c
            lo = lo.max(-r[k]);
        } else {
            // -d·v + c >= 0  =>  d·v <= c
            hi = hi.min(r[k]);
        }
    }
    dir.map(|d| (d, lo, hi))
}

/// Builds the rows for `lower <= dir·v <= upper`.
fn interval_rows(dir: &[i64], lo: i64, hi: i64) -> Vec<Row> {
    let mut out = Vec::new();
    if lo != i64::MIN {
        let mut r = Row::from_slice(dir);
        r.push(-lo);
        out.push(r);
    }
    if hi != i64::MAX {
        let mut r: Row = dir.iter().map(|c| -c).collect();
        r.push(hi);
        out.push(r);
    }
    out
}

/// Attempts to merge two basics (with their precomputed expansions);
/// returns the merged basic on success.
fn try_merge(x: &BasicMap, y: &BasicMap, ex: &Expanded, ey: &Expanded) -> Option<BasicMap> {
    if x.divs != y.divs {
        return None;
    }
    let (x_only, y_only) = diff_rows(ex, ey)?;
    if x_only.is_empty() {
        // y ⊆ x.
        return Some(x.clone());
    }
    if y_only.is_empty() {
        return Some(y.clone());
    }
    if x_only.len() > 2 || y_only.len() > 2 {
        return None;
    }
    let (dx, lx, ux) = as_interval(&x_only)?;
    let (dy, ly, uy) = as_interval(&y_only)?;
    if dx != dy {
        return None;
    }
    // The union of two intervals on the same direction is an interval iff
    // they overlap or are adjacent.
    let overlaps = |a_lo: i64, a_hi: i64, b_lo: i64, b_hi: i64| -> bool {
        // adjacency: a_hi + 1 >= b_lo (careful with the MIN/MAX sentinels)
        let left_ok = a_hi == i64::MAX || b_lo == i64::MIN || b_lo <= a_hi.saturating_add(1);
        let right_ok = b_hi == i64::MAX || a_lo == i64::MIN || a_lo <= b_hi.saturating_add(1);
        left_ok && right_ok
    };
    if !overlaps(lx, ux, ly, uy) {
        return None;
    }
    let lo = lx.min(ly);
    let hi = ux.max(uy);
    let mut m = x.clone();
    m.eqs.clear();
    m.ineqs = ex
        .rows
        .iter()
        .filter(|r| !x_only.contains(r))
        .cloned()
        .collect();
    m.ineqs.extend(interval_rows(&dx, lo, hi));
    Some(m)
}

/// Coalesces the disjuncts of a map (exact; fixpoint with a work cap).
///
/// Each piece's expanded inequality form is computed once and cached
/// next to it, refreshed only when the piece itself changes by a merge;
/// a pass applies every merge it finds in place (no restart from
/// scratch), and passes repeat until one finds nothing. Merges strictly
/// shrink the piece count, so at most `n` passes of cheap sorted-row
/// diffs run — the previous restart-per-merge fixpoint re-expanded
/// (sorted + deduplicated) every pair's rows from scratch after every
/// single merge, which dominated cold `apply_range` time on case-split
/// unions.
pub(crate) fn coalesce_map(map: &Map) -> Map {
    let mut basics = map.basics.clone();
    let mut exp: Vec<Expanded> = basics.iter().map(expand).collect();
    let mut changed = true;
    let mut guard = 0;
    while changed && guard < 1000 {
        changed = false;
        guard += 1;
        let mut i = 0;
        while i < basics.len() {
            let mut j = i + 1;
            while j < basics.len() {
                if let Some(mut m) = try_merge(&basics[i], &basics[j], &exp[i], &exp[j]) {
                    m.simplify();
                    m.drop_unused_divs();
                    exp[i] = expand(&m);
                    basics[i] = m;
                    basics.swap_remove(j);
                    exp.swap_remove(j);
                    changed = true;
                    // Do not advance `j`: the swap moved a fresh piece
                    // into this slot, and the grown `i` may absorb it.
                } else {
                    j += 1;
                }
            }
            i += 1;
        }
    }
    Map {
        space: map.space.clone(),
        basics,
    }
}

#[cfg(test)]
mod tests {
    use crate::Set;

    #[test]
    fn adjacent_singletons_merge() {
        let s = Set::parse("{ A[i] : i = 0 or i = 1 }").unwrap();
        let c = s.coalesce();
        assert_eq!(c.as_map().basics().len(), 1);
        assert!(c.is_equal(&s).unwrap());
    }

    #[test]
    fn split_chain_merges_fully() {
        let s = Set::parse("{ A[i] : i = 0 or i = 1 or i = 2 or i = 3 }").unwrap();
        let c = s.coalesce();
        assert_eq!(c.as_map().basics().len(), 1);
        assert_eq!(c.card().unwrap(), 4);
        assert!(c.is_equal(&s).unwrap());
    }

    #[test]
    fn halfspace_extension() {
        let s = Set::parse("{ A[i] : 1 <= i < 8 or i = 0 }").unwrap();
        let c = s.coalesce();
        assert_eq!(c.as_map().basics().len(), 1);
        assert!(c.is_equal(&s).unwrap());
    }

    #[test]
    fn complementary_halves_drop_constraint() {
        let s = Set::parse("{ A[i, j] : 0 <= j < 4 and i >= 2 or 0 <= j < 4 and i <= 1 }").unwrap();
        let c = s.coalesce();
        assert_eq!(c.as_map().basics().len(), 1);
        // i is now unconstrained; j still boxed.
        assert!(c.contains_point(&[-100, 0]).unwrap());
        assert!(!c.contains_point(&[0, 4]).unwrap());
    }

    #[test]
    fn disjoint_pieces_stay_separate() {
        let s = Set::parse("{ A[i] : 0 <= i < 2 or 10 <= i < 12 }").unwrap();
        let c = s.coalesce();
        assert_eq!(c.as_map().basics().len(), 2);
        assert!(c.is_equal(&s).unwrap());
    }

    #[test]
    fn subset_pieces_absorbed() {
        let s = Set::parse("{ A[i] : 0 <= i < 10 or 2 <= i < 5 }").unwrap();
        let c = s.coalesce();
        assert_eq!(c.as_map().basics().len(), 1);
        assert_eq!(c.card().unwrap(), 10);
    }

    #[test]
    fn coalesce_preserves_semantics_with_divs() {
        let s = Set::parse("{ A[i] : 0 <= i < 16 and i mod 4 = 0 or 0 <= i < 16 and i mod 4 = 1 }")
            .unwrap();
        let c = s.coalesce();
        assert!(c.is_equal(&s).unwrap());
        assert_eq!(c.card().unwrap(), 8);
    }

    #[test]
    fn overlapping_intervals_merge() {
        let s = Set::parse("{ A[i] : 0 <= i < 6 or 4 <= i < 9 }").unwrap();
        let c = s.coalesce();
        assert_eq!(c.as_map().basics().len(), 1);
        assert_eq!(c.card().unwrap(), 9);
    }
}
