//! Spaces: named tuples describing the domain and range of a relation.
//!
//! [`BasicMap`](crate::BasicMap) and [`Map`](crate::Map) hold their space
//! behind an `Arc`, so cloning a relation (which the memo layer and every
//! disjunct-producing operation do constantly) bumps a reference count
//! instead of re-allocating the dim-name strings. `Space` itself stays a
//! plain value type: constructors take it by value and wrap it; mutation
//! inside the isl crate goes through `Arc::make_mut` (clone-on-write).

use std::fmt;

/// A named tuple of dimensions, e.g. `S[i, j, k]` or `PE[p0, p1]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tuple {
    /// Optional tuple name (`S`, `PE`, ...). Anonymous tuples print as `[...]`.
    pub name: Option<String>,
    /// Dimension names, unique within the tuple.
    pub dims: Vec<String>,
}

impl Tuple {
    /// Creates a named tuple.
    ///
    /// ```
    /// let t = tenet_isl::Tuple::new("S", ["i", "j"]);
    /// assert_eq!(t.dims.len(), 2);
    /// ```
    pub fn new<N, D, I>(name: N, dims: I) -> Self
    where
        N: Into<String>,
        D: Into<String>,
        I: IntoIterator<Item = D>,
    {
        Tuple {
            name: Some(name.into()),
            dims: dims.into_iter().map(Into::into).collect(),
        }
    }

    /// Creates an anonymous tuple with the given dimension names.
    pub fn anon<D: Into<String>, I: IntoIterator<Item = D>>(dims: I) -> Self {
        Tuple {
            name: None,
            dims: dims.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of dimensions in the tuple.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the tuple has zero dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Index of a dimension by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d == name)
    }

    /// Structural compatibility: same arity (names may differ).
    pub fn is_compatible(&self, other: &Tuple) -> bool {
        self.dims.len() == other.dims.len()
    }
}

// Hashing a tuple deliberately ignores the name strings: relations are
// hashed on every memo-table lookup, and hashing dimension names would
// dominate the lookup cost. Equal tuples still hash equal (the contract),
// and the memo table always confirms candidates with full `Eq`, so
// same-arity tuples colliding costs at most a bucket walk.
impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.is_some().hash(state);
        self.dims.len().hash(state);
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n}")?;
        }
        write!(f, "[{}]", self.dims.join(", "))
    }
}

/// The space of a relation: an input tuple and an output tuple.
///
/// A *set* is represented as a relation with an empty input tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Space {
    /// Domain tuple.
    pub input: Tuple,
    /// Range tuple.
    pub output: Tuple,
}

impl Space {
    /// A map space `input -> output`.
    pub fn map(input: Tuple, output: Tuple) -> Self {
        Space { input, output }
    }

    /// A set space (empty input tuple).
    pub fn set(tuple: Tuple) -> Self {
        Space {
            input: Tuple::default(),
            output: tuple,
        }
    }

    /// Number of input dimensions.
    pub fn n_in(&self) -> usize {
        self.input.len()
    }

    /// Number of output dimensions.
    pub fn n_out(&self) -> usize {
        self.output.len()
    }

    /// Structural compatibility: same arities on both sides.
    pub fn is_compatible(&self, other: &Space) -> bool {
        self.input.is_compatible(&other.input) && self.output.is_compatible(&other.output)
    }

    /// The reversed space (`output -> input`).
    pub fn reversed(&self) -> Space {
        Space {
            input: self.output.clone(),
            output: self.input.clone(),
        }
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.input.is_empty() && self.input.name.is_none() {
            write!(f, "{}", self.output)
        } else {
            write!(f, "{} -> {}", self.input, self.output)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_display() {
        let t = Tuple::new("S", ["i", "j"]);
        assert_eq!(t.to_string(), "S[i, j]");
        let a = Tuple::anon(["x"]);
        assert_eq!(a.to_string(), "[x]");
    }

    #[test]
    fn space_reverse() {
        let s = Space::map(Tuple::new("S", ["i"]), Tuple::new("PE", ["p"]));
        let r = s.reversed();
        assert_eq!(r.input.name.as_deref(), Some("PE"));
        assert_eq!(r.output.name.as_deref(), Some("S"));
    }

    #[test]
    fn compatibility_ignores_names() {
        let a = Space::map(Tuple::new("S", ["i"]), Tuple::new("T", ["t"]));
        let b = Space::map(Tuple::new("X", ["a"]), Tuple::new("Y", ["b"]));
        assert!(a.is_compatible(&b));
    }
}
