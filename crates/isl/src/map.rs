//! [`Map`]: a finite union of [`BasicMap`]s over a common space, with the
//! full suite of relational operations used by TENET's performance model.

use crate::basic::{BasicMap, Row};
use crate::cache::{self, OpKind};
use crate::count;
use crate::project::eliminate_vars;
use crate::set::Set;
use crate::space::{Space, Tuple};
use crate::{Error, Result};
use std::sync::Arc;

/// A binary integer relation: a union of basic maps.
///
/// ```
/// use tenet_isl::Map;
/// let m = Map::parse("{ S[i, j] -> PE[i] : 0 <= i < 4 and 0 <= j < 3 }")?;
/// assert_eq!(m.card()?, 12);
/// # Ok::<(), tenet_isl::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Map {
    /// Shared with every disjunct's `space` where possible (see
    /// [`BasicMap`]): cloning a map then costs one `Arc` bump per
    /// disjunct instead of re-allocating every dim-name string.
    pub(crate) space: Arc<Space>,
    pub(crate) basics: Vec<BasicMap>,
}

impl Map {
    /// Parses a map from the ISL-style textual notation used in the paper,
    /// e.g. `{ S[i,j,k] -> PE[i mod 8, j mod 8] : 0 <= i < 64 }`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for malformed or non-affine input.
    pub fn parse(text: &str) -> Result<Map> {
        cache::memo_parse(false, text, || crate::parse::parse_map(text))
    }

    /// A map holding a single basic map.
    pub fn from_basic(bm: BasicMap) -> Map {
        Map {
            space: bm.space.clone(),
            basics: vec![bm],
        }
    }

    /// The unconstrained relation over `space`.
    pub fn universe(space: impl Into<Arc<Space>>) -> Map {
        let space = space.into();
        Map {
            space: space.clone(),
            basics: vec![BasicMap::universe(space)],
        }
    }

    /// The empty relation over `space`.
    pub fn empty(space: impl Into<Arc<Space>>) -> Map {
        Map {
            space: space.into(),
            basics: Vec::new(),
        }
    }

    /// The identity relation `{ in[x] -> out[x] }`.
    pub fn identity(input: Tuple, output: Tuple) -> Result<Map> {
        Ok(Map::from_basic(BasicMap::identity(input, output)?))
    }

    /// The space of the relation.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Number of input dimensions.
    pub fn n_in(&self) -> usize {
        self.space.n_in()
    }

    /// Number of output dimensions.
    pub fn n_out(&self) -> usize {
        self.space.n_out()
    }

    /// The disjuncts of this relation.
    pub fn basics(&self) -> &[BasicMap] {
        &self.basics
    }

    fn check_compatible(&self, other: &Map, op: &str) -> Result<()> {
        if !self.space.is_compatible(&other.space) {
            return Err(Error::SpaceMismatch(format!(
                "{op}: {} vs {}",
                self.space, other.space
            )));
        }
        Ok(())
    }

    /// Set-union of two relations over compatible spaces.
    pub fn union(&self, other: &Map) -> Result<Map> {
        self.check_compatible(other, "union")?;
        // Unioning small relations is a couple of vector pushes; only
        // unions with real bulk (quadratic duplicate scan) go through the
        // memo — same policy as `reverse`.
        if self.memo_weight() + other.memo_weight() < 32 {
            return self.union_uncached(other);
        }
        cache::memo_map(OpKind::Union, self, Some(other), 0, || {
            self.union_uncached(other)
        })
    }

    fn union_uncached(&self, other: &Map) -> Result<Map> {
        let mut basics = self.basics.clone();
        let var_map: Vec<usize> = (0..self.n_in() + self.n_out()).collect();
        for b in &other.basics {
            // Renormalize into self's space (names may differ).
            let mut nb = BasicMap::universe(self.space.clone());
            nb.import_constraints(b, &var_map)?;
            if !basics.contains(&nb) {
                basics.push(nb);
            }
        }
        Ok(Map {
            space: self.space.clone(),
            basics,
        })
    }

    /// Intersection of two relations over compatible spaces.
    pub fn intersect(&self, other: &Map) -> Result<Map> {
        self.check_compatible(other, "intersect")?;
        cache::memo_map(OpKind::Intersect, self, Some(other), 0, || {
            self.intersect_uncached(other)
        })
    }

    fn intersect_uncached(&self, other: &Map) -> Result<Map> {
        let var_map: Vec<usize> = (0..self.n_in() + self.n_out()).collect();
        let mut basics = Vec::new();
        for a in &self.basics {
            for b in &other.basics {
                let mut nb = a.clone();
                nb.import_constraints(b, &var_map)?;
                if nb.simplify() && !count::basic_is_empty(&nb)? {
                    nb.drop_unused_divs();
                    basics.push(nb);
                }
            }
        }
        Ok(Map {
            space: self.space.clone(),
            basics,
        }
        .coalesce())
    }

    /// Exact set difference `self \ other`.
    pub fn subtract(&self, other: &Map) -> Result<Map> {
        self.check_compatible(other, "subtract")?;
        cache::memo_map(OpKind::Subtract, self, Some(other), 0, || {
            self.subtract_uncached(other)
        })
    }

    fn subtract_uncached(&self, other: &Map) -> Result<Map> {
        let mut pieces = self.basics.clone();
        for c in &other.basics {
            let mut next = Vec::new();
            for p in &pieces {
                next.extend(basic_subtract(p, c)?);
            }
            pieces = next;
            if pieces.is_empty() {
                break;
            }
        }
        Ok(Map {
            space: self.space.clone(),
            basics: pieces,
        })
    }

    /// Total stored constraint rows — the cost proxy deciding whether an
    /// operation on this relation is worth a memo-table round trip.
    fn memo_weight(&self) -> usize {
        self.basics.iter().map(BasicMap::constraint_count).sum()
    }

    /// The reversed relation (`out -> in`).
    pub fn reverse(&self) -> Map {
        let compute = || {
            Ok(Map {
                space: Arc::new(self.space.reversed()),
                basics: self.basics.iter().map(BasicMap::reverse).collect(),
            })
        };
        // Reversing is a straight column swap: for small relations doing it
        // beats hashing it. Only unions with real bulk go through the memo.
        if self.memo_weight() < 32 {
            return compute().expect("reverse cannot fail");
        }
        cache::memo_map(OpKind::Reverse, self, None, 0, compute).expect("reverse cannot fail")
    }

    /// Relation composition `other ∘ self`: `{ x -> z : ∃y. self(x)=y ∧
    /// other(y)=z }` — ISL's `isl_union_map_apply_range`.
    pub fn apply_range(&self, other: &Map) -> Result<Map> {
        if self.n_out() != other.n_in() {
            return Err(Error::SpaceMismatch(format!(
                "apply_range: range {} vs domain {}",
                self.space.output, other.space.input
            )));
        }
        cache::memo_map(OpKind::ApplyRange, self, Some(other), 0, || {
            self.apply_range_uncached(other)
        })
    }

    fn apply_range_uncached(&self, other: &Map) -> Result<Map> {
        let nx = self.n_in();
        let ny = self.n_out();
        let nz = other.n_out();
        let mut out_dims: Vec<String> = other.space.output.dims.clone();
        for i in 0..ny {
            out_dims.push(format!("_m{i}"));
        }
        let space = Arc::new(Space::map(
            self.space.input.clone(),
            Tuple {
                name: other.space.output.name.clone(),
                dims: out_dims,
            },
        ));
        // var maps into the combined layout [X | Z | Ymid].
        let var_map_a: Vec<usize> = (0..nx).chain(nx + nz..nx + nz + ny).collect();
        let var_map_b: Vec<usize> = (nx + nz..nx + nz + ny).chain(nx..nx + nz).collect();
        let mut basics = Vec::new();
        for a in &self.basics {
            for b in &other.basics {
                let mut comb = BasicMap::universe(space.clone());
                comb.import_constraints(a, &var_map_a)?;
                comb.import_constraints(b, &var_map_b)?;
                let targets: Vec<usize> = (nx + nz..nx + nz + ny).collect();
                basics.extend(eliminate_vars(comb, targets)?);
            }
        }
        let result_space = Arc::new(Space::map(
            self.space.input.clone(),
            other.space.output.clone(),
        ));
        let mut m = Map {
            space: result_space.clone(),
            basics,
        };
        for b in m.basics.iter_mut() {
            b.space = result_space.clone();
        }
        m.basics.dedup();
        // Compositions through case splits and offset unions produce many
        // adjacent disjuncts; merge them so downstream set algebra stays
        // close to linear.
        Ok(m.coalesce())
    }

    /// Packs the project-op memo key: bit 0 distinguishes the in/out
    /// variants, `first` occupies bits 1..63 and `n` bits 63..125. Returns
    /// `None` when the arguments would not fit the layout — callers skip
    /// the cache then, instead of risking a key collision.
    fn pack_project_extra(out_dims: bool, first: usize, n: usize) -> Option<i128> {
        if first >= (1 << 62) || n >= (1 << 62) {
            return None;
        }
        Some((out_dims as i128) | ((first as i128) << 1) | ((n as i128) << 63))
    }

    /// Projects away output dimensions `[first, first + n)`.
    pub fn project_out_out(&self, first: usize, n: usize) -> Result<Map> {
        match Self::pack_project_extra(true, first, n) {
            Some(extra) => cache::memo_map(OpKind::Project, self, None, extra, || {
                self.project_out_out_uncached(first, n)
            }),
            None => self.project_out_out_uncached(first, n),
        }
    }

    fn project_out_out_uncached(&self, first: usize, n: usize) -> Result<Map> {
        let n_in = self.n_in();
        let mut space = (*self.space).clone();
        space.output.dims.drain(first..first + n);
        let space = Arc::new(space);
        let mut basics = Vec::new();
        for b in &self.basics {
            let targets: Vec<usize> = (n_in + first..n_in + first + n).collect();
            basics.extend(eliminate_vars(b.clone(), targets)?);
        }
        for b in basics.iter_mut() {
            b.space = space.clone();
        }
        basics.dedup();
        Ok(Map { space, basics })
    }

    /// Projects away input dimensions `[first, first + n)`.
    pub fn project_out_in(&self, first: usize, n: usize) -> Result<Map> {
        match Self::pack_project_extra(false, first, n) {
            Some(extra) => cache::memo_map(OpKind::Project, self, None, extra, || {
                self.project_out_in_uncached(first, n)
            }),
            None => self.project_out_in_uncached(first, n),
        }
    }

    fn project_out_in_uncached(&self, first: usize, n: usize) -> Result<Map> {
        let mut space = (*self.space).clone();
        space.input.dims.drain(first..first + n);
        let space = Arc::new(space);
        let mut basics = Vec::new();
        for b in &self.basics {
            let targets: Vec<usize> = (first..first + n).collect();
            basics.extend(eliminate_vars(b.clone(), targets)?);
        }
        for b in basics.iter_mut() {
            b.space = space.clone();
        }
        basics.dedup();
        Ok(Map { space, basics })
    }

    /// The range of the relation, as a set.
    pub fn range(&self) -> Result<Set> {
        let m = self.project_out_in(0, self.n_in())?;
        Ok(Set::from_map_unchecked(m))
    }

    /// The domain of the relation, as a set.
    pub fn domain(&self) -> Result<Set> {
        self.reverse().range()
    }

    /// Reinterprets the relation as a set over the concatenated
    /// `in ++ out` dimensions (ISL's `wrap`).
    pub fn wrap(&self) -> Set {
        let mut dims = self.space.input.dims.clone();
        dims.extend(self.space.output.dims.iter().cloned());
        let space = Arc::new(Space::set(Tuple { name: None, dims }));
        let basics = self
            .basics
            .iter()
            .map(|b| {
                let mut nb = b.clone();
                nb.space = space.clone();
                nb
            })
            .collect();
        Set::from_map_unchecked(Map { space, basics })
    }

    /// Restricts the domain to `set`.
    pub fn intersect_domain(&self, set: &Set) -> Result<Map> {
        if set.n_dim() != self.n_in() {
            return Err(Error::SpaceMismatch(format!(
                "intersect_domain: set has {} dims, domain has {}",
                set.n_dim(),
                self.n_in()
            )));
        }
        cache::memo_map(OpKind::IntersectDomain, self, Some(set.as_map()), 0, || {
            let var_map: Vec<usize> = (0..self.n_in()).collect();
            self.intersect_with_mapped(set, &var_map)
        })
    }

    /// Restricts the range to `set`.
    pub fn intersect_range(&self, set: &Set) -> Result<Map> {
        if set.n_dim() != self.n_out() {
            return Err(Error::SpaceMismatch(format!(
                "intersect_range: set has {} dims, range has {}",
                set.n_dim(),
                self.n_out()
            )));
        }
        cache::memo_map(OpKind::IntersectRange, self, Some(set.as_map()), 0, || {
            let var_map: Vec<usize> = (self.n_in()..self.n_in() + self.n_out()).collect();
            self.intersect_with_mapped(set, &var_map)
        })
    }

    fn intersect_with_mapped(&self, set: &Set, var_map: &[usize]) -> Result<Map> {
        let mut basics = Vec::new();
        for a in &self.basics {
            for b in set.as_map().basics() {
                let mut nb = a.clone();
                nb.import_constraints(b, var_map)?;
                if nb.simplify() {
                    nb.drop_unused_divs();
                    basics.push(nb);
                }
            }
        }
        Ok(Map {
            space: self.space.clone(),
            basics,
        })
    }

    /// Fixes input dimension `dim` to `val`.
    pub fn fix_in(&self, dim: usize, val: i64) -> Map {
        self.fix_col(dim, val)
    }

    /// Fixes output dimension `dim` to `val`.
    pub fn fix_out(&self, dim: usize, val: i64) -> Map {
        self.fix_col(self.n_in() + dim, val)
    }

    /// Packs the fix-op memo key: the column in bits 64..126 and the full
    /// i64 value (as its bit pattern) in bits 0..64. `None` when the
    /// column would not fit — callers skip the cache then.
    fn pack_fix_extra(col: usize, val: i64) -> Option<i128> {
        if col >= (1 << 62) {
            return None;
        }
        Some(((col as i128) << 64) | (val as u64 as i128))
    }

    fn fix_col(&self, col: usize, val: i64) -> Map {
        let compute = || Ok(self.fix_col_uncached(col, val));
        // Like `reverse`: pinning a dimension of a small relation is a
        // couple of row pushes — only bulky unions (whose disjunct clones
        // carry real weight) go through the memo. Sweeps that re-pin the
        // same stamps (max-utilization probing, DSE re-evaluation) then
        // replay the clone from the table.
        if self.memo_weight() < 32 {
            return self.fix_col_uncached(col, val);
        }
        match Self::pack_fix_extra(col, val) {
            Some(extra) => {
                cache::memo_map(OpKind::Fix, self, None, extra, compute).expect("fix cannot fail")
            }
            None => self.fix_col_uncached(col, val),
        }
    }

    fn fix_col_uncached(&self, col: usize, val: i64) -> Map {
        let basics = self
            .basics
            .iter()
            .map(|b| {
                let mut nb = b.clone();
                let mut eq = nb.zero_row();
                eq[col] = 1;
                let k = nb.konst();
                eq[k] = -val;
                nb.add_eq(eq);
                nb
            })
            .collect();
        Map {
            space: self.space.clone(),
            basics,
        }
    }

    /// Exact number of pairs in the relation.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Unbounded`] if the relation is not bounded.
    pub fn card(&self) -> Result<u128> {
        cache::memo_count(OpKind::Card, self, 0, || self.card_uncached())
    }

    fn card_uncached(&self) -> Result<u128> {
        // Disjoint decomposition: b_i minus all earlier disjuncts.
        let mut total: u128 = 0;
        for (i, b) in self.basics.iter().enumerate() {
            let mut pieces = vec![b.clone()];
            for prev in &self.basics[..i] {
                let mut next = Vec::new();
                for p in &pieces {
                    next.extend(basic_subtract(p, prev)?);
                }
                pieces = next;
                if pieces.is_empty() {
                    break;
                }
            }
            for p in pieces {
                total = total
                    .checked_add(count::count_basic_owned(p)?)
                    .ok_or(Error::Overflow)?;
            }
        }
        Ok(total)
    }

    /// Whether the relation contains no pairs.
    pub fn is_empty(&self) -> Result<bool> {
        cache::memo_bool(OpKind::Empty, self, || self.is_empty_uncached())
    }

    fn is_empty_uncached(&self) -> Result<bool> {
        for b in &self.basics {
            if !count::basic_is_empty(b)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Map) -> Result<bool> {
        self.subtract(other)?.is_empty()
    }

    /// Whether the two relations contain exactly the same pairs.
    pub fn is_equal(&self, other: &Map) -> Result<bool> {
        Ok(self.is_subset(other)? && other.is_subset(self)?)
    }

    /// Whether the concatenated point `in ++ out` belongs to the relation.
    pub fn contains_point(&self, point: &[i64]) -> Result<bool> {
        for b in &self.basics {
            if b.contains_point(point)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Enumerates all pairs (as `in ++ out` coordinate vectors), sorted and
    /// deduplicated. Intended for small relations.
    ///
    /// # Errors
    ///
    /// Fails when more than `limit` points would be produced.
    pub fn points(&self, limit: usize) -> Result<Vec<Vec<i64>>> {
        let mut all = std::collections::BTreeSet::new();
        for b in &self.basics {
            for p in count::basic_points(b, limit)? {
                all.insert(p);
                if all.len() > limit {
                    return Err(Error::TooComplex(format!("more than {limit} points")));
                }
            }
        }
        Ok(all.into_iter().collect())
    }

    /// Merges disjuncts when their union is exactly representable as one
    /// basic map (see [`crate::coalesce`] patterns). Never changes the
    /// set of pairs.
    pub fn coalesce(&self) -> Map {
        if self.basics.len() <= 1 {
            // Nothing to merge; skip the memo round trip.
            return self.clone();
        }
        cache::memo_map(OpKind::Coalesce, self, None, 0, || {
            Ok(crate::coalesce::coalesce_map(self))
        })
        .expect("coalesce cannot fail")
    }

    /// The difference set `{ out - in : (in, out) ∈ self }` (ISL's
    /// `deltas`); input and output arities must match. Useful for
    /// dependence-distance and reuse-vector analysis.
    pub fn deltas(&self) -> Result<Set> {
        let n = self.n_in();
        if n != self.n_out() {
            return Err(Error::SpaceMismatch(
                "deltas requires equal input/output arities".into(),
            ));
        }
        let d_dims: Vec<String> = (0..n).map(|i| format!("d{i}")).collect();
        let mut x_dims: Vec<String> = (0..n).map(|i| format!("_x{i}")).collect();
        let mut y_dims: Vec<String> = (0..n).map(|i| format!("_y{i}")).collect();
        let mut out_dims = d_dims;
        out_dims.append(&mut x_dims);
        out_dims.append(&mut y_dims);
        let space = Arc::new(Space::set(Tuple {
            name: None,
            dims: out_dims,
        }));
        let mut basics = Vec::new();
        for b in &self.basics {
            let mut comb = BasicMap::universe(space.clone());
            // map's in dims -> x block (cols n..2n); out dims -> y block.
            let var_map: Vec<usize> = (n..2 * n).chain(2 * n..3 * n).collect();
            comb.import_constraints(b, &var_map)?;
            for i in 0..n {
                let mut eq = comb.zero_row();
                eq[i] = 1; // d_i
                eq[n + i] = 1; // + x_i
                eq[2 * n + i] = -1; // - y_i
                comb.add_eq(eq); // d = y - x
            }
            let targets: Vec<usize> = (n..3 * n).collect();
            basics.extend(crate::project::eliminate_vars(comb, targets)?);
        }
        let final_space = Arc::new(Space::set(Tuple {
            name: None,
            dims: (0..n).map(|i| format!("d{i}")).collect(),
        }));
        for b in basics.iter_mut() {
            b.space = final_space.clone();
        }
        basics.dedup();
        Ok(Set::from_map_unchecked(Map {
            space: final_space,
            basics,
        }))
    }

    /// Returns some point of the relation (as `in ++ out` coordinates), or
    /// `None` if it is empty.
    pub fn sample(&self) -> Result<Option<Vec<i64>>> {
        for b in &self.basics {
            if let Some(p) = count::basic_sample(b)? {
                return Ok(Some(p));
            }
        }
        Ok(None)
    }

    /// Whether the relation is single-valued (a partial function): no
    /// input relates to two different outputs. TENET dataflows must be
    /// single-valued — every loop instance executes on exactly one
    /// spacetime-stamp.
    ///
    /// ```
    /// use tenet_isl::Map;
    /// let f = Map::parse("{ S[i] -> T[i + 1] : 0 <= i < 4 }")?;
    /// assert!(f.is_single_valued()?);
    /// let r = Map::parse("{ S[i] -> T[j] : 0 <= i < 4 and 0 <= j < 2 }")?;
    /// assert!(!r.is_single_valued()?);
    /// # Ok::<(), tenet_isl::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates failures of the underlying composition and subset
    /// tests.
    pub fn is_single_valued(&self) -> Result<bool> {
        // { o1 -> o2 : exists i, (i -> o1) in M and (i -> o2) in M } is
        // contained in the identity.
        let pairs = self.reverse().apply_range(self)?;
        let id = Map::identity(pairs.space().input.clone(), pairs.space().output.clone())?;
        pairs.is_subset(&id)
    }

    /// Whether the relation is injective: no two inputs share an output
    /// (one MAC per PE per cycle, Section II-A of the paper).
    ///
    /// # Errors
    ///
    /// Propagates failures of the underlying composition and subset
    /// tests.
    pub fn is_injective(&self) -> Result<bool> {
        // { i1 -> i2 : exists o, (i1 -> o) in M and (i2 -> o) in M } is
        // contained in the identity.
        let pairs = self.apply_range(&self.reverse())?;
        let id = Map::identity(pairs.space().input.clone(), pairs.space().output.clone())?;
        pairs.is_subset(&id)
    }

    /// Whether the relation is a bijection between its domain and range.
    ///
    /// # Errors
    ///
    /// Propagates failures of [`Map::is_single_valued`] and
    /// [`Map::is_injective`].
    pub fn is_bijective(&self) -> Result<bool> {
        Ok(self.is_single_valued()? && self.is_injective()?)
    }

    /// Renames the space (arities must match).
    pub fn with_space(&self, space: impl Into<Arc<Space>>) -> Result<Map> {
        let space = space.into();
        if !self.space.is_compatible(&space) {
            return Err(Error::SpaceMismatch(format!(
                "cannot rename {} to {}",
                self.space, space
            )));
        }
        let basics = self
            .basics
            .iter()
            .map(|b| {
                let mut nb = b.clone();
                nb.space = space.clone();
                nb
            })
            .collect();
        Ok(Map { space, basics })
    }
}

/// Exact difference of two basic maps as a disjoint union of basic maps.
pub(crate) fn basic_subtract(p: &BasicMap, c: &BasicMap) -> Result<Vec<BasicMap>> {
    debug_assert_eq!(p.div0(), c.div0());
    let var_map: Vec<usize> = (0..p.div0()).collect();
    let mut base = p.clone();
    let div_map = base.import_divs(c, &var_map)?;
    // Collect c's constraints as inequality rows in base's layout.
    let mut cons: Vec<Row> = Vec::new();
    for r in &c.ineqs {
        cons.push(base.translate_row(c, &var_map, &div_map, r));
    }
    for r in &c.eqs {
        let row = base.translate_row(c, &var_map, &div_map, r);
        let neg: Row = row.iter().map(|v| -v).collect();
        cons.push(row);
        cons.push(neg);
    }
    // Progressive cut: piece_i = base ∧ c_0 ∧ ... ∧ c_{i-1} ∧ ¬c_i.
    let mut pieces = Vec::new();
    let mut cur = base;
    for t in cons {
        let mut piece = cur.clone();
        let mut neg: Row = t.iter().map(|v| -v).collect();
        let k = piece.konst();
        neg[k] -= 1;
        piece.add_ineq(neg);
        if piece.simplify() && !count::basic_is_empty(&piece)? {
            piece.drop_unused_divs();
            pieces.push(piece);
        }
        cur.add_ineq(t);
    }
    Ok(pieces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_card() {
        let a = Map::parse("{ A[i] -> B[i] : 0 <= i < 4 }").unwrap();
        let b = Map::parse("{ A[i] -> B[i] : 2 <= i < 6 }").unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.card().unwrap(), 6);
    }

    #[test]
    fn subtract_removes_overlap() {
        let a = Map::parse("{ A[i] -> B[i] : 0 <= i < 10 }").unwrap();
        let b = Map::parse("{ A[i] -> B[i] : 3 <= i < 5 }").unwrap();
        let d = a.subtract(&b).unwrap();
        assert_eq!(d.card().unwrap(), 8);
        assert!(d.contains_point(&[2, 2]).unwrap());
        assert!(!d.contains_point(&[3, 3]).unwrap());
    }

    #[test]
    fn apply_range_composes() {
        let a = Map::parse("{ A[i] -> B[i + 1] : 0 <= i < 5 }").unwrap();
        let b = Map::parse("{ B[j] -> C[2 j] }").unwrap();
        let c = a.apply_range(&b).unwrap();
        // i -> 2(i+1) for i in [0,5)
        assert_eq!(c.card().unwrap(), 5);
        assert!(c.contains_point(&[0, 2]).unwrap());
        assert!(c.contains_point(&[4, 10]).unwrap());
        assert!(!c.contains_point(&[0, 3]).unwrap());
    }

    #[test]
    fn reverse_and_domain_range() {
        let a = Map::parse("{ A[i] -> B[i, i] : 0 <= i < 3 }").unwrap();
        let r = a.reverse();
        assert!(r.contains_point(&[1, 1, 1]).unwrap());
        let dom = a.domain().unwrap();
        assert_eq!(dom.card().unwrap(), 3);
        let rng = a.range().unwrap();
        assert_eq!(rng.card().unwrap(), 3);
    }

    #[test]
    fn wrap_counts_pairs() {
        let a = Map::parse("{ A[i] -> B[j] : 0 <= i < 2 and 0 <= j < 3 }").unwrap();
        assert_eq!(a.wrap().card().unwrap(), 6);
    }

    #[test]
    fn identity_subset() {
        let id = Map::identity(Tuple::new("A", ["x"]), Tuple::new("B", ["y"])).unwrap();
        let m = Map::parse("{ A[i] -> B[i] : 0 <= i < 7 }").unwrap();
        assert!(m.is_subset(&id).unwrap());
        let m2 = Map::parse("{ A[i] -> B[i + 1] : 0 <= i < 7 }").unwrap();
        assert!(!m2.is_subset(&id).unwrap());
    }

    #[test]
    fn card_with_mod_div() {
        let m = Map::parse("{ S[i, j] -> PE[i mod 4] : 0 <= i < 16 and 0 <= j < 2 }").unwrap();
        assert_eq!(m.card().unwrap(), 32);
        let rng = m.range().unwrap();
        assert_eq!(rng.card().unwrap(), 4);
    }
}
