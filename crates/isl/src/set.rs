//! [`Set`]: an integer set, represented as a relation with an empty domain.

use crate::map::Map;
use crate::space::{Space, Tuple};
use crate::{Error, Result};

/// A set of integer tuples (a [`Map`] with zero input dimensions).
///
/// ```
/// use tenet_isl::Set;
/// let s = Set::parse("{ S[i, j] : 0 <= i < 4 and 0 <= j <= i }")?;
/// assert_eq!(s.card()?, 10);
/// # Ok::<(), tenet_isl::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Set {
    map: Map,
}

impl Set {
    /// Parses a set from textual notation, e.g. `{ PE[i, j] : 0 <= i, 0 <=
    /// j and i < 8 and j < 8 }`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for malformed or non-affine input.
    pub fn parse(text: &str) -> Result<Set> {
        // Sets memoize through their map representation, under a key
        // distinct from `Map::parse` (each rejects the other's texts).
        Ok(Set {
            map: crate::cache::memo_parse(true, text, || {
                crate::parse::parse_set(text).map(Set::into_map)
            })?,
        })
    }

    /// Wraps a map that already has an empty domain.
    pub(crate) fn from_map_unchecked(map: Map) -> Set {
        debug_assert_eq!(map.n_in(), 0);
        Set { map }
    }

    /// Converts a zero-input map into a set.
    pub fn try_from_map(map: Map) -> Result<Set> {
        if map.n_in() != 0 {
            return Err(Error::SpaceMismatch(
                "a set must have an empty input tuple".into(),
            ));
        }
        Ok(Set { map })
    }

    /// The unconstrained set over `tuple`.
    pub fn universe(tuple: Tuple) -> Set {
        Set {
            map: Map::universe(Space::set(tuple)),
        }
    }

    /// The empty set over `tuple`.
    pub fn empty(tuple: Tuple) -> Set {
        Set {
            map: Map::empty(Space::set(tuple)),
        }
    }

    /// The underlying map view (empty domain).
    pub fn as_map(&self) -> &Map {
        &self.map
    }

    /// Consumes the set, returning the underlying map.
    pub fn into_map(self) -> Map {
        self.map
    }

    /// The tuple this set ranges over.
    pub fn tuple(&self) -> &Tuple {
        &self.map.space().output
    }

    /// Number of dimensions.
    pub fn n_dim(&self) -> usize {
        self.map.n_out()
    }

    /// Set union.
    pub fn union(&self, other: &Set) -> Result<Set> {
        Ok(Set {
            map: self.map.union(&other.map)?,
        })
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Set) -> Result<Set> {
        Ok(Set {
            map: self.map.intersect(&other.map)?,
        })
    }

    /// Exact set difference.
    pub fn subtract(&self, other: &Set) -> Result<Set> {
        Ok(Set {
            map: self.map.subtract(&other.map)?,
        })
    }

    /// Projects away dimensions `[first, first + n)`.
    pub fn project_out(&self, first: usize, n: usize) -> Result<Set> {
        Ok(Set {
            map: self.map.project_out_out(first, n)?,
        })
    }

    /// Fixes dimension `dim` to `val`.
    pub fn fix(&self, dim: usize, val: i64) -> Set {
        Set {
            map: self.map.fix_out(dim, val),
        }
    }

    /// Exact number of points.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Unbounded`] if the set is not bounded.
    pub fn card(&self) -> Result<u128> {
        self.map.card()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> Result<bool> {
        self.map.is_empty()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Set) -> Result<bool> {
        self.map.is_subset(&other.map)
    }

    /// Whether the two sets contain exactly the same points.
    pub fn is_equal(&self, other: &Set) -> Result<bool> {
        self.map.is_equal(&other.map)
    }

    /// Whether `point` belongs to the set.
    pub fn contains_point(&self, point: &[i64]) -> Result<bool> {
        self.map.contains_point(point)
    }

    /// Enumerates all points, sorted. Intended for small sets.
    pub fn points(&self, limit: usize) -> Result<Vec<Vec<i64>>> {
        self.map.points(limit)
    }

    /// Exact maximum, over every value of the suffix dims `[split, n)`, of
    /// the number of points sharing that suffix: `max_t |{x : (x ++ t) ∈
    /// S}|`. One [`Set::points`] enumeration bucketed on the suffix — the
    /// single-pass replacement for fixing each suffix value and counting
    /// separately — and memoized, so recomputation over the same set is a
    /// table hit.
    ///
    /// ```
    /// use tenet_isl::Set;
    /// // (pe, t) activity: 2 active at t = 0, 1 at t = 1.
    /// let s = Set::parse("{ A[p, t] : 0 <= p <= 1 and 0 <= t <= 1 and p + t <= 1 }")?;
    /// assert_eq!(s.max_suffix_slice_card(1, 100)?, 2);
    /// # Ok::<(), tenet_isl::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Fails with [`Error::TooComplex`] when the set holds more than
    /// `enum_limit` points, and propagates enumeration failures of
    /// unbounded sets. The memoized value does not depend on
    /// `enum_limit` (it is exact whenever it exists).
    pub fn max_suffix_slice_card(&self, split: usize, enum_limit: usize) -> Result<u128> {
        if split > self.n_dim() {
            return Err(Error::SpaceMismatch(format!(
                "suffix split {split} exceeds dimensionality {}",
                self.n_dim()
            )));
        }
        crate::cache::memo_count(
            crate::cache::OpKind::SliceMax,
            self.as_map(),
            split as i128,
            || self.max_suffix_slice_card_uncached(split, enum_limit),
        )
    }

    /// Strategy dispatch for [`Set::max_suffix_slice_card`]. Both
    /// strategies are exact and agree bit-for-bit (property-tested), so
    /// the choice is purely a cost model: bucketing pays per *point*,
    /// sweeping pays per *suffix value* (each a closed-form `card`), so
    /// bucketing wins only while points-per-suffix stays small.
    fn max_suffix_slice_card_uncached(&self, split: usize, enum_limit: usize) -> Result<u128> {
        /// Above this many points per suffix value, per-suffix counting
        /// beats enumerating every point.
        const BUCKET_MAX_POINTS_PER_SUFFIX: u128 = 16;
        let total = self.card()?;
        let suffixes = self.project_out(0, split)?;
        let suffix_count = suffixes.card()?.max(1);
        if total <= enum_limit as u128
            && total <= suffix_count.saturating_mul(BUCKET_MAX_POINTS_PER_SUFFIX)
        {
            let mut buckets: std::collections::HashMap<Vec<i64>, u128> =
                std::collections::HashMap::new();
            if let [single] = self.map.basics() {
                // One disjunct: every visible point is visited exactly
                // once, so the counts can stream through the visitor with
                // no materialized point list (and a key allocation only
                // per distinct suffix).
                crate::count::basic_points_visit(single, &mut |p| {
                    match buckets.get_mut(&p[split..]) {
                        Some(c) => *c += 1,
                        None => {
                            buckets.insert(p[split..].to_vec(), 1);
                        }
                    }
                    Ok(())
                })?;
            } else {
                // Unions need cross-disjunct dedup: take the sorted,
                // deduplicated point list.
                for p in self.points(enum_limit)? {
                    match buckets.get_mut(&p[split..]) {
                        Some(c) => *c += 1,
                        None => {
                            buckets.insert(p[split..].to_vec(), 1);
                        }
                    }
                }
            }
            return Ok(buckets.values().copied().max().unwrap_or(0));
        }
        if suffix_count <= enum_limit as u128 {
            // Sweep: pin each suffix value and count the slice (each
            // count dispatches to the closed forms; with the memo on,
            // repeats replay from the table).
            let mut max = 0u128;
            for sp in suffixes.points(enum_limit)? {
                let mut slice = self.clone();
                for (i, &v) in sp.iter().enumerate() {
                    slice = slice.fix(split + i, v);
                }
                max = max.max(slice.card()?);
            }
            return Ok(max);
        }
        Err(Error::TooComplex(format!(
            "max_suffix_slice_card: {total} points and {suffix_count} suffix values both exceed the enumeration limit {enum_limit}"
        )))
    }

    /// Best-known finite bounds `[lo, hi]` of dimension `dim` across all
    /// disjuncts.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Unbounded`] when no finite bound can be derived.
    pub fn dim_bounds(&self, dim: usize) -> Result<(i64, i64)> {
        let mut bounds: Option<(i64, i64)> = None;
        for b in self.map.basics() {
            let (lo, hi) = crate::count::var_range(b, dim)?;
            bounds = Some(match bounds {
                None => (lo, hi),
                Some((l, h)) => (l.min(lo), h.max(hi)),
            });
        }
        bounds.ok_or_else(|| Error::Unbounded("empty set has no bounds".into()))
    }

    /// Interprets this set over `in ++ out` dims back as a map
    /// (inverse of [`Map::wrap`]); `n_in` leading dims become the domain.
    pub fn unwrap_map(&self, n_in: usize, space: Space) -> Result<Map> {
        if space.n_in() != n_in || space.n_in() + space.n_out() != self.n_dim() {
            return Err(Error::SpaceMismatch(
                "unwrap: space arities do not match set dimensionality".into(),
            ));
        }
        let space = std::sync::Arc::new(space);
        let mut out = Map {
            space: space.clone(),
            basics: self.map.basics.clone(),
        };
        for b in out.basics.iter_mut() {
            b.space = space.clone();
        }
        Ok(out)
    }
}

impl Set {
    /// Merges disjuncts when the union is exactly representable as one
    /// basic set (see [`Map::coalesce`]).
    pub fn coalesce(&self) -> Set {
        Set::from_map_unchecked(self.as_map().coalesce())
    }

    /// Returns some point of the set, or `None` if it is empty.
    pub fn sample(&self) -> crate::Result<Option<Vec<i64>>> {
        self.as_map().sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_card() {
        let s = Set::parse("{ PE[i, j] : 0 <= i < 2 and 0 <= j < 2 }").unwrap();
        assert_eq!(s.card().unwrap(), 4);
    }

    #[test]
    fn union_intersect_subtract() {
        let a = Set::parse("{ A[i] : 0 <= i < 8 }").unwrap();
        let b = Set::parse("{ A[i] : 4 <= i < 12 }").unwrap();
        assert_eq!(a.union(&b).unwrap().card().unwrap(), 12);
        assert_eq!(a.intersect(&b).unwrap().card().unwrap(), 4);
        assert_eq!(a.subtract(&b).unwrap().card().unwrap(), 4);
        // Inclusion-exclusion sanity.
        let lhs = a.union(&b).unwrap().card().unwrap() + a.intersect(&b).unwrap().card().unwrap();
        assert_eq!(lhs, a.card().unwrap() + b.card().unwrap());
    }

    #[test]
    fn projection() {
        let s = Set::parse("{ A[i, j] : 0 <= i < 4 and 0 <= j <= i }").unwrap();
        let p = s.project_out(1, 1).unwrap();
        assert_eq!(p.card().unwrap(), 4);
        let q = s.project_out(0, 1).unwrap();
        assert_eq!(q.card().unwrap(), 4); // j in [0, 3]
    }

    #[test]
    fn fix_slices() {
        let s = Set::parse("{ A[i, j] : 0 <= i < 4 and 0 <= j <= i }").unwrap();
        assert_eq!(s.fix(0, 2).card().unwrap(), 3);
        assert_eq!(s.fix(0, 9).card().unwrap(), 0);
    }
}
