//! Property tests: every integer-set operation is compared against a
//! brute-force enumeration oracle on randomly generated bounded sets.

use proptest::prelude::*;
use tenet_isl::{Map, Set};

/// Brute-force point count over a bounding box.
fn brute_count(s: &Set, lo: i64, hi: i64) -> u128 {
    let d = s.n_dim();
    let mut count = 0u128;
    let mut point = vec![lo; d];
    loop {
        if s.contains_point(&point).unwrap() {
            count += 1;
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == d {
                return count;
            }
            point[i] += 1;
            if point[i] <= hi {
                break;
            }
            point[i] = lo;
            i += 1;
        }
    }
}

/// A strategy producing random affine inequality constraints as text.
fn constraint_strategy(dims: &'static [&'static str]) -> impl Strategy<Value = String> {
    let coef = -3i64..=3;
    let coefs = proptest::collection::vec(coef, dims.len());
    (coefs, -6i64..=6).prop_map(move |(cs, k)| {
        let mut terms: Vec<String> = Vec::new();
        for (c, d) in cs.iter().zip(dims.iter()) {
            if *c != 0 {
                terms.push(format!("{c}*{d}"));
            }
        }
        if terms.is_empty() {
            terms.push("0".to_string());
        }
        format!("{} + {k} >= 0", terms.join(" + "))
    })
}

/// Builds a random bounded 2-D set: a box intersected with random
/// half-planes.
fn set2_strategy() -> impl Strategy<Value = Set> {
    let dims: &'static [&'static str] = &["x", "y"];
    proptest::collection::vec(constraint_strategy(dims), 0..4).prop_map(|cons| {
        let mut text = String::from("{ A[x, y] : 0 <= x <= 6 and 0 <= y <= 6");
        for c in &cons {
            text.push_str(" and ");
            text.push_str(c);
        }
        text.push_str(" }");
        Set::parse(&text).unwrap()
    })
}

/// Random 3-D set with a mod or floor constraint mixed in.
fn set3_div_strategy() -> impl Strategy<Value = Set> {
    let dims: &'static [&'static str] = &["x", "y", "z"];
    (
        proptest::collection::vec(constraint_strategy(dims), 0..3),
        2i64..=4,
        0i64..=3,
    )
        .prop_map(|(cons, m, r)| {
            let r = r % m;
            let mut text =
                String::from("{ A[x, y, z] : 0 <= x <= 5 and 0 <= y <= 5 and 0 <= z <= 5");
            text.push_str(&format!(" and (x + 2*y) mod {m} <= {r}"));
            for c in &cons {
                text.push_str(" and ");
                text.push_str(c);
            }
            text.push_str(" }");
            Set::parse(&text).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn card_matches_brute_force(s in set2_strategy()) {
        prop_assert_eq!(s.card().unwrap(), brute_count(&s, -1, 7));
    }

    #[test]
    fn card_matches_brute_force_with_divs(s in set3_div_strategy()) {
        prop_assert_eq!(s.card().unwrap(), brute_count(&s, -1, 6));
    }

    #[test]
    fn inclusion_exclusion(a in set2_strategy(), b in set2_strategy()) {
        let u = a.union(&b).unwrap().card().unwrap();
        let i = a.intersect(&b).unwrap().card().unwrap();
        prop_assert_eq!(u + i, a.card().unwrap() + b.card().unwrap());
    }

    #[test]
    fn subtract_matches_brute_force(a in set2_strategy(), b in set2_strategy()) {
        let d = a.subtract(&b).unwrap();
        let mut expect = 0u128;
        for x in -1..=7i64 {
            for y in -1..=7i64 {
                let p = [x, y];
                if a.contains_point(&p).unwrap() && !b.contains_point(&p).unwrap() {
                    expect += 1;
                }
            }
        }
        prop_assert_eq!(d.card().unwrap(), expect);
        // Difference must be disjoint from b and inside a.
        prop_assert!(d.intersect(&b).unwrap().is_empty().unwrap());
        prop_assert!(d.is_subset(&a).unwrap());
    }

    #[test]
    fn projection_matches_brute_force(s in set2_strategy()) {
        let p = s.project_out(1, 1).unwrap();
        let mut expect = std::collections::BTreeSet::new();
        for x in -1..=7i64 {
            for y in -1..=7i64 {
                if s.contains_point(&[x, y]).unwrap() {
                    expect.insert(x);
                }
            }
        }
        prop_assert_eq!(p.card().unwrap(), expect.len() as u128);
        for &x in &expect {
            prop_assert!(p.contains_point(&[x]).unwrap());
        }
    }

    #[test]
    fn print_parse_roundtrip(s in set3_div_strategy()) {
        let printed = s.to_string();
        let re = Set::parse(&printed).unwrap();
        prop_assert!(s.is_equal(&re).unwrap(), "printed: {}", printed);
    }

    #[test]
    fn points_agree_with_contains(s in set2_strategy()) {
        let pts = s.points(10_000).unwrap();
        let n = pts.len() as u128;
        prop_assert_eq!(n, s.card().unwrap());
        for p in &pts {
            prop_assert!(s.contains_point(p).unwrap());
        }
    }
}

// Composition compared point-wise: for random quasi-affine functions
// f: A -> B and g: B -> C, `apply_range` must contain exactly the pairs
// (x, g(f(x))).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apply_range_pointwise(a in 1i64..=3, b in -2i64..=2, m in 2i64..=4, c in 1i64..=3) {
        let f = Map::parse(&format!(
            "{{ A[i] -> B[{a}*i + {b}, i mod {m}] : 0 <= i < 12 }}"
        )).unwrap();
        let g = Map::parse(&format!(
            "{{ B[u, v] -> C[{c}*u + v] }}"
        )).unwrap();
        let h = f.apply_range(&g).unwrap();
        for i in 0..12i64 {
            let u = a * i + b;
            let v = i.rem_euclid(m);
            let z = c * u + v;
            prop_assert!(h.contains_point(&[i, z]).unwrap(), "i={} z={}", i, z);
        }
        prop_assert_eq!(h.card().unwrap(), 12);
    }

    #[test]
    fn reverse_involution(s in set2_strategy()) {
        // Treat the set's 2-D space as a map by unwrapping; check that
        // reversing twice is the identity on points.
        let m = Map::parse("{ A[x] -> B[y] : 0 <= x <= 4 and 0 <= y <= x }").unwrap();
        let rr = m.reverse().reverse();
        prop_assert!(m.is_equal(&rr).unwrap());
        // Also: |reverse| == |m|.
        prop_assert_eq!(m.reverse().card().unwrap(), m.card().unwrap());
        let _ = s;
    }
}

/// Random pair-graph shapes (a forest of two-variable windows over a
/// box): the chained closed forms must agree with brute force.
fn set3_chain_strategy() -> impl Strategy<Value = Set> {
    (
        -2i64..=2,
        proptest::collection::vec((1i64..=2, 1i64..=2, -8i64..=2, 0i64..=10), 2),
    )
        .prop_map(|(lo0, links)| {
            let mut text =
                String::from("{ A[x, y, z] : 0 <= x <= 6 and 0 <= y <= 6 and 0 <= z <= 6");
            let dims = ["x", "y", "z"];
            for (i, (a, b, lo, w)) in links.iter().enumerate() {
                let (u, v) = (dims[i], dims[i + 1]);
                text.push_str(&format!(
                    " and {lo} <= {a}*{u} + -{b}*{v} and {a}*{u} + -{b}*{v} <= {}",
                    lo + w
                ));
            }
            text.push_str(&format!(" and {lo0} <= x"));
            text.push_str(" }");
            Set::parse(&text).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chained two-variable windows: card equals brute force, and the
    /// count survives pinning any single variable.
    #[test]
    fn chain_card_matches_brute_force(s in set3_chain_strategy(), dim in 0usize..3, val in 0i64..=6) {
        prop_assert_eq!(s.card().unwrap(), brute_count(&s, -1, 7));
        let fixed = s.fix(dim, val);
        prop_assert_eq!(fixed.card().unwrap(), brute_count(&fixed, -1, 7));
    }

    /// Coupled slabs (two multi-variable windows sharing a dimension):
    /// card equals brute force across random widths and offsets.
    #[test]
    fn coupled_slab_card_matches_brute_force(
        lo1 in -4i64..=4, w1 in 0i64..=12,
        lo2 in -4i64..=4, w2 in 0i64..=12,
    ) {
        let text = format!(
            "{{ A[x, y, z, w] : 0 <= x <= 6 and 0 <= y <= 6 and 0 <= z <= 6 and 0 <= w <= 6 \
             and {lo1} <= x + y + z and x + y + z <= {} \
             and {lo2} <= z + w and z + w <= {} }}",
            lo1 + w1,
            lo2 + w2,
        );
        let s = Set::parse(&text).unwrap();
        prop_assert_eq!(s.card().unwrap(), brute_count(&s, -1, 7), "{}", text);
    }
}

#[test]
fn huge_extent_chain_closed_form() {
    // Monotone 5-chain over [0, 1999]: far beyond enumeration, the
    // value-table DP must close it exactly (multichoose(2000, 5)).
    let s = Set::parse(
        "{ A[a, b, c, d, e] : 0 <= a <= 1999 and 0 <= b <= 1999 and 0 <= c <= 1999 \
         and 0 <= d <= 1999 and 0 <= e <= 1999 \
         and 0 <= a - b and 0 <= b - c and 0 <= c - d and 0 <= d - e }",
    )
    .unwrap();
    let expect: u128 = 2004 * 2003 * 2002 * 2001 * 2000 / 120;
    assert_eq!(s.card().unwrap(), expect);
}

#[test]
fn compose_with_mod_div_through_mid() {
    // Eliminating the mid dims requires looking through divs: the
    // round-trip i -> (i mod 8, floor(i/8)) -> i is the identity.
    let split = Map::parse("{ A[i] -> B[i mod 8, floor(i/8)] : 0 <= i < 64 }").unwrap();
    let join = Map::parse("{ B[r, q] -> C[8*q + r] }").unwrap();
    let h = split.apply_range(&join).unwrap();
    for i in 0..64i64 {
        assert!(h.contains_point(&[i, i]).unwrap(), "i={i}");
    }
    assert_eq!(h.card().unwrap(), 64);
}

#[test]
fn large_sparse_counts_factor() {
    // Independent components must factor: a 1000 x 1000 x 7 box.
    let s = Set::parse("{ A[x, y, z] : 0 <= x < 1000 and 0 <= y < 1000 and 0 <= z < 7 }").unwrap();
    assert_eq!(s.card().unwrap(), 7_000_000);
}

#[test]
fn huge_extent_series() {
    // Coupled pair with huge extents exercises the arithmetic-series path.
    let s = Set::parse("{ A[x, y] : 0 <= x < 500000 and 0 <= y <= x }").unwrap();
    let n: u128 = 500_000;
    assert_eq!(s.card().unwrap(), n * (n + 1) / 2);
}

// Lexicographic optimization, gist, and the function predicates compared
// against brute force on the same random families.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lexopt_agrees_with_sorted_enumeration(s in set2_strategy()) {
        let mut pts = s.points(10_000).unwrap();
        pts.sort();
        prop_assert_eq!(s.lexmin().unwrap(), pts.first().cloned());
        prop_assert_eq!(s.lexmax().unwrap(), pts.last().cloned());
    }

    #[test]
    fn lexopt_agrees_on_div_sets(s in set3_div_strategy()) {
        let mut pts = s.points(10_000).unwrap();
        pts.sort();
        prop_assert_eq!(s.lexmin().unwrap(), pts.first().cloned());
        prop_assert_eq!(s.lexmax().unwrap(), pts.last().cloned());
    }

    #[test]
    fn gist_invariant_under_context(a in set2_strategy(), ctx in set2_strategy()) {
        let g = a.gist(&ctx).unwrap();
        let lhs = g.intersect(&ctx).unwrap();
        let rhs = a.intersect(&ctx).unwrap();
        prop_assert!(lhs.is_equal(&rhs).unwrap());
        // gist never grows the constraint system.
        let count = |s: &Set| -> usize {
            s.as_map().basics().iter().map(|b| b.constraint_count()).sum()
        };
        prop_assert!(count(&g) <= count(&a));
    }

    #[test]
    fn single_valued_matches_bruteforce(
        cons in proptest::collection::vec(constraint_strategy(&["x", "y"]), 0..3),
    ) {
        let mut text = String::from("{ S[x] -> T[y] : 0 <= x <= 5 and 0 <= y <= 5");
        for c in &cons {
            text.push_str(" and ");
            text.push_str(c);
        }
        text.push_str(" }");
        let m = Map::parse(&text).unwrap();
        let pts = m.points(10_000).unwrap();
        let mut sv = true;
        let mut inj = true;
        for p in &pts {
            for q in &pts {
                if p[0] == q[0] && p[1] != q[1] {
                    sv = false;
                }
                if p[1] == q[1] && p[0] != q[0] {
                    inj = false;
                }
            }
        }
        prop_assert_eq!(m.is_single_valued().unwrap(), sv);
        prop_assert_eq!(m.is_injective().unwrap(), inj);
        prop_assert_eq!(m.is_bijective().unwrap(), sv && inj);
    }
}
