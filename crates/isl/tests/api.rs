//! API-surface tests: error paths, helpers, and behaviours not already
//! covered by the module unit tests or the property suite.

use tenet_isl::{Error, Map, Set, Space, Tuple};

#[test]
fn dim_bounds_across_union() {
    let s = Set::parse("{ A[i] : 0 <= i < 4 or 10 <= i < 12 }").unwrap();
    assert_eq!(s.dim_bounds(0).unwrap(), (0, 11));
}

#[test]
fn dim_bounds_unbounded_errors() {
    let s = Set::parse("{ A[i] : i >= 0 }").unwrap();
    assert!(matches!(s.dim_bounds(0), Err(Error::Unbounded(_))));
}

#[test]
fn card_unbounded_errors() {
    let s = Set::parse("{ A[i] : i >= 3 }").unwrap();
    assert!(s.card().is_err());
}

#[test]
fn apply_range_arity_mismatch() {
    let a = Map::parse("{ A[i] -> B[i, i] }").unwrap();
    let b = Map::parse("{ C[x] -> D[x] }").unwrap();
    assert!(matches!(a.apply_range(&b), Err(Error::SpaceMismatch(_))));
}

#[test]
fn union_space_mismatch() {
    let a = Set::parse("{ A[i] : 0 <= i < 2 }").unwrap();
    let b = Set::parse("{ A[i, j] : 0 <= i < 2 and 0 <= j < 2 }").unwrap();
    assert!(a.union(&b).is_err());
}

#[test]
fn intersect_domain_and_range() {
    let m = Map::parse("{ A[i] -> B[j] : 0 <= i < 10 and 0 <= j < 10 }").unwrap();
    let dom = Set::parse("{ A[i] : 2 <= i < 4 }").unwrap();
    let rng = Set::parse("{ B[j] : 5 <= j < 6 }").unwrap();
    let r = m
        .intersect_domain(&dom)
        .unwrap()
        .intersect_range(&rng)
        .unwrap();
    assert_eq!(r.card().unwrap(), 2);
    assert!(r.contains_point(&[2, 5]).unwrap());
    assert!(!r.contains_point(&[4, 5]).unwrap());
}

#[test]
fn fix_in_and_out() {
    let m = Map::parse("{ A[i] -> B[j] : 0 <= i < 3 and 0 <= j <= i }").unwrap();
    assert_eq!(m.fix_in(0, 2).card().unwrap(), 3);
    assert_eq!(m.fix_out(0, 0).card().unwrap(), 3);
    assert_eq!(m.fix_in(0, 9).card().unwrap(), 0);
}

#[test]
fn wrap_unwrap_roundtrip() {
    let m = Map::parse("{ A[i] -> B[j] : 0 <= i < 3 and 0 <= j < 2 }").unwrap();
    let w = m.wrap();
    assert_eq!(w.n_dim(), 2);
    let space = Space::map(Tuple::new("A", ["i"]), Tuple::new("B", ["j"]));
    let back = w.unwrap_map(1, space).unwrap();
    assert!(m.is_equal(&back).unwrap());
}

#[test]
fn with_space_renames() {
    let m = Map::parse("{ A[i] -> B[j] : j = i and 0 <= i < 2 }").unwrap();
    let space = Space::map(Tuple::new("X", ["a"]), Tuple::new("Y", ["b"]));
    let r = m.with_space(space).unwrap();
    assert_eq!(r.space().input.name.as_deref(), Some("X"));
    assert_eq!(r.card().unwrap(), 2);
}

#[test]
fn with_space_arity_checked() {
    let m = Map::parse("{ A[i] -> B[j] }").unwrap();
    let bad = Space::map(Tuple::new("X", ["a", "b"]), Tuple::new("Y", ["c"]));
    assert!(m.with_space(bad).is_err());
}

#[test]
fn empty_and_universe() {
    let t = Tuple::new("A", ["x"]);
    let e = Set::empty(t.clone());
    assert!(e.is_empty().unwrap());
    assert_eq!(e.card().unwrap(), 0);
    let u = Set::universe(t);
    assert!(!u.is_empty().unwrap());
    assert!(u.card().is_err()); // unbounded
}

#[test]
fn points_limit_enforced() {
    let s = Set::parse("{ A[i] : 0 <= i < 100 }").unwrap();
    assert!(s.points(10).is_err());
    assert_eq!(s.points(100).unwrap().len(), 100);
}

#[test]
fn negative_coordinates() {
    let s = Set::parse("{ A[i, j] : -5 <= i < 0 and -2 <= j <= 2 }").unwrap();
    assert_eq!(s.card().unwrap(), 25);
    assert!(s.contains_point(&[-5, -2]).unwrap());
    assert!(!s.contains_point(&[0, 0]).unwrap());
}

#[test]
fn mod_of_negative_is_floor_mod() {
    // i mod 8 over negative i follows floor semantics (non-negative).
    let m = Map::parse("{ A[i] -> B[i mod 8] : -8 <= i < 0 }").unwrap();
    assert!(m.contains_point(&[-3, 5]).unwrap());
    assert!(!m.contains_point(&[-3, -3]).unwrap());
    assert_eq!(m.range().unwrap().card().unwrap(), 8);
}

#[test]
fn deeply_nested_floor() {
    let m = Map::parse("{ A[i] -> B[floor(floor(i/2)/3)] : 0 <= i < 36 }").unwrap();
    // floor(floor(i/2)/3) == floor(i/6)
    let n = Map::parse("{ A[i] -> B[floor(i/6)] : 0 <= i < 36 }").unwrap();
    assert!(m.is_equal(&n).unwrap());
}

#[test]
fn subtract_with_divs_exact() {
    let a = Set::parse("{ A[i] : 0 <= i < 32 }").unwrap();
    let evens = Set::parse("{ A[i] : i = 2*floor(i/2) and 0 <= i < 32 }").unwrap();
    assert_eq!(evens.card().unwrap(), 16);
    let odds = a.subtract(&evens).unwrap();
    assert_eq!(odds.card().unwrap(), 16);
    assert!(odds.contains_point(&[5]).unwrap());
    assert!(!odds.contains_point(&[6]).unwrap());
}

#[test]
fn chain_of_compositions() {
    // Four composition steps keep exactness through divs and skews.
    let m1 = Map::parse("{ A[i] -> B[i mod 6, floor(i/6)] : 0 <= i < 36 }").unwrap();
    let m2 = Map::parse("{ B[r, q] -> C[r + q] }").unwrap();
    let m3 = Map::parse("{ C[s] -> D[s mod 2] }").unwrap();
    let c = m1.apply_range(&m2).unwrap().apply_range(&m3).unwrap();
    for i in 0..36i64 {
        let s = (i % 6) + (i / 6);
        assert!(c.contains_point(&[i, s % 2]).unwrap(), "i={i}");
    }
    assert_eq!(c.card().unwrap(), 36);
}

#[test]
fn display_is_parseable_for_maps() {
    let m = Map::parse(
        "{ S[i, j] -> PE[i mod 4, j] : 0 <= i < 8 and 0 <= j < 2 or 0 <= i < 2 and 3 <= j < 5 }",
    )
    .unwrap();
    let re = Map::parse(&m.to_string()).unwrap();
    assert!(m.is_equal(&re).unwrap());
}

#[test]
fn huge_slope_pair_card_is_exact() {
    // y ≤ M·x with M = 2e18: y's derived bound overflows i64, so no slab
    // closed form applies — the generalized pair series must still return
    // the exact Σ (M·x + 1) without enumerating anything.
    const M: u128 = 2_000_000_000_000_000_000;
    let s = Set::parse("{ A[x, y] : 0 <= x <= 9 and 0 <= y and 2000000000000000000*x - y >= 0 }")
        .unwrap();
    assert_eq!(s.card().unwrap(), 45 * M + 10);
}

#[test]
fn card_overflow_is_reported_not_wrapped() {
    // The same series with x spanning [0, 2^62]: the total exceeds i128,
    // which must surface as a structured error, never a wrapped count.
    let s = Set::parse(
        "{ A[x, y] : 0 <= x <= 4611686018427387904 and 0 <= y \
         and 4611686018427387904*x - y >= 0 }",
    )
    .unwrap();
    assert!(
        matches!(s.card(), Err(Error::Overflow)),
        "expected Overflow, got {:?}",
        s.card()
    );
}

#[test]
fn wide_symmetric_bounds_not_empty() {
    // Regression: simplify()'s opposite-pair contradiction check summed the
    // two constants in i64, wrapping 2^62 + 2^62 negative and reporting
    // this obviously inhabited set as empty in release builds.
    let s = Set::parse("{ A[x] : -4611686018427387904 <= x <= 4611686018427387904 }").unwrap();
    assert!(!s.is_empty().unwrap());
    assert_eq!(s.card().unwrap(), (1u128 << 63) + 1);
}
