//! Differential enumeration oracle for the counting engine.
//!
//! `count_by_points` re-counts a set by scanning its bounding box with
//! `contains_point` only — a code path independent of the closed-form
//! counters, the recursive enumerator, *and* the memo layer — so any fast
//! path that silently diverges from enumeration fails here. Every property
//! runs once with the cache disabled and once against a warm cache (the
//! same switch `TENET_ISL_CACHE=off` flips), so the memo layer is
//! differentially tested too.

use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use tenet_isl::{cache, fast_path_stats, Map, Set};

/// Brute-force point count over the bounding box `[lo, hi]^d`, using only
/// `contains_point`.
fn count_by_points(s: &Set, lo: i64, hi: i64) -> u128 {
    let d = s.n_dim();
    let mut count = 0u128;
    let mut point = vec![lo; d];
    loop {
        if s.contains_point(&point).unwrap() {
            count += 1;
        }
        let mut i = 0;
        loop {
            if i == d {
                return count;
            }
            point[i] += 1;
            if point[i] <= hi {
                break;
            }
            point[i] = lo;
            i += 1;
        }
    }
}

/// Serializes tests that toggle the global cache-enabled flag.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap()
}

/// Runs `f` with the cache disabled, then twice against an enabled cache
/// (second run replays from the tables); returns (cold, warm-hit).
fn with_and_without_cache<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = test_lock();
    cache::set_enabled(false);
    let cold = f();
    cache::clear();
    cache::set_enabled(true);
    let _warm_miss = f();
    let warm_hit = f();
    cache::set_enabled(true);
    (cold, warm_hit)
}

/// Text of a random box over `x0..x{d-1}` with bounds in `[-5, 8]`.
fn box_strategy(d: usize) -> BoxedStrategy<String> {
    proptest::collection::vec((-5i64..=8, -5i64..=8), d).prop_map(move |bounds| {
        let dims: Vec<String> = (0..bounds.len()).map(|i| format!("x{i}")).collect();
        let cons: Vec<String> = bounds
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                let (lo, hi) = (a.min(b), a.max(b));
                format!("{lo} <= x{i} and x{i} <= {hi}")
            })
            .collect();
        format!("{{ A[{}] : {} }}", dims.join(", "), cons.join(" and "))
    })
}

/// Appends `k` random slabs (window constraints on random directions) to a
/// box text: the multi-slab stack shapes of the new counter.
fn slab_stack_strategy(d: usize, k: usize) -> BoxedStrategy<String> {
    (
        box_strategy(d),
        proptest::collection::vec(
            (
                proptest::collection::vec(-3i64..=3, d),
                -12i64..=6,
                0i64..=16,
            ),
            k,
        ),
    )
        .prop_map(|(text, slabs)| {
            let mut t = text.trim_end_matches(" }").to_string();
            for (coefs, lo, width) in &slabs {
                let terms: Vec<String> = coefs
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c != 0)
                    .map(|(i, c)| format!("{c}*x{i}"))
                    .collect();
                if terms.is_empty() {
                    continue;
                }
                let e = terms.join(" + ");
                t.push_str(&format!(" and {lo} <= {e} and {e} <= {}", lo + width));
            }
            t.push_str(" }");
            t
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random box ∩ slab-stack shapes: `card` equals the enumeration
    /// oracle, cached and uncached.
    #[test]
    fn slab_stack_card_matches_oracle(text in slab_stack_strategy(3, 3)) {
        let (cold, warm) = with_and_without_cache(|| {
            Set::parse(&text).unwrap().card().unwrap()
        });
        let s = Set::parse(&text).unwrap();
        let oracle = count_by_points(&s, -6, 9);
        prop_assert_eq!(cold, oracle, "cold card vs oracle for {}", text);
        prop_assert_eq!(warm, oracle, "warm card vs oracle for {}", text);
    }

    /// Two-dimensional stacks hit the interval-collapse corners of the
    /// multi-slab split (every non-kept slab shares all variables).
    #[test]
    fn planar_slab_stack_card_matches_oracle(text in slab_stack_strategy(2, 2)) {
        let (cold, warm) = with_and_without_cache(|| {
            Set::parse(&text).unwrap().card().unwrap()
        });
        let s = Set::parse(&text).unwrap();
        let oracle = count_by_points(&s, -6, 9);
        prop_assert_eq!(cold, oracle, "cold card vs oracle for {}", text);
        prop_assert_eq!(warm, oracle, "warm card vs oracle for {}", text);
    }

    /// Random `fix` pinnings: pinning a dimension then counting agrees
    /// with the oracle of the pinned set (exercises the memoized fix).
    #[test]
    fn fixed_card_matches_oracle(
        text in slab_stack_strategy(3, 1),
        dim in 0usize..3,
        val in -6i64..=9,
    ) {
        let (cold, warm) = with_and_without_cache(|| {
            Set::parse(&text).unwrap().fix(dim, val).card().unwrap()
        });
        let fixed = Set::parse(&text).unwrap().fix(dim, val);
        let oracle = count_by_points(&fixed, -6, 9);
        prop_assert_eq!(cold, oracle, "cold fixed card for {} [x{}={}]", text, dim, val);
        prop_assert_eq!(warm, oracle, "warm fixed card for {} [x{}={}]", text, dim, val);
    }

    /// Random unions: the disjoint-decomposition count agrees with the
    /// oracle of the union.
    #[test]
    fn union_card_matches_oracle(
        a_text in slab_stack_strategy(2, 1),
        b_text in box_strategy(2),
    ) {
        let (cold, warm) = with_and_without_cache(|| {
            let a = Set::parse(&a_text).unwrap();
            let b = Set::parse(&b_text).unwrap();
            a.union(&b).unwrap().card().unwrap()
        });
        let u = Set::parse(&a_text)
            .unwrap()
            .union(&Set::parse(&b_text).unwrap())
            .unwrap();
        let oracle = count_by_points(&u, -6, 9);
        prop_assert_eq!(cold, oracle, "cold union card for {} ∪ {}", a_text, b_text);
        prop_assert_eq!(warm, oracle, "warm union card for {} ∪ {}", a_text, b_text);
    }

    /// `max_suffix_slice_card` (the bucketed utilization primitive)
    /// agrees with pinning every suffix value and counting separately.
    #[test]
    fn suffix_slice_max_matches_fix_loop(
        text in slab_stack_strategy(3, 1),
        split in 1usize..3,
    ) {
        let (cold, warm) = with_and_without_cache(|| {
            Set::parse(&text).unwrap().max_suffix_slice_card(split, 1 << 20).unwrap()
        });
        let s = Set::parse(&text).unwrap();
        let d = s.n_dim();
        // Reference: enumerate suffix assignments over the oracle window.
        let mut expect = 0u128;
        let mut suffix = vec![-6i64; d - split];
        'outer: loop {
            let mut fixed = s.clone();
            for (i, &v) in suffix.iter().enumerate() {
                fixed = fixed.fix(split + i, v);
            }
            expect = expect.max(count_by_points(&fixed, -6, 9));
            for s in suffix.iter_mut() {
                *s += 1;
                if *s <= 9 {
                    continue 'outer;
                }
                *s = -6;
            }
            break;
        }
        prop_assert_eq!(cold, expect, "cold slice max for {} split {}", text, split);
        prop_assert_eq!(warm, expect, "warm slice max for {} split {}", text, split);
    }
}

/// The k≥2 multi-slab closed form must actually be taken (not silently
/// fall back) and stay exact, for both the interval-collapse and the
/// kept-slab floor-sum shapes.
#[test]
fn multi_slab_fast_path_taken_and_exact() {
    let _guard = test_lock();
    cache::set_enabled(false); // force recomputation
    let shapes = [
        // Shared-support pair: every slab collapses to intervals.
        "{ A[x, y] : 0 <= x < 25 and 0 <= y < 25 \
         and 4 <= x + y and x + y <= 30 and -10 <= x - 2y and x - 2y <= 10 }",
        // Chain x+y, y+z: one kept slab closes with floor-sums.
        "{ A[x, y, z] : 0 <= x < 18 and 0 <= y < 18 and 0 <= z < 18 \
         and 5 <= x + y and x + y <= 24 and 3 <= y + z and y + z <= 27 }",
        // Three directions over three dims.
        "{ A[x, y, z] : 0 <= x < 12 and 0 <= y < 12 and 0 <= z < 12 \
         and 2 <= x + y and x + y <= 18 and 1 <= y + z and y + z <= 19 \
         and 0 <= x + z and x + z <= 16 }",
    ];
    for text in shapes {
        let before = fast_path_stats().multi_slab_counts;
        let s = Set::parse(text).unwrap();
        let card = s.card().unwrap();
        assert_eq!(card, count_by_points(&s, -1, 27), "{text}");
        assert!(
            fast_path_stats().multi_slab_counts > before,
            "multi-slab path not taken for {text}"
        );
    }
    cache::set_enabled(true);
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Locks the `Arc<Space>` refactor: structural hash and canonical `fmt`
/// output of parsed maps are unchanged across clone and memo round trips,
/// cached or not. These two values key the server's request dedup and its
/// bit-identical `/v1/analyze` responses.
#[test]
fn space_sharing_keeps_hash_and_fmt_stable() {
    let _guard = test_lock();
    let texts = [
        "{ S[i,j,k] -> ST[i mod 4, j mod 4, floor(i/4), floor(j/4), i mod 4 + j mod 4 + k] \
         : 0 <= i < 8 and 0 <= j < 8 and 0 <= k < 8 }",
        "{ S[i,j] -> PE[i + j] : 0 <= i < 5 and 0 <= j < 4 }",
        "{ S[i] -> T[i] : 0 <= i < 2 or 5 <= i < 9 }",
    ];
    for text in texts {
        cache::set_enabled(true);
        cache::clear();
        let m = Map::parse(text).unwrap();
        let h0 = hash_of(&m);
        let s0 = m.to_string();
        // Clones share the space; structure must be indistinguishable.
        let c = m.clone();
        assert_eq!(hash_of(&c), h0, "{text}");
        assert_eq!(c.to_string(), s0, "{text}");
        // Memo round trips (parse hit, reverse twice, card) must hand
        // back structurally identical relations.
        let again = Map::parse(text).unwrap();
        assert_eq!(hash_of(&again), h0, "parse memo round trip: {text}");
        assert_eq!(again.to_string(), s0, "parse memo round trip: {text}");
        let rr = m.reverse().reverse();
        assert_eq!(rr, m, "reverse round trip: {text}");
        assert_eq!(hash_of(&rr), h0, "reverse round trip: {text}");
        let _ = m.card().unwrap();
        assert_eq!(hash_of(&m), h0, "card must not disturb the map: {text}");
        // Uncached parse of the same text: same hash, same rendering.
        cache::set_enabled(false);
        let cold = Map::parse(text).unwrap();
        assert_eq!(hash_of(&cold), h0, "uncached parse: {text}");
        assert_eq!(cold.to_string(), s0, "uncached parse: {text}");
        cache::set_enabled(true);
    }
}
