//! Differential enumeration oracle for the counting engine.
//!
//! `count_by_points` re-counts a set by scanning its bounding box with
//! `contains_point` only — a code path independent of the closed-form
//! counters, the recursive enumerator, *and* the memo layer — so any fast
//! path that silently diverges from enumeration fails here. Every property
//! runs once with the cache disabled and once against a warm cache (the
//! same switch `TENET_ISL_CACHE=off` flips), so the memo layer is
//! differentially tested too.

use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use tenet_isl::{cache, CountStats, CounterHandle, Map, Set};

/// Brute-force point count over the bounding box `[lo, hi]^d`, using only
/// `contains_point`.
fn count_by_points(s: &Set, lo: i64, hi: i64) -> u128 {
    let d = s.n_dim();
    let mut count = 0u128;
    let mut point = vec![lo; d];
    loop {
        if s.contains_point(&point).unwrap() {
            count += 1;
        }
        let mut i = 0;
        loop {
            if i == d {
                return count;
            }
            point[i] += 1;
            if point[i] <= hi {
                break;
            }
            point[i] = lo;
            i += 1;
        }
    }
}

/// Serializes tests that toggle the global cache-enabled flag.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap()
}

/// Runs `f` with the cache disabled, then twice against an enabled cache
/// (second run replays from the tables); returns (cold, warm-hit).
fn with_and_without_cache<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = test_lock();
    cache::set_enabled(false);
    let cold = f();
    cache::clear();
    cache::set_enabled(true);
    let _warm_miss = f();
    let warm_hit = f();
    cache::set_enabled(true);
    (cold, warm_hit)
}

/// Text of a random box over `x0..x{d-1}` with bounds in `[-5, 8]`.
fn box_strategy(d: usize) -> BoxedStrategy<String> {
    proptest::collection::vec((-5i64..=8, -5i64..=8), d).prop_map(move |bounds| {
        let dims: Vec<String> = (0..bounds.len()).map(|i| format!("x{i}")).collect();
        let cons: Vec<String> = bounds
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                let (lo, hi) = (a.min(b), a.max(b));
                format!("{lo} <= x{i} and x{i} <= {hi}")
            })
            .collect();
        format!("{{ A[{}] : {} }}", dims.join(", "), cons.join(" and "))
    })
}

/// Appends `k` random slabs (window constraints on random directions) to a
/// box text: the multi-slab stack shapes of the new counter.
fn slab_stack_strategy(d: usize, k: usize) -> BoxedStrategy<String> {
    (
        box_strategy(d),
        proptest::collection::vec(
            (
                proptest::collection::vec(-3i64..=3, d),
                -12i64..=6,
                0i64..=16,
            ),
            k,
        ),
    )
        .prop_map(|(text, slabs)| {
            let mut t = text.trim_end_matches(" }").to_string();
            for (coefs, lo, width) in &slabs {
                let terms: Vec<String> = coefs
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c != 0)
                    .map(|(i, c)| format!("{c}*x{i}"))
                    .collect();
                if terms.is_empty() {
                    continue;
                }
                let e = terms.join(" + ");
                t.push_str(&format!(" and {lo} <= {e} and {e} <= {}", lo + width));
            }
            t.push_str(" }");
            t
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random box ∩ slab-stack shapes: `card` equals the enumeration
    /// oracle, cached and uncached.
    #[test]
    fn slab_stack_card_matches_oracle(text in slab_stack_strategy(3, 3)) {
        let (cold, warm) = with_and_without_cache(|| {
            Set::parse(&text).unwrap().card().unwrap()
        });
        let s = Set::parse(&text).unwrap();
        let oracle = count_by_points(&s, -6, 9);
        prop_assert_eq!(cold, oracle, "cold card vs oracle for {}", text);
        prop_assert_eq!(warm, oracle, "warm card vs oracle for {}", text);
    }

    /// Two-dimensional stacks hit the interval-collapse corners of the
    /// multi-slab split (every non-kept slab shares all variables).
    #[test]
    fn planar_slab_stack_card_matches_oracle(text in slab_stack_strategy(2, 2)) {
        let (cold, warm) = with_and_without_cache(|| {
            Set::parse(&text).unwrap().card().unwrap()
        });
        let s = Set::parse(&text).unwrap();
        let oracle = count_by_points(&s, -6, 9);
        prop_assert_eq!(cold, oracle, "cold card vs oracle for {}", text);
        prop_assert_eq!(warm, oracle, "warm card vs oracle for {}", text);
    }

    /// Random `fix` pinnings: pinning a dimension then counting agrees
    /// with the oracle of the pinned set (exercises the memoized fix).
    #[test]
    fn fixed_card_matches_oracle(
        text in slab_stack_strategy(3, 1),
        dim in 0usize..3,
        val in -6i64..=9,
    ) {
        let (cold, warm) = with_and_without_cache(|| {
            Set::parse(&text).unwrap().fix(dim, val).card().unwrap()
        });
        let fixed = Set::parse(&text).unwrap().fix(dim, val);
        let oracle = count_by_points(&fixed, -6, 9);
        prop_assert_eq!(cold, oracle, "cold fixed card for {} [x{}={}]", text, dim, val);
        prop_assert_eq!(warm, oracle, "warm fixed card for {} [x{}={}]", text, dim, val);
    }

    /// Random unions: the disjoint-decomposition count agrees with the
    /// oracle of the union.
    #[test]
    fn union_card_matches_oracle(
        a_text in slab_stack_strategy(2, 1),
        b_text in box_strategy(2),
    ) {
        let (cold, warm) = with_and_without_cache(|| {
            let a = Set::parse(&a_text).unwrap();
            let b = Set::parse(&b_text).unwrap();
            a.union(&b).unwrap().card().unwrap()
        });
        let u = Set::parse(&a_text)
            .unwrap()
            .union(&Set::parse(&b_text).unwrap())
            .unwrap();
        let oracle = count_by_points(&u, -6, 9);
        prop_assert_eq!(cold, oracle, "cold union card for {} ∪ {}", a_text, b_text);
        prop_assert_eq!(warm, oracle, "warm union card for {} ∪ {}", a_text, b_text);
    }

    /// `max_suffix_slice_card` (the bucketed utilization primitive)
    /// agrees with pinning every suffix value and counting separately.
    #[test]
    fn suffix_slice_max_matches_fix_loop(
        text in slab_stack_strategy(3, 1),
        split in 1usize..3,
    ) {
        let (cold, warm) = with_and_without_cache(|| {
            Set::parse(&text).unwrap().max_suffix_slice_card(split, 1 << 20).unwrap()
        });
        let s = Set::parse(&text).unwrap();
        let d = s.n_dim();
        // Reference: enumerate suffix assignments over the oracle window.
        let mut expect = 0u128;
        let mut suffix = vec![-6i64; d - split];
        'outer: loop {
            let mut fixed = s.clone();
            for (i, &v) in suffix.iter().enumerate() {
                fixed = fixed.fix(split + i, v);
            }
            expect = expect.max(count_by_points(&fixed, -6, 9));
            for s in suffix.iter_mut() {
                *s += 1;
                if *s <= 9 {
                    continue 'outer;
                }
                *s = -6;
            }
            break;
        }
        prop_assert_eq!(cold, expect, "cold slice max for {} split {}", text, split);
        prop_assert_eq!(warm, expect, "warm slice max for {} split {}", text, split);
    }
}

/// Counts `text` with the cache off while a scoped [`CounterHandle`] is
/// attached, returning the card together with the handle's per-kind
/// dispatch stats. Unlike the process-global [`tenet_isl::fast_path_stats`],
/// the handle only sees this thread's dispatches, so the assertions stay
/// exact when the test harness runs other counting tests in parallel.
fn card_with_dispatch(text: &str) -> (u128, CountStats) {
    let _guard = test_lock();
    cache::set_enabled(false);
    let handle = CounterHandle::new();
    let card = {
        let _attached = handle.attach();
        Set::parse(text).unwrap().card().unwrap()
    };
    cache::set_enabled(true);
    (card, handle.fast_path_stats())
}

/// The k≥2 multi-slab closed form must actually be taken (not silently
/// fall back) and stay exact, for both the interval-collapse and the
/// kept-slab floor-sum shapes.
#[test]
fn multi_slab_fast_path_taken_and_exact() {
    let shapes = [
        // Shared-support pair: every slab collapses to intervals.
        "{ A[x, y] : 0 <= x < 25 and 0 <= y < 25 \
         and 4 <= x + y and x + y <= 30 and -10 <= x - 2y and x - 2y <= 10 }",
        // Chain x+y, y+z: one kept slab closes with floor-sums.
        "{ A[x, y, z] : 0 <= x < 18 and 0 <= y < 18 and 0 <= z < 18 \
         and 5 <= x + y and x + y <= 24 and 3 <= y + z and y + z <= 27 }",
        // Three directions over three dims.
        "{ A[x, y, z] : 0 <= x < 12 and 0 <= y < 12 and 0 <= z < 12 \
         and 2 <= x + y and x + y <= 18 and 1 <= y + z and y + z <= 19 \
         and 0 <= x + z and x + z <= 16 }",
    ];
    for text in shapes {
        let (card, stats) = card_with_dispatch(text);
        let s = Set::parse(text).unwrap();
        assert_eq!(card, count_by_points(&s, -1, 27), "{text}");
        assert!(
            stats.multi_slab_counts + stats.coupled_slab_counts > 0,
            "multi-slab path not taken for {text}: {stats:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Seeded generative corpus
//
// A hand-rolled splitmix64 stream (not proptest) drives these so a failing
// case reproduces exactly from the seed printed in the panic message:
//
//     TENET_ORACLE_SEED=0x1234 cargo test -p tenet-isl --test oracle
//
// Five shape classes — window, box, slab, coupled-slab, pair-chain — are
// generated over 1–5 dimensions with the bounding window shrunk as the
// dimension grows (the brute-force oracle scans the full window). Every
// case checks `card` against `count_by_points` cold (cache off) and warm
// (second run against populated tables). `TENET_ORACLE_DEEP=1` grows the
// corpus from 64 to 500 cases per class (the CI oracle-deep job).
// ---------------------------------------------------------------------------

/// splitmix64: tiny, seedable, and identical on every platform.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// A nonzero coefficient in `[-bound, bound]`.
    fn coef(&mut self, bound: i64) -> i64 {
        loop {
            let c = self.range(-bound, bound);
            if c != 0 {
                return c;
            }
        }
    }
}

fn corpus_seed() -> u64 {
    match std::env::var("TENET_ORACLE_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x") {
                Some(h) => u64::from_str_radix(h, 16).ok(),
                None => v.parse().ok(),
            };
            parsed.unwrap_or_else(|| panic!("unparseable TENET_ORACLE_SEED: {v:?}"))
        }
        Err(_) => 0xC0FF_EE5E_EDC0_FFEE,
    }
}

fn corpus_cases() -> usize {
    match std::env::var("TENET_ORACLE_DEEP") {
        Ok(v) if !v.is_empty() && v != "0" => 500,
        _ => 64,
    }
}

/// Brute-force window per dimension count: higher dimensions scan a
/// smaller box so the oracle stays cheap (7^5 points at d = 5).
fn window_for(d: usize) -> (i64, i64) {
    match d {
        0..=2 => (-6, 9),
        3 => (-4, 7),
        4 => (-3, 5),
        _ => (-2, 4),
    }
}

/// Random box text over `d` dims with bounds inside the oracle window.
/// One case in 16 deliberately inverts a dimension's bounds to cover the
/// empty-set corners of every fast path.
fn gen_box(rng: &mut Rng, d: usize, wlo: i64, whi: i64) -> String {
    let invert = if rng.below(16) == 0 {
        Some(rng.below(d as u64) as usize)
    } else {
        None
    };
    let dims: Vec<String> = (0..d).map(|i| format!("x{i}")).collect();
    let cons: Vec<String> = (0..d)
        .map(|i| {
            let a = rng.range(wlo, whi);
            let b = rng.range(wlo, whi);
            let (mut lo, mut hi) = (a.min(b), a.max(b));
            if invert == Some(i) && lo != hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            format!("{lo} <= x{i} and x{i} <= {hi}")
        })
        .collect();
    format!("{{ A[{}] : {} }}", dims.join(", "), cons.join(" and "))
}

/// Appends extra `and …` constraints to a box text.
fn with_extra(base: String, extra: &[String]) -> String {
    let mut t = base.trim_end_matches(" }").to_string();
    for e in extra {
        t.push_str(" and ");
        t.push_str(e);
    }
    t.push_str(" }");
    t
}

/// A linear expression over a subset of the dims (at least one term).
fn gen_dir(rng: &mut Rng, dims: &[usize]) -> String {
    let k = 1 + rng.below(dims.len() as u64) as usize;
    let terms: Vec<String> = dims[..k]
        .iter()
        .map(|&v| format!("{}*x{v}", rng.coef(3)))
        .collect();
    terms.join(" + ")
}

/// Slab constraint `lo <= e <= lo + width` (or a single halfspace).
fn gen_slab_on(rng: &mut Rng, e: &str) -> String {
    let lo = rng.range(-12, 6);
    if rng.below(4) == 0 {
        format!("{e} <= {}", lo + rng.range(0, 16))
    } else {
        format!("{lo} <= {e} and {e} <= {}", lo + rng.range(0, 16))
    }
}

fn gen_window_case(rng: &mut Rng, d: usize, wlo: i64, whi: i64) -> String {
    let base = gen_box(rng, d, wlo, whi);
    let n = 1 + rng.below(2);
    let extra: Vec<String> = (0..n)
        .map(|_| {
            let terms: Vec<String> = (0..d)
                .filter_map(|v| {
                    let c = rng.range(0, 3);
                    (c != 0 || v == 0).then(|| format!("{}*x{v}", c.max(1)))
                })
                .collect();
            let m = rng.range(2, 5);
            let r = rng.range(0, m - 1);
            format!("({}) mod {m} <= {r}", terms.join(" + "))
        })
        .collect();
    with_extra(base, &extra)
}

fn gen_slab_case(rng: &mut Rng, d: usize, wlo: i64, whi: i64) -> String {
    let base = gen_box(rng, d, wlo, whi);
    let dims: Vec<usize> = (0..d).collect();
    let e = gen_dir(rng, &dims);
    let slab = gen_slab_on(rng, &e);
    with_extra(base, &[slab])
}

/// Two-plus slab directions, half the time on disjoint variable subsets
/// (the coupled-slab split where both slabs survive the pinning).
fn gen_coupled_case(rng: &mut Rng, d: usize, wlo: i64, whi: i64) -> String {
    let base = gen_box(rng, d, wlo, whi);
    let all: Vec<usize> = (0..d).collect();
    let mut extra = Vec::new();
    if d >= 4 && rng.below(2) == 0 {
        let cut = d / 2;
        let (e1, e2) = (gen_dir(rng, &all[..cut]), gen_dir(rng, &all[cut..]));
        extra.push(gen_slab_on(rng, &e1));
        extra.push(gen_slab_on(rng, &e2));
    } else {
        let k = 2 + rng.below(2);
        for _ in 0..k {
            let e = gen_dir(rng, &all);
            extra.push(gen_slab_on(rng, &e));
        }
    }
    with_extra(base, &extra)
}

/// A random forest of two-variable rows: each dim optionally links back
/// to an earlier dim with a slab or halfspace on `a*xi + b*xj`.
fn gen_chain_case(rng: &mut Rng, d: usize, wlo: i64, whi: i64) -> String {
    let base = gen_box(rng, d, wlo, whi);
    let mut extra = Vec::new();
    for j in 1..d {
        if rng.below(4) < 3 {
            let i = rng.below(j as u64) as usize;
            let e = format!("{}*x{i} + {}*x{j}", rng.coef(3), rng.coef(3));
            extra.push(gen_slab_on(rng, &e));
        }
    }
    with_extra(base, &extra)
}

/// Differentially checks every generated case: `card` (cold and warm)
/// against the `contains_point` scan of the full window.
fn run_corpus(class: &str, min_d: usize, gen: impl Fn(&mut Rng, usize, i64, i64) -> String) {
    let seed = corpus_seed();
    let cases = corpus_cases();
    let mut h = DefaultHasher::new();
    class.hash(&mut h);
    let mut rng = Rng(seed ^ h.finish());
    for case in 0..cases {
        let d = rng.range(min_d as i64, 5) as usize;
        let (wlo, whi) = window_for(d);
        let text = gen(&mut rng, d, wlo, whi);
        let s = Set::parse(&text)
            .unwrap_or_else(|e| panic!("[{class} seed={seed:#x} case={case}] parse {text}: {e}"));
        let oracle = count_by_points(&s, wlo, whi);
        let (cold, warm) = with_and_without_cache(|| {
            Set::parse(&text)
                .unwrap()
                .card()
                .unwrap_or_else(|e| panic!("[{class} seed={seed:#x} case={case}] card {text}: {e}"))
        });
        assert_eq!(
            cold, oracle,
            "[{class} seed={seed:#x} case={case}] cold card vs oracle for {text}"
        );
        assert_eq!(
            warm, oracle,
            "[{class} seed={seed:#x} case={case}] warm card vs oracle for {text}"
        );
    }
}

#[test]
fn corpus_box() {
    run_corpus("box", 1, gen_box);
}

#[test]
fn corpus_window() {
    run_corpus("window", 1, gen_window_case);
}

#[test]
fn corpus_slab() {
    run_corpus("slab", 2, gen_slab_case);
}

#[test]
fn corpus_coupled_slab() {
    run_corpus("coupled-slab", 2, gen_coupled_case);
}

#[test]
fn corpus_pair_chain() {
    run_corpus("pair-chain", 2, gen_chain_case);
}

// ---------------------------------------------------------------------------
// i64-extreme constants: the counters must either produce the exact value
// or report a structured error (Overflow / TooComplex / Unbounded) — never
// panic, wrap, or disagree between cold and warm runs.
// ---------------------------------------------------------------------------

#[test]
fn extreme_constants_known_values() {
    const M: u128 = 2_000_000_000_000_000_000;
    let cases: [(&str, u128); 4] = [
        // Full symmetric i64-width interval: 2^64 - 1 points.
        (
            "{ A[x] : -9223372036854775807 <= x <= 9223372036854775807 }",
            u64::MAX as u128,
        ),
        // Near-max box times a small factor.
        (
            "{ A[x, y] : 0 <= x <= 9223372036854775806 and 0 <= y <= 1 }",
            ((1u128 << 63) - 1) * 2,
        ),
        // Huge-slope pair series: y ≤ M·x over x ∈ [0, 9] sums to 45M+10,
        // far beyond any enumerable range.
        (
            "{ A[x, y] : 0 <= x <= 9 and 0 <= y and 2000000000000000000*x - y >= 0 }",
            45 * M + 10,
        ),
        // Triangle with a 2^31-wide leg: closed form, no enumeration.
        (
            "{ A[x, y] : 0 <= x <= 2147483647 and 0 <= y and x - y >= 0 }",
            (1u128 << 31) * ((1u128 << 31) + 1) / 2,
        ),
    ];
    for (text, expect) in cases {
        let (cold, warm) = with_and_without_cache(|| Set::parse(text).unwrap().card().unwrap());
        assert_eq!(cold, expect, "cold {text}");
        assert_eq!(warm, expect, "warm {text}");
    }
}

#[test]
fn extreme_constants_never_panic_and_agree() {
    let seed = corpus_seed();
    let mut rng = Rng(seed ^ 0xE17E_4E5E);
    let cases = corpus_cases().min(200);
    let extremes: [i64; 8] = [
        i64::MAX,
        i64::MIN + 1,
        1 << 62,
        -(1 << 62),
        (1 << 62) + 12_345,
        i64::MAX - 1,
        1 << 45,
        -(1 << 45),
    ];
    for case in 0..cases {
        let d = rng.range(1, 3) as usize;
        let dims: Vec<String> = (0..d).map(|i| format!("x{i}")).collect();
        let mut cons = Vec::new();
        for i in 0..d {
            // Either a tiny window or an astronomically wide one: wide
            // ranges must be rejected structurally (TooComplex/Overflow),
            // not ground through enumeration.
            if rng.below(2) == 0 {
                let lo = rng.range(-4, 2);
                cons.push(format!("{lo} <= x{i} and x{i} <= {}", lo + rng.range(0, 5)));
            } else {
                let hi = extremes[rng.below(8) as usize].max(2);
                cons.push(format!("0 <= x{i} and x{i} <= {hi}"));
            }
        }
        if d >= 2 {
            let a = extremes[rng.below(8) as usize];
            cons.push(format!("{a}*x0 + {}*x1 <= {a}", rng.coef(3)));
        }
        let text = format!("{{ A[{}] : {} }}", dims.join(", "), cons.join(" and "));
        let (cold, warm) = with_and_without_cache(|| Set::parse(&text).unwrap().card());
        assert_eq!(
            cold, warm,
            "[extreme seed={seed:#x} case={case}] cold and warm must agree for {text}"
        );
    }
}

// ---------------------------------------------------------------------------
// Dispatch proofs: one deterministic shape per fast-path kind, asserted
// through a scoped CounterHandle so the counters cannot be perturbed by
// concurrent tests.
// ---------------------------------------------------------------------------

#[test]
fn box_dispatch_taken() {
    // Bounded boxes collapse through the functional-window drop, so the
    // residual-box branch is exercised by feasibility probes on one-sided
    // boxes instead (unbounded vars can't be window-dropped, and limited
    // counts saturate through `count_box`).
    let _guard = test_lock();
    cache::set_enabled(false);
    let handle = CounterHandle::new();
    {
        let _attached = handle.attach();
        let s = Set::parse("{ A[x, y] : x >= 0 and y >= 0 }").unwrap();
        assert!(!s.is_empty().unwrap());
    }
    cache::set_enabled(true);
    let stats = handle.fast_path_stats();
    assert!(stats.box_counts > 0, "box path not taken: {stats:?}");
}

#[test]
fn window_dispatch_taken() {
    // A plain bounded box is the canonical functional-window shape: each
    // variable's two rows sandwich a width-w window with m = 1, so the
    // whole box collapses through the drop as a multiplicative factor.
    let text = "{ A[x, y] : 0 <= x < 12 and 0 <= y < 12 }";
    let (card, stats) = card_with_dispatch(text);
    assert_eq!(card, 144);
    assert!(stats.window_counts > 0, "window path not taken: {stats:?}");
}

#[test]
fn slab_dispatch_taken() {
    let text = "{ A[x, y] : 0 <= x < 10 and 0 <= y < 10 and 3 <= x + y and x + y <= 11 }";
    let (card, stats) = card_with_dispatch(text);
    let s = Set::parse(text).unwrap();
    assert_eq!(card, count_by_points(&s, -1, 10));
    assert!(stats.slab_counts > 0, "slab path not taken: {stats:?}");
}

#[test]
fn coupled_slab_dispatch_taken() {
    // Disjoint supports: both slabs survive pinning untouched.
    let disjoint = "{ A[x, y, z, w] : 0 <= x < 8 and 0 <= y < 8 and 0 <= z < 8 and 0 <= w < 8 \
                    and 3 <= x + y and x + y <= 10 and 2 <= z + w and z + w <= 12 }";
    // Shared variable: pinning x decouples the two three-term slabs.
    let shared = "{ A[v, w, x, y, z] : 0 <= v < 8 and 0 <= w < 8 and 0 <= x < 8 \
                  and 0 <= y < 8 and 0 <= z < 8 \
                  and 3 <= v + w + x and v + w + x <= 14 \
                  and 2 <= x + y + z and x + y + z <= 15 }";
    for text in [disjoint, shared] {
        let (card, stats) = card_with_dispatch(text);
        let s = Set::parse(text).unwrap();
        assert_eq!(card, count_by_points(&s, -1, 8), "{text}");
        assert!(
            stats.coupled_slab_counts > 0,
            "coupled-slab path not taken for {text}: {stats:?}"
        );
    }
}

#[test]
fn pair_series_dispatch_taken() {
    // y's upper bound (M·9 ≈ 1.8e19) exceeds i64, so the slab path cannot
    // box it and the two-variable floor-sum series must close the count.
    const M: u128 = 2_000_000_000_000_000_000;
    let text = "{ A[x, y] : 0 <= x <= 9 and 0 <= y and 2000000000000000000*x - y >= 0 }";
    let (card, stats) = card_with_dispatch(text);
    assert_eq!(card, 45 * M + 10);
    assert!(
        stats.pair_chain_counts > 0,
        "pair-series path not taken: {stats:?}"
    );
}

#[test]
fn pair_chain_dispatch_taken() {
    // Monotone 5-chain over [0, 1999]: the multi-slab odometer would pin
    // two shared variables (2000² assignments > its work cap) so the
    // value-table DP must take over. Count is multichoose(2000, 5).
    let text = "{ A[a, b, c, d, e] : 0 <= a <= 1999 and 0 <= b <= 1999 and 0 <= c <= 1999 \
                and 0 <= d <= 1999 and 0 <= e <= 1999 \
                and 0 <= a - b and 0 <= b - c and 0 <= c - d and 0 <= d - e }";
    let (card, stats) = card_with_dispatch(text);
    let expect: u128 = 2004 * 2003 * 2002 * 2001 * 2000 / 120;
    assert_eq!(card, expect);
    assert!(
        stats.pair_chain_counts > 0,
        "pair-chain DP not taken: {stats:?}"
    );
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Locks the `Arc<Space>` refactor: structural hash and canonical `fmt`
/// output of parsed maps are unchanged across clone and memo round trips,
/// cached or not. These two values key the server's request dedup and its
/// bit-identical `/v1/analyze` responses.
#[test]
fn space_sharing_keeps_hash_and_fmt_stable() {
    let _guard = test_lock();
    let texts = [
        "{ S[i,j,k] -> ST[i mod 4, j mod 4, floor(i/4), floor(j/4), i mod 4 + j mod 4 + k] \
         : 0 <= i < 8 and 0 <= j < 8 and 0 <= k < 8 }",
        "{ S[i,j] -> PE[i + j] : 0 <= i < 5 and 0 <= j < 4 }",
        "{ S[i] -> T[i] : 0 <= i < 2 or 5 <= i < 9 }",
    ];
    for text in texts {
        cache::set_enabled(true);
        cache::clear();
        let m = Map::parse(text).unwrap();
        let h0 = hash_of(&m);
        let s0 = m.to_string();
        // Clones share the space; structure must be indistinguishable.
        let c = m.clone();
        assert_eq!(hash_of(&c), h0, "{text}");
        assert_eq!(c.to_string(), s0, "{text}");
        // Memo round trips (parse hit, reverse twice, card) must hand
        // back structurally identical relations.
        let again = Map::parse(text).unwrap();
        assert_eq!(hash_of(&again), h0, "parse memo round trip: {text}");
        assert_eq!(again.to_string(), s0, "parse memo round trip: {text}");
        let rr = m.reverse().reverse();
        assert_eq!(rr, m, "reverse round trip: {text}");
        assert_eq!(hash_of(&rr), h0, "reverse round trip: {text}");
        let _ = m.card().unwrap();
        assert_eq!(hash_of(&m), h0, "card must not disturb the map: {text}");
        // Uncached parse of the same text: same hash, same rendering.
        cache::set_enabled(false);
        let cold = Map::parse(text).unwrap();
        assert_eq!(hash_of(&cold), h0, "uncached parse: {text}");
        assert_eq!(cold.to_string(), s0, "uncached parse: {text}");
        cache::set_enabled(true);
    }
}
