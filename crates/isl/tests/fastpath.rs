//! Equivalence property tests for the performance layer.
//!
//! Two families of guarantees are asserted here:
//!
//! 1. **Cache transparency** — every memoized operation returns results
//!    *bit-identical* to the uncached computation (same `Map` value, same
//!    `card`), across randomized relation shapes.
//! 2. **Closed-form exactness** — the counting shortcuts (axis-aligned
//!    boxes, box ∩ halfspace/slab prisms, functional mod/floor windows)
//!    agree with the recursive enumerator and with brute force over the
//!    bounding box.
//!
//! The generators deliberately concentrate on the shapes the fast paths
//! dispatch on, including degenerate and empty variants.

use proptest::prelude::*;
use tenet_isl::{cache, Map, Set};

/// Brute-force point count over a bounding box.
fn brute_count(s: &Set, lo: i64, hi: i64) -> u128 {
    let d = s.n_dim();
    let mut count = 0u128;
    let mut point = vec![lo; d];
    loop {
        if s.contains_point(&point).unwrap() {
            count += 1;
        }
        let mut i = 0;
        loop {
            if i == d {
                return count;
            }
            point[i] += 1;
            if point[i] <= hi {
                break;
            }
            point[i] = lo;
            i += 1;
        }
    }
}

/// Runs `f` once with the cache disabled and once enabled (cleared first),
/// returning both results for equivalence checks. Serialized so parallel
/// test threads cannot observe each other's enable/disable windows.
fn with_and_without_cache<T>(f: impl Fn() -> T) -> (T, T) {
    use std::sync::{Mutex, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let _guard = LOCK.get_or_init(|| Mutex::new(())).lock().unwrap();
    cache::set_enabled(false);
    let cold = f();
    cache::clear();
    cache::set_enabled(true);
    let warm_miss = f(); // populates the tables
    let warm_hit = f(); // must replay from the tables
    cache::set_enabled(true);
    drop(warm_miss);
    (cold, warm_hit)
}

/// Random box set text over `d` dims with bounds in a small window.
fn box_strategy(d: usize) -> BoxedStrategy<String> {
    let b = proptest::collection::vec((-6i64..=8, -6i64..=8), d);
    b.prop_map(move |bounds| {
        let dims: Vec<String> = (0..bounds.len()).map(|i| format!("x{i}")).collect();
        let mut text = format!("{{ A[{}] : ", dims.join(", "));
        let cons: Vec<String> = bounds
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                let (lo, hi) = (a.min(b), a.max(b));
                format!("{lo} <= x{i} and x{i} <= {hi}")
            })
            .collect();
        text.push_str(&cons.join(" and "));
        text.push_str(" }");
        text
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Boxes: closed-form count equals brute force.
    #[test]
    fn box_count_matches_brute_force(text in box_strategy(3)) {
        let s = Set::parse(&text).unwrap();
        prop_assert_eq!(s.card().unwrap(), brute_count(&s, -7, 9));
    }

    /// Simplex prisms (box ∩ one halfspace): closed form vs brute force.
    #[test]
    fn halfspace_count_matches_brute_force(
        text in box_strategy(3),
        coefs in proptest::collection::vec(-3i64..=3, 3),
        k in -10i64..=20,
    ) {
        let mut t = text.trim_end_matches(" }").to_string();
        let terms: Vec<String> = coefs
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0)
            .map(|(i, c)| format!("{c}*x{i}"))
            .collect();
        if !terms.is_empty() {
            t.push_str(&format!(" and {} <= {k}", terms.join(" + ")));
        }
        t.push_str(" }");
        let s = Set::parse(&t).unwrap();
        prop_assert_eq!(s.card().unwrap(), brute_count(&s, -7, 9), "{}", t);
    }

    /// Slabs (box ∩ two parallel halfspaces): closed form vs brute force.
    #[test]
    fn slab_count_matches_brute_force(
        text in box_strategy(3),
        coefs in proptest::collection::vec(-3i64..=3, 3),
        lo in -12i64..=6,
        width in 0i64..=14,
    ) {
        let mut t = text.trim_end_matches(" }").to_string();
        let terms: Vec<String> = coefs
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0)
            .map(|(i, c)| format!("{c}*x{i}"))
            .collect();
        if !terms.is_empty() {
            let e = terms.join(" + ");
            t.push_str(&format!(" and {lo} <= {e} and {e} <= {}", lo + width));
        }
        t.push_str(" }");
        let s = Set::parse(&t).unwrap();
        prop_assert_eq!(s.card().unwrap(), brute_count(&s, -7, 9), "{}", t);
    }

    /// Mod/floor lattice-coset shapes: functional-window elimination vs
    /// brute force.
    #[test]
    fn mod_coset_count_matches_brute_force(
        m in 2i64..=5,
        r in 0i64..=4,
        a in 1i64..=3,
        n in 4i64..=24,
    ) {
        let r = r % m;
        let text = format!(
            "{{ A[x, y] : 0 <= x < {n} and 0 <= y < {n} and ({a}*x + y) mod {m} <= {r} }}"
        );
        let s = Set::parse(&text).unwrap();
        prop_assert_eq!(s.card().unwrap(), brute_count(&s, -1, 24), "{}", text);
    }

    /// Quotient images (floor maps): range counting through divs.
    #[test]
    fn floor_image_count_matches_brute_force(
        m in 2i64..=6,
        n in 8i64..=40,
    ) {
        let f = Map::parse(&format!(
            "{{ S[i] -> Q[floor(i / {m}), i mod {m}] : 0 <= i < {n} }}"
        )).unwrap();
        prop_assert_eq!(f.card().unwrap(), n as u128);
        let rng = f.range().unwrap();
        // The image of [0, n) under (floor(i/m), i mod m) is a bijection.
        prop_assert_eq!(rng.card().unwrap(), n as u128);
    }
}

/// The full op suite, cached vs uncached, must agree bit-for-bit.
#[test]
fn cached_and_uncached_results_are_identical() {
    let shapes = [
        "{ S[i,j,k] -> ST[i mod 4, j mod 4, floor(i/4), floor(j/4), i mod 4 + j mod 4 + k] \
         : 0 <= i < 8 and 0 <= j < 8 and 0 <= k < 8 }",
        "{ S[i,j,k] -> A[i,k] : 0 <= i < 8 and 0 <= j < 8 and 0 <= k < 8 }",
        "{ S[i,j] -> PE[i + j] : 0 <= i < 5 and 0 <= j < 4 }",
    ];
    let (cold, warm) = with_and_without_cache(|| {
        let theta = Map::parse(shapes[0]).unwrap();
        let access = Map::parse(shapes[1]).unwrap();
        let skew = Map::parse(shapes[2]).unwrap();
        let rev = theta.reverse();
        let adf = rev.apply_range(&access).unwrap();
        let inter = adf.intersect(&adf).unwrap();
        let sub = adf.subtract(&inter).unwrap();
        let proj = adf.project_out_in(0, 2).unwrap();
        let skew_card = skew.card().unwrap();
        (
            rev,
            adf.clone(),
            inter,
            sub.card().unwrap(),
            proj,
            adf.card().unwrap(),
            skew_card,
            adf.is_empty().unwrap(),
        )
    });
    assert_eq!(cold.0, warm.0, "reverse must be cache-transparent");
    assert_eq!(cold.1, warm.1, "apply_range must be cache-transparent");
    assert_eq!(cold.2, warm.2, "intersect must be cache-transparent");
    assert_eq!(cold.3, warm.3, "subtract card must be cache-transparent");
    assert_eq!(cold.4, warm.4, "project must be cache-transparent");
    assert_eq!(cold.5, warm.5, "card must be cache-transparent");
    assert_eq!(cold.6, warm.6, "fast-path card must be cache-transparent");
    assert_eq!(cold.7, warm.7, "is_empty must be cache-transparent");
}

/// The PR 3 additions — `union`, `intersect_domain`, `intersect_range` —
/// must also be cache-transparent, including the bulky shapes that clear
/// `union`'s memo-weight gate.
#[test]
fn union_and_domain_range_intersections_are_cache_transparent() {
    // Multi-disjunct operands: each parse below yields several basic
    // maps once the mod/floor windows split, so the union carries enough
    // constraint rows to go through the memo (not the small-map bypass).
    let bulky_a = "{ S[i,j] -> PE[i mod 3, j mod 3] : 0 <= i < 9 and 0 <= j < 9 \
                   and (i + j) mod 2 <= 0 }";
    let bulky_b = "{ S[i,j] -> PE[i mod 3, j mod 3] : 0 <= i < 9 and 0 <= j < 9 \
                   and (i + 2j) mod 3 <= 1 }";
    let small_a = "{ S[i] -> T[i] : 0 <= i < 4 }";
    let small_b = "{ S[i] -> T[i] : 2 <= i < 7 }";
    let dom = "{ S[i, j] : 1 <= i < 6 and 0 <= j < 5 }";
    let rng = "{ PE[p, q] : 0 <= p < 2 and 0 <= q < 2 }";
    let (cold, warm) = with_and_without_cache(|| {
        let ba = Map::parse(bulky_a).unwrap();
        let bb = Map::parse(bulky_b).unwrap();
        let sa = Map::parse(small_a).unwrap();
        let sb = Map::parse(small_b).unwrap();
        let d = Set::parse(dom).unwrap();
        let r = Set::parse(rng).unwrap();
        let bulky_union = ba.union(&bb).unwrap();
        let small_union = sa.union(&sb).unwrap();
        let restricted_d = ba.intersect_domain(&d).unwrap();
        let restricted_r = ba.intersect_range(&r).unwrap();
        (
            bulky_union.clone(),
            bulky_union.card().unwrap(),
            small_union.clone(),
            small_union.card().unwrap(),
            restricted_d.clone(),
            restricted_d.card().unwrap(),
            restricted_r.clone(),
            restricted_r.card().unwrap(),
        )
    });
    assert_eq!(cold.0, warm.0, "bulky union must be cache-transparent");
    assert_eq!(cold.1, warm.1, "bulky union card");
    assert_eq!(cold.2, warm.2, "small union must be cache-transparent");
    assert_eq!(cold.3, warm.3, "small union card");
    assert_eq!(cold.4, warm.4, "intersect_domain must be cache-transparent");
    assert_eq!(cold.5, warm.5, "intersect_domain card");
    assert_eq!(cold.6, warm.6, "intersect_range must be cache-transparent");
    assert_eq!(cold.7, warm.7, "intersect_range card");
}

/// `intersect_domain` and `intersect_range` on the *same* (map, set) pair
/// are different operations; their memo entries must never cross.
#[test]
fn domain_and_range_intersections_do_not_share_memo_entries() {
    let m = Map::parse("{ S[i, j] -> PE[i + j, j] : 0 <= i < 6 and 0 <= j < 6 }").unwrap();
    let s = Set::parse("{ X[a, b] : 0 <= a < 2 and 0 <= b < 3 }").unwrap();
    cache::set_enabled(true);
    for _round in 0..2 {
        // Round 2 replays both from the memo; results must still differ.
        let by_domain = m.intersect_domain(&s).unwrap();
        let by_range = m.intersect_range(&s).unwrap();
        // Domain restriction: i < 2, j < 3 — six instances. Range
        // restriction: i + j < 2, j < 3 — only the three corner points.
        assert_eq!(by_domain.card().unwrap(), 6);
        assert_eq!(by_range.card().unwrap(), 3);
        assert_ne!(by_domain, by_range);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized union / intersect_domain / intersect_range equivalence:
    /// warm results (and cards) must be bit-identical to cold ones.
    #[test]
    fn union_and_restriction_cache_transparency_randomized(
        a_text in box_strategy(2),
        b_text in box_strategy(2),
        c_text in box_strategy(2),
    ) {
        let (cold, warm) = with_and_without_cache(|| {
            let a = Set::parse(&a_text).unwrap();
            let b = Set::parse(&b_text).unwrap();
            let c = Set::parse(&c_text).unwrap();
            let u = a.union(&b).unwrap();
            let m = Map::parse(
                "{ A[x0, x1] -> B[x0 + x1, x0 - x1] : -20 <= x0 <= 20 and -20 <= x1 <= 20 }",
            )
            .unwrap();
            let dom = m.intersect_domain(&u).unwrap();
            let rng = m.intersect_range(&c).unwrap();
            (
                u.card().unwrap(),
                dom.clone(),
                dom.card().unwrap(),
                rng.clone(),
                rng.card().unwrap(),
            )
        });
        prop_assert_eq!(cold.0, warm.0);
        prop_assert_eq!(cold.1, warm.1);
        prop_assert_eq!(cold.2, warm.2);
        prop_assert_eq!(cold.3, warm.3);
        prop_assert_eq!(cold.4, warm.4);
    }
}

/// Randomized cached-vs-uncached sweep over set algebra.
#[test]
fn cached_and_uncached_set_algebra_agree_randomized() {
    // Deterministic xorshift so failures reproduce.
    let mut state = 0x5DEECE66Du64;
    let mut next = move |n: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % n
    };
    for _case in 0..24 {
        let d = 2 + next(2) as usize;
        let mut cons = Vec::new();
        for i in 0..d {
            let lo = next(6) as i64 - 3;
            let hi = lo + next(8) as i64;
            cons.push(format!("{lo} <= x{i} and x{i} <= {hi}"));
        }
        if next(2) == 0 {
            let c0 = next(5) as i64 - 2;
            let c1 = next(5) as i64 - 2;
            if c0 != 0 || c1 != 0 {
                cons.push(format!("{c0}*x0 + {c1}*x1 <= {}", next(10) as i64));
            }
        }
        let dims: Vec<String> = (0..d).map(|i| format!("x{i}")).collect();
        let text = format!("{{ A[{}] : {} }}", dims.join(", "), cons.join(" and "));
        let (cold, warm) = with_and_without_cache(|| {
            let s = Set::parse(&text).unwrap();
            let card = s.card().unwrap();
            let shifted = s.intersect(&s).unwrap();
            (card, shifted.card().unwrap(), s.is_empty().unwrap())
        });
        assert_eq!(cold, warm, "mismatch for {text}");
    }
}

/// A cached `Set::parse` of a text must not make `Map::parse` of the same
/// text succeed (and vice versa): the parse memo is keyed per entry point.
#[test]
fn parse_memo_does_not_cross_entry_points() {
    let set_text = "{ Q[a, b] : 0 <= a < 3 and 0 <= b < 2 }";
    let map_text = "{ Q[a] -> R[a] : 0 <= a < 3 }";
    assert!(Set::parse(set_text).is_ok());
    assert!(
        Map::parse(set_text).is_err(),
        "set text must still be rejected by Map::parse after caching"
    );
    assert!(Map::parse(map_text).is_ok());
    assert!(
        Set::parse(map_text).is_err(),
        "map text must still be rejected by Set::parse after caching"
    );
}
