//! # tenet-sim
//!
//! A cycle-level spatial-architecture simulator: the golden reference the
//! reproduction uses in place of the Eyeriss / MAERI silicon measurements
//! of Figure 11, and an independent oracle validating the analytical
//! model's volume metrics (the simulator's cold-fetch count equals
//! `UniqueVolume` under the `Adjacent` reuse policy).

#![warn(missing_docs)]

mod engine;
mod expr;
mod trace;

pub use engine::{simulate, ReusePolicy, SimOptions, SimReport, TensorTraffic};
pub use expr::{compile, Expr};
pub use trace::{trace, PeActivity, StampSnapshot, Trace};
