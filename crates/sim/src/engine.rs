//! The cycle-level spatial-architecture simulator.
//!
//! Executes every loop instance at its scheduled (PE | T) spacetime-stamp,
//! modeling per-PE register files, inter-PE transfers over the configured
//! interconnect, and a bandwidth-limited scratchpad. It serves as the
//! golden reference for the accuracy study (Figure 11) — replacing the
//! Eyeriss/MAERI silicon numbers the paper used — and as an independent
//! oracle for the analytical model's `UniqueVolume` (see property tests).

use crate::expr::{compile, Expr};
use std::collections::{BTreeMap, HashMap};
use tenet_core::{ArchSpec, Dataflow, Error, Result, Role, TensorOp};

/// How the simulator decides whether a datum can be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReusePolicy {
    /// A datum is reusable only if it was *accessed* at the immediately
    /// preceding time-stamp (same PE) or at an interconnected neighbor —
    /// exactly the adjacency the analytical spacetime maps encode. With
    /// this policy the simulator's cold-fetch count equals the model's
    /// `UniqueVolume`.
    Adjacent,
    /// A datum remains reusable while it is resident in the register file
    /// (more optimistic than the analytical model; with finite register
    /// capacity, more realistic).
    Resident,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Register-file capacity per PE, in elements (`None` = unbounded).
    pub rf_capacity: Option<usize>,
    /// Reuse policy.
    pub policy: ReusePolicy,
    /// Hard cap on the number of loop instances simulated.
    pub max_instances: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            rf_capacity: None,
            policy: ReusePolicy::Adjacent,
            max_instances: 40_000_000,
        }
    }
}

/// Per-tensor traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TensorTraffic {
    /// Cold fetches from the scratchpad (the measured unique volume).
    pub scratchpad: u64,
    /// Same-PE reuse hits.
    pub temporal_hits: u64,
    /// Neighbor (interconnect) reuse hits.
    pub spatial_hits: u64,
    /// Distinct tensor elements ever touched (the measured footprint).
    pub footprint: u64,
}

/// The measured execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Distinct time-stamps executed.
    pub compute_cycles: u64,
    /// Extra cycles when each stamp must wait for its own fetches
    /// (no prefetching). With double buffering (the paper's assumption,
    /// Section V-B) fetches amortize instead; see [`SimReport::latency`].
    pub stall_cycles: u64,
    /// Scratchpad bandwidth the run was configured with.
    pub bandwidth: f64,
    /// MACs executed.
    pub macs: u64,
    /// Maximum PEs active in any stamp.
    pub max_active: u64,
    /// Average active PEs per stamp.
    pub avg_active: f64,
    /// Number of PEs in the array.
    pub pe_count: u64,
    /// Per-tensor traffic.
    pub tensors: BTreeMap<String, TensorTraffic>,
}

impl SimReport {
    /// Total latency in cycles under the paper's pipelining assumption
    /// (double buffering): compute and transfers overlap, so the run
    /// takes the maximum of compute time and total transfer time.
    pub fn latency(&self) -> u64 {
        let transfer = (self.scratchpad_total() as f64 / self.bandwidth.max(1.0)).ceil() as u64;
        self.compute_cycles.max(transfer)
    }

    /// Latency when every stamp stalls for its own fetches (no
    /// prefetching): an upper bound used for sensitivity studies.
    pub fn latency_unbuffered(&self) -> u64 {
        self.compute_cycles + self.stall_cycles
    }

    /// Measured average PE utilization.
    pub fn avg_utilization(&self) -> f64 {
        self.avg_active / self.pe_count as f64
    }

    /// Measured peak PE utilization.
    pub fn max_utilization(&self) -> f64 {
        self.max_active as f64 / self.pe_count as f64
    }

    /// Total scratchpad traffic (measured unique volume).
    pub fn scratchpad_total(&self) -> u64 {
        self.tensors.values().map(|t| t.scratchpad).sum()
    }

    /// Energy derived from the measured counters under `model`, with the
    /// same accounting as the analytical model (Section V): every access
    /// pays a register-file touch, spatial hits pay a NoC hop, cold
    /// fetches pay a scratchpad access, and each distinct element pays a
    /// DRAM access to reach the scratchpad once.
    pub fn energy(&self, model: &tenet_core::EnergyModel) -> tenet_core::Energy {
        let mut register = 0.0;
        let mut noc = 0.0;
        let mut scratchpad = 0.0;
        let mut dram = 0.0;
        for t in self.tensors.values() {
            let total = t.scratchpad + t.temporal_hits + t.spatial_hits;
            register += total as f64 * model.register;
            noc += t.spatial_hits as f64 * model.noc_hop;
            scratchpad += t.scratchpad as f64 * model.scratchpad;
            dram += t.footprint as f64 * model.dram;
        }
        tenet_core::Energy {
            compute: self.macs as f64 * model.mac,
            register,
            noc,
            scratchpad,
            dram,
        }
    }
}

type Key = (u16, Vec<i64>); // (tensor id, element index)

/// Last two access stamps of one register-file entry. Two are needed: a
/// neighbor checking "was this accessed at stamp s-1" must still see that
/// evidence after the source re-accesses the datum at stamp s.
#[derive(Clone, Copy)]
struct Entry {
    last: u64,
    prev: u64,
}

impl Entry {
    fn touch(&mut self, stamp: u64) {
        if stamp != self.last {
            self.prev = self.last;
            self.last = stamp;
        }
    }

    fn accessed_at(&self, stamp: u64) -> bool {
        self.last == stamp || self.prev == stamp
    }
}

#[derive(Default)]
struct RegFile {
    /// Element -> its last two access stamps.
    entries: HashMap<Key, Entry>,
}

/// Records an access to `key` at `stamp` in the register file.
fn touch(rf: &mut RegFile, key: Key, stamp: u64) {
    rf.entries
        .entry(key)
        .and_modify(|e| e.touch(stamp))
        .or_insert(Entry {
            last: stamp,
            prev: u64::MAX,
        });
}

/// Runs the simulation.
///
/// # Errors
///
/// Fails when the workload exceeds `max_instances`, an expression cannot
/// be compiled, or the dataflow maps an instance outside the PE array.
pub fn simulate(
    op: &TensorOp,
    df: &Dataflow,
    arch: &ArchSpec,
    options: &SimOptions,
) -> Result<SimReport> {
    let n = op.instances()?;
    if n > options.max_instances as u128 {
        return Err(Error::Invalid(format!(
            "workload has {n} instances, above the simulator cap {}",
            options.max_instances
        )));
    }
    let space: Vec<Expr> = df
        .space_exprs()
        .iter()
        .map(|e| compile(e, op))
        .collect::<Result<_>>()?;
    let time: Vec<Expr> = df
        .time_exprs()
        .iter()
        .map(|e| compile(e, op))
        .collect::<Result<_>>()?;
    if space.len() != arch.pe_dims.len() {
        return Err(Error::Invalid(
            "dataflow space dims do not match the PE array".into(),
        ));
    }
    // Tensor accesses compiled once; tensors numbered.
    let mut tensor_ids: Vec<(String, Role)> = Vec::new();
    let mut accesses: Vec<(u16, Vec<Expr>)> = Vec::new();
    for a in op.accesses() {
        let id = match tensor_ids.iter().position(|(n, _)| *n == a.tensor) {
            Some(i) => i as u16,
            None => {
                tensor_ids.push((a.tensor.clone(), a.role));
                (tensor_ids.len() - 1) as u16
            }
        };
        let exprs: Vec<Expr> = a
            .exprs
            .iter()
            .map(|e| compile(e, op))
            .collect::<Result<_>>()?;
        accesses.push((id, exprs));
    }

    // Build the schedule: time-stamp -> [(pe linear id, instance point)].
    let dims = op.dims();
    let mut schedule: BTreeMap<Vec<i64>, Vec<(usize, Vec<i64>)>> = BTreeMap::new();
    let mut point: Vec<i64> = dims.iter().map(|d| d.lo).collect();
    let pe_strides: Vec<i64> = {
        let mut s = vec![1i64; arch.pe_dims.len()];
        for i in (0..arch.pe_dims.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * arch.pe_dims[i + 1];
        }
        s
    };
    let pe_count: i64 = arch.pe_dims.iter().product();
    'outer: loop {
        let t: Vec<i64> = time.iter().map(|e| e.eval(&point)).collect();
        let mut pe_lin: i64 = 0;
        for (i, e) in space.iter().enumerate() {
            let c = e.eval(&point);
            if c < 0 || c >= arch.pe_dims[i] {
                return Err(Error::Invalid(format!(
                    "instance {point:?} maps to out-of-bounds PE coordinate {c} in dim {i}"
                )));
            }
            pe_lin += c * pe_strides[i];
        }
        schedule
            .entry(t)
            .or_default()
            .push((pe_lin as usize, point.clone()));
        // Odometer over the iteration domain.
        let mut d = dims.len();
        loop {
            if d == 0 {
                break 'outer;
            }
            d -= 1;
            point[d] += 1;
            if point[d] < dims[d].hi {
                break;
            }
            point[d] = dims[d].lo;
        }
    }

    // Interconnect offsets as linear PE deltas (with coordinate checks).
    let offsets = arch.interconnect.offsets(arch.pe_dims.len())?;
    let dt = arch.interconnect.time_delta();
    let coords_of = |lin: usize| -> Vec<i64> {
        let mut c = Vec::with_capacity(arch.pe_dims.len());
        let mut rest = lin as i64;
        for s in &pe_strides {
            c.push(rest / s);
            rest %= s;
        }
        c
    };
    let neighbor = |lin: usize, off: &[i64]| -> Option<usize> {
        let c = coords_of(lin);
        let mut out = 0i64;
        for i in 0..c.len() {
            let v = c[i] - off[i]; // the *source* PE of a transfer to us
            if v < 0 || v >= arch.pe_dims[i] {
                return None;
            }
            out += v * pe_strides[i];
        }
        Some(out as usize)
    };

    // Execute.
    let mut rfs: Vec<RegFile> = (0..pe_count).map(|_| RegFile::default()).collect();
    let mut traffic: Vec<TensorTraffic> = vec![TensorTraffic::default(); tensor_ids.len()];
    let mut touched: Vec<std::collections::HashSet<Vec<i64>>> =
        vec![std::collections::HashSet::new(); tensor_ids.len()];
    let mut compute_cycles = 0u64;
    let mut stall_cycles = 0u64;
    let mut macs = 0u64;
    let mut max_active = 0u64;
    let mut total_active = 0u128;
    for (stamp_idx, (_t, work)) in schedule.iter().enumerate() {
        let stamp_idx = stamp_idx as u64 + 1; // 0 reserved for "never"
        compute_cycles += 1;
        let mut fetched_this_stamp: HashMap<Key, usize> = HashMap::new();
        let mut fetches = 0u64;
        let mut active: Vec<usize> = work.iter().map(|(pe, _)| *pe).collect();
        active.sort_unstable();
        active.dedup();
        max_active = max_active.max(active.len() as u64);
        total_active += active.len() as u128;
        // Process PEs in coordinate order so same-cycle multicast sources
        // are seen before their sinks.
        let mut work: Vec<(usize, Vec<i64>)> = work.clone();
        work.sort_unstable();
        for (pe, inst) in &work {
            macs += 1;
            for (tid, exprs) in &accesses {
                let idx: Vec<i64> = exprs.iter().map(|e| e.eval(inst)).collect();
                let key: Key = (*tid, idx);
                // 1. Own register file.
                let hit = match rfs[*pe].entries.get(&key) {
                    Some(e) => match options.policy {
                        ReusePolicy::Adjacent => {
                            e.accessed_at(stamp_idx) || e.accessed_at(stamp_idx - 1)
                        }
                        ReusePolicy::Resident => true,
                    },
                    None => false,
                };
                if hit {
                    traffic[*tid as usize].temporal_hits += 1;
                    touch(&mut rfs[*pe], key, stamp_idx);
                    continue;
                }
                // 2. Interconnected neighbor.
                let mut spatial = false;
                for off in &offsets {
                    if let Some(src) = neighbor(*pe, off) {
                        let available = if dt == 0 {
                            fetched_this_stamp.get(&key) == Some(&src)
                                || rfs[src]
                                    .entries
                                    .get(&key)
                                    .is_some_and(|e| e.accessed_at(stamp_idx))
                        } else {
                            rfs[src]
                                .entries
                                .get(&key)
                                .is_some_and(|e| match options.policy {
                                    ReusePolicy::Adjacent => e.accessed_at(stamp_idx - 1),
                                    ReusePolicy::Resident => {
                                        e.last < stamp_idx || e.prev < stamp_idx
                                    }
                                })
                        };
                        if available {
                            spatial = true;
                            break;
                        }
                    }
                }
                if spatial {
                    traffic[*tid as usize].spatial_hits += 1;
                } else {
                    traffic[*tid as usize].scratchpad += 1;
                    fetches += 1;
                    if touched[*tid as usize].insert(key.1.clone()) {
                        traffic[*tid as usize].footprint += 1;
                    }
                    fetched_this_stamp.insert(key.clone(), *pe);
                }
                touch(&mut rfs[*pe], key, stamp_idx);
            }
            // Capacity management (approximate LRU by stamp).
            if let Some(cap) = options.rf_capacity {
                if rfs[*pe].entries.len() > cap {
                    let mut entries: Vec<(Key, Entry)> = rfs[*pe].entries.drain().collect();
                    entries.sort_by_key(|(_, e)| std::cmp::Reverse(e.last));
                    entries.truncate(cap);
                    rfs[*pe].entries = entries.into_iter().collect();
                }
            }
        }
        // Bandwidth-limited scratchpad: each stamp provides `bandwidth`
        // element transfers for free (overlapped); the rest stall.
        let free = arch.bandwidth.max(1.0) as u64;
        if fetches > free {
            stall_cycles += (fetches - free).div_ceil(free);
        }
    }
    let n_stamps = schedule.len() as u64;
    let mut tensors = BTreeMap::new();
    for (i, (name, _)) in tensor_ids.iter().enumerate() {
        tensors.insert(name.clone(), traffic[i]);
    }
    Ok(SimReport {
        compute_cycles,
        stall_cycles,
        bandwidth: arch.bandwidth,
        macs,
        max_active,
        avg_active: if n_stamps == 0 {
            0.0
        } else {
            total_active as f64 / n_stamps as f64
        },
        pe_count: pe_count as u64,
        tensors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_core::{Analysis, Interconnect};

    fn figure3() -> (TensorOp, Dataflow, ArchSpec) {
        let gemm = TensorOp::builder("gemm")
            .dim("i", 2)
            .dim("j", 2)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 100.0);
        (gemm, df, arch)
    }

    #[test]
    fn footprint_counts_distinct_elements() {
        let (op, df, arch) = figure3();
        let sim = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
        // GEMM 2x2x4: A is 2x4, B is 4x2, Y is 2x2.
        assert_eq!(sim.tensors["A"].footprint, 8);
        assert_eq!(sim.tensors["B"].footprint, 8);
        assert_eq!(sim.tensors["Y"].footprint, 4);
    }

    #[test]
    fn energy_accounting_is_internally_consistent() {
        let (op, df, arch) = figure3();
        let sim = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
        let e = sim.energy(&arch.energy);
        // 16 MACs at unit cost; three tensors, 16 accesses each.
        assert_eq!(e.compute, 16.0);
        assert_eq!(e.register, 48.0);
        // Every component is non-negative and the total adds up.
        let sum = e.compute + e.register + e.noc + e.scratchpad + e.dram;
        assert!((e.total() - sum).abs() < 1e-9);
    }

    #[test]
    fn rf_capacity_one_kills_temporal_reuse_of_stationary_output() {
        let (op, df, arch) = figure3();
        let unlimited = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
        assert!(unlimited.tensors["Y"].temporal_hits > 0);
        // With room for a single element per PE, Y's stationarity fights
        // A and B for the one slot, so reuse must drop (never rise).
        let opts = SimOptions {
            rf_capacity: Some(1),
            ..Default::default()
        };
        let tiny = simulate(&op, &df, &arch, &opts).unwrap();
        assert!(
            tiny.tensors["Y"].temporal_hits <= unlimited.tensors["Y"].temporal_hits,
            "capacity pressure cannot increase reuse"
        );
        // Lost reuse reappears as scratchpad traffic.
        assert!(tiny.scratchpad_total() >= unlimited.scratchpad_total());
    }

    #[test]
    fn resident_policy_dominates_adjacent_policy() {
        // Resident entries survive arbitrarily long, so temporal reuse
        // under Resident is a superset of reuse under Adjacent.
        let op = TensorOp::builder("strided")
            .dim("i", 4)
            .dim("j", 4)
            .read("A", ["i"]) // A[i] reused across all j at stride 1
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = Dataflow::new(["i"], ["j"]);
        let arch = ArchSpec::new("4", [4], Interconnect::Systolic1D, 100.0);
        let adj = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
        let res = simulate(
            &op,
            &df,
            &arch,
            &SimOptions {
                policy: ReusePolicy::Resident,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(res.tensors["A"].temporal_hits >= adj.tensors["A"].temporal_hits);
        assert!(res.scratchpad_total() <= adj.scratchpad_total());
    }

    #[test]
    fn figure3_simulated_traffic_matches_analytical_unique() {
        let (op, df, arch) = figure3();
        let sim = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
        let analysis = Analysis::new(&op, &df, &arch).unwrap();
        for t in ["A", "B", "Y"] {
            let v = analysis.volumes(t).unwrap();
            assert_eq!(
                sim.tensors[t].scratchpad as u128, v.unique,
                "tensor {t}: sim {} vs model {}",
                sim.tensors[t].scratchpad, v.unique
            );
            assert_eq!(
                (sim.tensors[t].temporal_hits + sim.tensors[t].spatial_hits) as u128,
                v.reuse,
                "tensor {t} reuse"
            );
        }
    }

    #[test]
    fn figure3_cycles_and_utilization() {
        let (op, df, arch) = figure3();
        let sim = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
        assert_eq!(sim.compute_cycles, 6);
        assert_eq!(sim.macs, 16);
        assert_eq!(sim.max_active, 4);
        assert!((sim.avg_utilization() - 16.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_stalls_appear() {
        let (op, df, mut arch) = figure3();
        arch.bandwidth = 1.0;
        let sim = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
        assert!(sim.stall_cycles > 0);
        assert!(sim.latency() > sim.compute_cycles);
        assert!(sim.latency_unbuffered() >= sim.latency());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (op, df, _) = figure3();
        let small = ArchSpec::new("1x1", [1, 1], Interconnect::Systolic2D, 4.0);
        assert!(simulate(&op, &df, &small, &SimOptions::default()).is_err());
    }

    #[test]
    fn resident_policy_fetches_no_more_than_adjacent() {
        let (op, df, arch) = figure3();
        let adj = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
        let res = simulate(
            &op,
            &df,
            &arch,
            &SimOptions {
                policy: ReusePolicy::Resident,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert!(res.scratchpad_total() <= adj.scratchpad_total());
    }
}
