//! Execution tracing: the per-time-stamp tables of the paper's Figure 3.
//!
//! For each time-stamp, the trace records which loop instance every PE
//! executes and which tensor elements it touches — exactly the
//! `PE[0,0]: A[0][0] B[0][0] Y[0][0]` tables the paper draws for the
//! 2x2 GEMM example. Intended for small workloads (documentation,
//! debugging, teaching); the cap guards against tracing a full CONV
//! layer by accident.

use crate::expr::compile;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use tenet_core::{ArchSpec, Dataflow, Error, Result, TensorOp};

/// One PE's activity at one time-stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeActivity {
    /// The loop instance executed, in iteration order.
    pub instance: Vec<i64>,
    /// `(tensor, element index)` pairs accessed by the instance.
    pub accesses: Vec<(String, Vec<i64>)>,
}

/// All activity at one time-stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StampSnapshot {
    /// The time-stamp vector.
    pub time: Vec<i64>,
    /// Active PEs (by coordinates) and what they do.
    pub pes: BTreeMap<Vec<i64>, PeActivity>,
}

/// The complete trace, ordered by lexicographic time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Snapshots in execution order.
    pub stamps: Vec<StampSnapshot>,
}

impl Trace {
    /// Renders the Figure 3-style table: one block per time-stamp, one
    /// line per active PE listing the elements it touches.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.stamps {
            let t: Vec<String> = s.time.iter().map(i64::to_string).collect();
            let _ = writeln!(out, "T[{}]", t.join(","));
            for (pe, act) in &s.pes {
                let p: Vec<String> = pe.iter().map(i64::to_string).collect();
                let elems: Vec<String> = act
                    .accesses
                    .iter()
                    .map(|(tensor, idx)| {
                        let ix: Vec<String> = idx.iter().map(i64::to_string).collect();
                        format!("{tensor}[{}]", ix.join("]["))
                    })
                    .collect();
                let _ = writeln!(out, "  PE[{}]  {}", p.join(","), elems.join(" "));
            }
        }
        out
    }
}

/// Traces the execution of `op` under `df` on `arch`.
///
/// # Errors
///
/// Fails if the workload exceeds `max_instances`, a stamp expression does
/// not compile, or an instance maps outside the PE array.
pub fn trace(op: &TensorOp, df: &Dataflow, arch: &ArchSpec, max_instances: usize) -> Result<Trace> {
    let n = op.instances()?;
    if n > max_instances as u128 {
        return Err(Error::Invalid(format!(
            "workload has {n} instances, above the trace cap {max_instances}"
        )));
    }
    if df.n_space() != arch.pe_dims.len() {
        return Err(Error::Invalid(format!(
            "dataflow has {} space dims but the PE array has {}",
            df.n_space(),
            arch.pe_dims.len()
        )));
    }
    let space: Vec<_> = df
        .space_exprs()
        .iter()
        .map(|e| compile(e, op))
        .collect::<Result<_>>()?;
    let time: Vec<_> = df
        .time_exprs()
        .iter()
        .map(|e| compile(e, op))
        .collect::<Result<_>>()?;
    let accesses: Vec<(String, Vec<_>)> = op
        .accesses()
        .iter()
        .map(|a| {
            let exprs: Result<Vec<_>> = a.exprs.iter().map(|e| compile(e, op)).collect();
            Ok((a.tensor.clone(), exprs?))
        })
        .collect::<Result<_>>()?;

    // Group instances by time-stamp.
    let mut stamps: BTreeMap<Vec<i64>, StampSnapshot> = BTreeMap::new();
    let dims = op.dims();
    let mut inst: Vec<i64> = dims.iter().map(|d| d.lo).collect();
    loop {
        let t: Vec<i64> = time.iter().map(|e| e.eval(&inst)).collect();
        let p: Vec<i64> = space.iter().map(|e| e.eval(&inst)).collect();
        for (coord, extent) in p.iter().zip(arch.pe_dims.iter()) {
            if *coord < 0 || *coord >= *extent {
                return Err(Error::Invalid(format!(
                    "instance {inst:?} maps to PE{p:?}, outside the {:?} array",
                    arch.pe_dims
                )));
            }
        }
        let snapshot = stamps.entry(t.clone()).or_insert_with(|| StampSnapshot {
            time: t,
            pes: BTreeMap::new(),
        });
        let elems: Vec<(String, Vec<i64>)> = accesses
            .iter()
            .map(|(name, exprs)| (name.clone(), exprs.iter().map(|e| e.eval(&inst)).collect()))
            .collect();
        if let Some(prev) = snapshot.pes.insert(
            p.clone(),
            PeActivity {
                instance: inst.clone(),
                accesses: elems,
            },
        ) {
            return Err(Error::Invalid(format!(
                "dataflow is not injective: instances {:?} and {inst:?} both occupy \
                 PE{p:?} at the same time-stamp",
                prev.instance
            )));
        }

        // Odometer over the iteration domain.
        let mut d = dims.len();
        loop {
            if d == 0 {
                let stamps: Vec<StampSnapshot> = stamps.into_values().collect();
                return Ok(Trace { stamps });
            }
            d -= 1;
            inst[d] += 1;
            if inst[d] < dims[d].hi {
                break;
            }
            inst[d] = dims[d].lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_core::Interconnect;

    fn figure3() -> (TensorOp, Dataflow, ArchSpec) {
        let gemm = TensorOp::builder("gemm")
            .dim("i", 2)
            .dim("j", 2)
            .dim("k", 4)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap();
        let df = Dataflow::new(["i", "j"], ["i + j + k"]);
        let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
        (gemm, df, arch)
    }

    #[test]
    fn figure3_stamp_zero_and_one() {
        let (op, df, arch) = figure3();
        let t = trace(&op, &df, &arch, 1000).unwrap();
        // T[0]: only PE[0,0] runs S[0,0,0].
        assert_eq!(t.stamps[0].time, vec![0]);
        assert_eq!(t.stamps[0].pes.len(), 1);
        let act = &t.stamps[0].pes[&vec![0, 0]];
        assert_eq!(act.instance, vec![0, 0, 0]);
        assert_eq!(
            act.accesses,
            vec![
                ("A".to_string(), vec![0, 0]),
                ("B".to_string(), vec![0, 0]),
                ("Y".to_string(), vec![0, 0]),
            ]
        );
        // T[1]: the paper lists S[0,0,1]->PE[0,0], S[1,0,0]->PE[1,0],
        // S[0,1,0]->PE[0,1].
        let s1 = &t.stamps[1];
        assert_eq!(s1.time, vec![1]);
        assert_eq!(s1.pes.len(), 3);
        assert_eq!(s1.pes[&vec![0, 0]].instance, vec![0, 0, 1]);
        assert_eq!(s1.pes[&vec![1, 0]].instance, vec![1, 0, 0]);
        assert_eq!(s1.pes[&vec![0, 1]].instance, vec![0, 1, 0]);
    }

    #[test]
    fn figure3_full_trace_covers_all_instances() {
        let (op, df, arch) = figure3();
        let t = trace(&op, &df, &arch, 1000).unwrap();
        // Time-stamps 0..=5 (max i+j+k = 1+1+3 for 2x2x4).
        assert_eq!(t.stamps.len(), 6);
        let total: usize = t.stamps.iter().map(|s| s.pes.len()).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn render_matches_paper_table_shape() {
        let (op, df, arch) = figure3();
        let text = trace(&op, &df, &arch, 1000).unwrap().render();
        assert!(text.contains("T[1]"));
        assert!(text.contains("PE[0,0]  A[0][1] B[1][0] Y[0][0]"));
        assert!(text.contains("PE[1,0]  A[1][0] B[0][0] Y[1][0]"));
    }

    #[test]
    fn trace_cap_is_enforced() {
        let (op, df, arch) = figure3();
        assert!(trace(&op, &df, &arch, 4).is_err());
    }

    #[test]
    fn non_injective_dataflow_is_reported() {
        let (op, _, arch) = figure3();
        let bad = Dataflow::new(["i", "j"], ["i + j"]);
        let err = trace(&op, &bad, &arch, 1000).unwrap_err();
        assert!(err.to_string().contains("not injective"));
    }

    #[test]
    fn out_of_bounds_pe_is_reported() {
        let (op, _, arch) = figure3();
        let bad = Dataflow::new(["i + 2", "j"], ["k"]);
        assert!(trace(&op, &bad, &arch, 1000).is_err());
    }
}
