//! A small compiled evaluator for the quasi-affine expressions used in
//! dataflows and access functions, so the simulator can map millions of
//! loop instances without going through the integer-set machinery.

use tenet_core::{Error, Result, TensorOp};

/// A compiled quasi-affine expression over the loop iterators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Loop iterator by index.
    Dim(usize),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Scaling by a constant.
    Mul(i64, Box<Expr>),
    /// Floor modulus by a positive constant.
    Mod(Box<Expr>, i64),
    /// Floor division by a positive constant.
    Div(Box<Expr>, i64),
}

impl Expr {
    /// Evaluates the expression for the given iterator values.
    pub fn eval(&self, point: &[i64]) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Dim(d) => point[*d],
            Expr::Add(a, b) => a.eval(point) + b.eval(point),
            Expr::Sub(a, b) => a.eval(point) - b.eval(point),
            Expr::Mul(c, e) => c * e.eval(point),
            Expr::Mod(e, m) => e.eval(point).rem_euclid(*m),
            Expr::Div(e, d) => e.eval(point).div_euclid(*d),
        }
    }
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
    dims: &'a [String],
}

impl<'a> P<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len()
            && (self.s[self.pos].is_ascii_alphanumeric() || self.s[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
        }
    }

    fn number(&mut self) -> Result<i64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.s[start..self.pos])
            .parse()
            .map_err(|_| Error::Invalid("expected an integer".into()))
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::Invalid(format!(
                "expected `{}` in expression",
                c as char
            )))
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(b'-') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.postfix()?;
        loop {
            let save = self.pos;
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    let rhs = self.postfix()?;
                    lhs = combine_mul(lhs, rhs)?;
                }
                Some(c) if c == b'(' || c.is_ascii_alphabetic() || c == b'_' => {
                    // Implicit multiplication (e.g. `3(c mod 4)`).
                    if let Ok(rhs) = self.postfix() {
                        lhs = combine_mul(lhs, rhs)?;
                    } else {
                        self.pos = save;
                        return Ok(lhs);
                    }
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.factor()?;
        loop {
            self.skip_ws();
            if self.s[self.pos..].starts_with(b"mod") {
                self.pos += 3;
                let m = self.number()?;
                e = Expr::Mod(Box::new(e), m);
            } else if self.peek() == Some(b'%') {
                self.pos += 1;
                let m = self.number()?;
                e = Expr::Mod(Box::new(e), m);
            } else {
                return Ok(e);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(b')')?;
                Ok(e)
            }
            Some(b'-') => {
                self.pos += 1;
                let e = self.factor()?;
                Ok(Expr::Mul(-1, Box::new(e)))
            }
            Some(c) if c.is_ascii_digit() => Ok(Expr::Const(self.number()?)),
            _ => {
                let id = self
                    .ident()
                    .ok_or_else(|| Error::Invalid("expected identifier".into()))?;
                if id == "floor" || id == "fl" || id == "floord" {
                    self.expect(b'(')?;
                    let num = self.expr()?;
                    self.expect(b'/')?;
                    let den = self.number()?;
                    self.expect(b')')?;
                    return Ok(Expr::Div(Box::new(num), den));
                }
                let d = self
                    .dims
                    .iter()
                    .position(|n| *n == id)
                    .ok_or_else(|| Error::Invalid(format!("unknown iterator `{id}`")))?;
                Ok(Expr::Dim(d))
            }
        }
    }
}

fn combine_mul(a: Expr, b: Expr) -> Result<Expr> {
    match (&a, &b) {
        (Expr::Const(c), _) => Ok(Expr::Mul(*c, Box::new(b))),
        (_, Expr::Const(c)) => Ok(Expr::Mul(*c, Box::new(a))),
        _ => Err(Error::Invalid("non-affine product in expression".into())),
    }
}

/// Compiles an expression string against the iterator names of `op`.
pub fn compile(expr: &str, op: &TensorOp) -> Result<Expr> {
    let dims: Vec<String> = op.dims().iter().map(|d| d.name.clone()).collect();
    let mut p = P {
        s: expr.as_bytes(),
        pos: 0,
        dims: &dims,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(Error::Invalid(format!(
            "trailing characters in expression `{expr}`"
        )));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> TensorOp {
        TensorOp::builder("t")
            .dim("i", 100)
            .dim("j", 100)
            .dim("k", 100)
            .read("A", ["i"])
            .write("Y", ["i"])
            .build()
            .unwrap()
    }

    #[test]
    fn eval_basic() {
        let op = op();
        let e = compile("i + 2*j - k", &op).unwrap();
        assert_eq!(e.eval(&[1, 2, 3]), 2);
    }

    #[test]
    fn eval_mod_floor() {
        let op = op();
        let e = compile("i mod 8 + j mod 8 + k", &op).unwrap();
        assert_eq!(e.eval(&[10, 9, 1]), 2 + 1 + 1);
        let f = compile("floor(i/8)", &op).unwrap();
        assert_eq!(f.eval(&[17, 0, 0]), 2);
    }

    #[test]
    fn eval_implicit_mul_and_parens() {
        let op = op();
        let e = compile("3*(i mod 4)", &op).unwrap();
        assert_eq!(e.eval(&[7, 0, 0]), 9);
    }

    #[test]
    fn rejects_unknown_and_nonaffine() {
        let op = op();
        assert!(compile("z + 1", &op).is_err());
        assert!(compile("i * j", &op).is_err());
    }
}
