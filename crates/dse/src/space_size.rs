//! Design-space size formulas (Section IV-A).
//!
//! Under the paper's normalization (one MAC per PE, 2-D array, unit sizes
//! and coefficients), a MAESTRO mapping is an arrangement of `n`
//! primitives of which exactly two are `SpatialMap`, giving
//! `n! · C(n,2)` mappings; a relation-centric dataflow is an `n × n`
//! 0/1 transformation matrix, giving `2^(n²)` dataflows.

/// `n!`.
fn factorial(n: u32) -> u128 {
    (1..=n as u128).product::<u128>().max(1)
}

/// `C(n, 2)`.
fn choose2(n: u32) -> u128 {
    (n as u128) * (n as u128 - 1) / 2
}

/// MAESTRO design-space size: `n! · C(n, 2)`.
///
/// ```
/// // GEMM has n = 3 loops: 3! * 3 = 18 (Section IV-A).
/// assert_eq!(tenet_dse::space_size::data_centric(3), 18);
/// ```
pub fn data_centric(n_loops: u32) -> u128 {
    factorial(n_loops) * choose2(n_loops)
}

/// Relation-centric design-space size: `2^(n²)`.
///
/// ```
/// // GEMM: 2^9 = 512, i.e. 28x the data-centric space.
/// assert_eq!(tenet_dse::space_size::relation_centric(3), 512);
/// ```
pub fn relation_centric(n_loops: u32) -> u128 {
    1u128 << (n_loops * n_loops)
}

/// The pruned 2D-CONV space of Section VI-B: 12 legal data movements per
/// input tensor and 180 boundary data assignments.
pub fn pruned_conv_space() -> u128 {
    12 * 12 * 180
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_sizes_match_paper() {
        assert_eq!(data_centric(3), 18);
        assert_eq!(relation_centric(3), 512);
        // "which is 28x larger"
        assert_eq!(relation_centric(3) / data_centric(3), 28);
    }

    #[test]
    fn conv_pruned_space_matches_paper() {
        assert_eq!(pruned_conv_space(), 25_920);
    }

    #[test]
    fn relation_space_grows_much_faster() {
        for n in 3..7 {
            assert!(relation_centric(n) > data_centric(n));
        }
        // 2D-CONV with 6 loops: 2^36 vs 6!*15.
        assert_eq!(relation_centric(6), 1 << 36);
        assert_eq!(data_centric(6), 720 * 15);
    }
}
