//! # tenet-dse
//!
//! Dataflow design-space exploration (Sections IV-A and VI-B): the
//! design-space size formulas comparing relation-centric and data-centric
//! notations, a practical dataflow enumerator, and a latency-driven
//! search over the enumerated space.

#![warn(missing_docs)]

pub mod enumerate;
pub mod hardware;
pub mod space_size;

pub use enumerate::{enumerate_1d, enumerate_2d, enumerate_all};
pub use search::{
    explore, explore_parallel, explore_with_stats, pareto, DesignPoint, ExploreStats,
};

/// Latency/bandwidth-driven search over a list of candidate dataflows.
pub mod search {
    use tenet_core::json::Json;
    use tenet_core::{
        export, isl_cache, Analysis, ArchSpec, CacheStats, CounterHandle, Dataflow,
        PerformanceReport, Result, TensorOp,
    };

    /// One evaluated design point.
    #[derive(Debug, Clone)]
    pub struct DesignPoint {
        /// The dataflow evaluated.
        pub dataflow: Dataflow,
        /// Its full performance report.
        pub report: PerformanceReport,
    }

    impl DesignPoint {
        /// Overall latency in cycles.
        pub fn latency(&self) -> f64 {
            self.report.latency.total()
        }

        /// Scratchpad bandwidth requirement.
        pub fn sbw(&self) -> f64 {
            self.report.bandwidth.scratchpad
        }

        /// Serializes the point for the analysis service's `/v1/dse`
        /// responses: the dataflow (name plus its space/time expressions),
        /// the two objective scalars, and the full report.
        pub fn to_json(&self) -> Json {
            Json::obj([
                (
                    "dataflow",
                    Json::obj([
                        ("name", Json::from(self.dataflow.name().map(str::to_string))),
                        ("space", Json::from(self.dataflow.space_exprs().to_vec())),
                        ("time", Json::from(self.dataflow.time_exprs().to_vec())),
                    ]),
                ),
                ("latency", Json::from(self.latency())),
                ("sbw", Json::from(self.sbw())),
                ("report", export::to_json(&self.report)),
            ])
        }
    }

    /// Evaluates every candidate that is valid for (`op`, `arch`),
    /// returning the points sorted by latency. Invalid candidates
    /// (out-of-bounds space-stamps, dimension mismatches) are skipped —
    /// enumeration intentionally over-generates.
    ///
    /// All candidates for one operation share their access maps (and most
    /// of their intermediate relations), so evaluation leans heavily on
    /// the process-wide [`isl_cache`] memo: the first candidate pays for
    /// the shared relational work, later ones mostly hit the cache.
    pub fn explore(
        op: &TensorOp,
        arch: &ArchSpec,
        candidates: &[Dataflow],
    ) -> Result<Vec<DesignPoint>> {
        Ok(explore_with_stats(op, arch, candidates)?.0)
    }

    /// Amortization counters of one [`explore_with_stats`] run.
    ///
    /// The cache counters come from a per-run [`CounterHandle`] attached
    /// for the duration of the run, so they are *exact* even when other
    /// threads (concurrent explorations, server requests) use the isl
    /// layer at the same time — only this run's own lookups count.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct ExploreStats {
        /// Candidates that produced a design point.
        pub evaluated: usize,
        /// Candidates rejected (invalid for the op/arch pair).
        pub skipped: usize,
        /// isl-cache hits this run's own lookups produced.
        pub cache_hits: u64,
        /// isl-cache misses this run's own lookups produced.
        pub cache_misses: u64,
    }

    impl ExploreStats {
        /// Fraction of integer-set operations answered from the memo.
        pub fn hit_rate(&self) -> f64 {
            CacheStats {
                hits: self.cache_hits,
                misses: self.cache_misses,
                ..Default::default()
            }
            .hit_rate()
        }
    }

    /// Like [`explore`], additionally reporting how much relational work
    /// the shared cache amortized across the candidate sweep.
    pub fn explore_with_stats(
        op: &TensorOp,
        arch: &ArchSpec,
        candidates: &[Dataflow],
    ) -> Result<(Vec<DesignPoint>, ExploreStats)> {
        let handle = CounterHandle::new();
        let attached = handle.attach();
        let mut out = Vec::new();
        let mut stats = ExploreStats::default();
        for df in candidates {
            let analysis = match Analysis::new(op, df, arch) {
                Ok(a) => a,
                Err(_) => {
                    stats.skipped += 1;
                    continue;
                }
            };
            let report = match analysis.report() {
                Ok(r) => r,
                Err(_) => {
                    stats.skipped += 1;
                    continue;
                }
            };
            stats.evaluated += 1;
            out.push(DesignPoint {
                dataflow: df.clone(),
                report,
            });
        }
        drop(attached);
        stats.cache_hits = handle.hits();
        stats.cache_misses = handle.misses();
        out.sort_by(|a, b| a.latency().total_cmp(&b.latency()));
        Ok((out, stats))
    }

    /// Like [`explore`] but fans candidates out over `n_threads` OS
    /// threads (the analysis of one dataflow is independent of every
    /// other). Results are identical to [`explore`] — same points, same
    /// latency-sorted order.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures other than per-candidate validity
    /// rejections.
    pub fn explore_parallel(
        op: &TensorOp,
        arch: &ArchSpec,
        candidates: &[Dataflow],
        n_threads: usize,
    ) -> Result<Vec<DesignPoint>> {
        let n_threads = n_threads.max(1).min(candidates.len().max(1));
        let chunk = candidates.len().div_ceil(n_threads);
        let mut out: Vec<DesignPoint> = Vec::with_capacity(candidates.len());
        // Counter handles attached on the caller's thread (a surrounding
        // explore_with_stats, a server request's stats scope) must keep
        // observing the work after it fans out, so re-attach them on
        // every worker.
        let inherited = isl_cache::attached_handles();
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::new();
            for slice in candidates.chunks(chunk.max(1)) {
                let inherited = inherited.clone();
                handles.push(scope.spawn(move || {
                    let _attached: Vec<_> = inherited.iter().map(|h| h.attach()).collect();
                    explore(op, arch, slice)
                }));
            }
            for h in handles {
                let points = h
                    .join()
                    .map_err(|_| tenet_core::Error::Invalid("worker panicked".into()))??;
                out.extend(points);
            }
            Ok(())
        })?;
        out.sort_by(|a, b| a.latency().total_cmp(&b.latency()));
        Ok(out)
    }

    /// The latency/scratchpad-bandwidth Pareto frontier of a set of
    /// evaluated points.
    pub fn pareto(points: &[DesignPoint]) -> Vec<&DesignPoint> {
        let mut out: Vec<&DesignPoint> = Vec::new();
        for p in points {
            let dominated = points.iter().any(|q| {
                (q.latency() < p.latency() && q.sbw() <= p.sbw())
                    || (q.latency() <= p.latency() && q.sbw() < p.sbw())
            });
            if !dominated {
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_core::{ArchSpec, Interconnect};

    #[test]
    fn explore_ranks_by_latency() {
        let op = tenet_workloads::kernels::gemm(16, 16, 16).unwrap();
        let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 16.0);
        let candidates = tenet_workloads::dataflows::gemm_dataflows(8, 64);
        // Only the 2-D space-stamp dataflows fit an 8x8 array.
        let points = search::explore(&op, &arch, &candidates).unwrap();
        assert!(points.len() >= 3);
        for w in points.windows(2) {
            assert!(w[0].latency() <= w[1].latency());
        }
    }

    #[test]
    fn pareto_is_subset_and_nonempty() {
        let op = tenet_workloads::kernels::gemm(16, 16, 16).unwrap();
        let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 16.0);
        let candidates = enumerate_2d(&op, 8).unwrap();
        let points = search::explore(&op, &arch, &candidates).unwrap();
        let front = search::pareto(&points);
        assert!(!front.is_empty());
        assert!(front.len() <= points.len());
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use tenet_core::{ArchSpec, Interconnect, TensorOp};

    fn gemm() -> TensorOp {
        TensorOp::builder("gemm")
            .dim("i", 16)
            .dim("j", 16)
            .dim("k", 16)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_explore_matches_sequential() {
        let op = gemm();
        let arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 16.0);
        let candidates = enumerate_2d(&op, 4).unwrap();
        let seq = explore(&op, &arch, &candidates).unwrap();
        for threads in [1, 3, 8, 64] {
            let par = explore_parallel(&op, &arch, &candidates, threads).unwrap();
            assert_eq!(par.len(), seq.len(), "{threads} threads");
            for (a, b) in par.iter().zip(seq.iter()) {
                assert_eq!(a.latency(), b.latency(), "{threads} threads");
                assert_eq!(a.sbw(), b.sbw(), "{threads} threads");
            }
        }
    }

    #[test]
    fn parallel_explore_handles_empty_candidate_list() {
        let op = gemm();
        let arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 16.0);
        let points = explore_parallel(&op, &arch, &[], 4).unwrap();
        assert!(points.is_empty());
    }
}
