//! Hardware design-space exploration — the right-hand branch of the
//! paper's Figure 2 flow.
//!
//! Where [`crate::enumerate`] fixes the architecture and varies the
//! dataflow, this module fixes a *workload* and co-explores hardware
//! configurations: PE array shapes under a PE budget, interconnect
//! topologies, and scratchpad bandwidths. Every candidate architecture is
//! paired with the dataflows enumerated for its shape, and the best
//! (dataflow, architecture) pair per architecture is reported.

use crate::enumerate::{enumerate_1d, enumerate_2d};
use crate::search::{explore_parallel, DesignPoint};
use tenet_core::{ArchSpec, Interconnect, Result, TensorOp};

/// The hardware axes to sweep.
#[derive(Debug, Clone)]
pub struct HardwareSpace {
    /// Maximum number of PEs a candidate array may use.
    pub pe_budget: i64,
    /// Interconnects to try.
    pub interconnects: Vec<Interconnect>,
    /// Scratchpad bandwidths (elements/cycle) to try.
    pub bandwidths: Vec<f64>,
    /// Also consider 1D arrays of `pe_budget` PEs.
    pub include_1d: bool,
    /// Cap on dataflow candidates evaluated per architecture (the
    /// enumerator over-generates combinatorially for deep loop nests).
    pub max_candidates: usize,
    /// Worker threads for the per-architecture dataflow evaluation.
    pub threads: usize,
}

impl Default for HardwareSpace {
    fn default() -> Self {
        HardwareSpace {
            pe_budget: 64,
            interconnects: vec![
                Interconnect::Systolic1D,
                Interconnect::Systolic2D,
                Interconnect::Mesh,
            ],
            bandwidths: vec![16.0, 64.0],
            include_1d: true,
            max_candidates: 48,
            threads: 4,
        }
    }
}

/// One explored architecture with its best dataflow.
#[derive(Debug, Clone)]
pub struct HardwarePoint {
    /// The candidate architecture.
    pub arch: ArchSpec,
    /// The best dataflow found for it and its report.
    pub best: DesignPoint,
    /// How many dataflow candidates were valid on this architecture.
    pub valid_candidates: usize,
}

impl HardwarePoint {
    /// Overall latency of the best mapping.
    pub fn latency(&self) -> f64 {
        self.best.latency()
    }

    /// Total energy of the best mapping.
    pub fn energy(&self) -> f64 {
        self.best.report.energy.total()
    }
}

/// Every 2D array shape `r x c` with `r * c <= budget` where both sides
/// are powers of two (the shapes real accelerators use) — plus the
/// budget-wide 1D row when requested.
fn array_shapes(budget: i64, include_1d: bool) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    let mut r = 1i64;
    while r <= budget {
        let mut c = r; // avoid transposed duplicates: c >= r
        while r * c <= budget {
            out.push(vec![r, c]);
            c *= 2;
        }
        r *= 2;
    }
    // Keep only maximal shapes (no shape dominated by a larger one with
    // the same aspect class is pruned here — the model decides) but drop
    // degenerate 1x1 unless the budget itself is 1.
    out.retain(|s| s[0] * s[1] > 1 || budget == 1);
    if include_1d && budget > 1 {
        out.push(vec![budget]);
    }
    out
}

/// Explores the hardware space for one workload; returns points sorted by
/// best-mapping latency. Architectures on which no enumerated dataflow is
/// valid are skipped.
///
/// # Errors
///
/// Propagates analysis failures other than per-candidate validity
/// rejections (which are skipped by the underlying search).
///
/// ```
/// use tenet_dse::hardware::{co_explore, HardwareSpace};
/// # use tenet_core::TensorOp;
/// let gemm = TensorOp::builder("gemm")
///     .dim("i", 16).dim("j", 16).dim("k", 16)
///     .read("A", ["i", "k"]).read("B", ["k", "j"]).write("Y", ["i", "j"])
///     .build()?;
/// let space = HardwareSpace { pe_budget: 16, bandwidths: vec![16.0], ..Default::default() };
/// let points = co_explore(&gemm, &space)?;
/// assert!(!points.is_empty());
/// // Sorted by latency: the frontier point is first.
/// assert!(points[0].latency() <= points.last().unwrap().latency());
/// # Ok::<(), tenet_core::Error>(())
/// ```
pub fn co_explore(op: &TensorOp, space: &HardwareSpace) -> Result<Vec<HardwarePoint>> {
    let mut out = Vec::new();
    for shape in array_shapes(space.pe_budget, space.include_1d) {
        let mut candidates = if shape.len() == 2 {
            // Square tiling factor: the smaller side of the array.
            enumerate_2d(op, shape[0].min(shape[1]))?
        } else {
            enumerate_1d(op, shape[0])?
        };
        candidates.truncate(space.max_candidates);
        for ic in &space.interconnects {
            // A 1D multicast row only makes sense for 1D shapes; the
            // offsets() call would reject mismatched custom widths.
            for &bw in &space.bandwidths {
                let name = format!(
                    "{}@{}x{}",
                    ic.label(),
                    shape[0],
                    shape.get(1).copied().unwrap_or(1)
                );
                let arch = ArchSpec::new(&name, shape.clone(), ic.clone(), bw);
                let points = explore_parallel(op, &arch, &candidates, space.threads)?;
                if let Some(best) = points.first() {
                    out.push(HardwarePoint {
                        arch,
                        best: best.clone(),
                        valid_candidates: points.len(),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| a.latency().total_cmp(&b.latency()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_core::TensorOp;

    fn gemm16() -> TensorOp {
        TensorOp::builder("gemm")
            .dim("i", 16)
            .dim("j", 16)
            .dim("k", 16)
            .read("A", ["i", "k"])
            .read("B", ["k", "j"])
            .write("Y", ["i", "j"])
            .build()
            .unwrap()
    }

    #[test]
    fn shapes_respect_budget() {
        for s in array_shapes(64, true) {
            assert!(s.iter().product::<i64>() <= 64, "{s:?}");
        }
    }

    #[test]
    fn shapes_include_square_and_row() {
        let shapes = array_shapes(64, true);
        assert!(shapes.contains(&vec![8, 8]));
        assert!(shapes.contains(&vec![64]));
        assert!(!shapes.contains(&vec![1, 1]));
    }

    #[test]
    fn shapes_have_no_transposed_duplicates() {
        let shapes = array_shapes(64, false);
        for s in &shapes {
            assert!(s[0] <= s[1], "{s:?}");
            assert!(!shapes.contains(&vec![s[1], s[0]]) || s[0] == s[1]);
        }
    }

    #[test]
    fn co_explore_finds_mappings_and_sorts() {
        let op = gemm16();
        let space = HardwareSpace {
            pe_budget: 16,
            bandwidths: vec![16.0],
            ..Default::default()
        };
        let points = co_explore(&op, &space).unwrap();
        assert!(!points.is_empty());
        for w in points.windows(2) {
            assert!(w[0].latency() <= w[1].latency());
        }
        // Every best point is a valid mapping: finite latency, >= 1
        // candidate.
        for p in &points {
            assert!(p.latency().is_finite() && p.latency() > 0.0);
            assert!(p.valid_candidates >= 1);
        }
    }

    #[test]
    fn bigger_bandwidth_never_hurts_best_latency() {
        let op = gemm16();
        let lo = HardwareSpace {
            pe_budget: 16,
            interconnects: vec![Interconnect::Systolic2D],
            bandwidths: vec![4.0],
            include_1d: false,
            max_candidates: 24,
            threads: 2,
        };
        let hi = HardwareSpace {
            bandwidths: vec![64.0],
            ..lo.clone()
        };
        let best_lo = co_explore(&op, &lo).unwrap()[0].latency();
        let best_hi = co_explore(&op, &hi).unwrap()[0].latency();
        assert!(best_hi <= best_lo);
    }
}
