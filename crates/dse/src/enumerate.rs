//! Dataflow enumeration with the pruning strategy of Section VI-B:
//! enumerate the loop dimensions assigned to the PE array (data movement
//! is then rectilinear along the array axes), the ordering of the
//! remaining temporal dimensions, and an optional skew of the innermost
//! time dimension (the affine transformations only relation-centric
//! notation can express).

use tenet_core::{Dataflow, Result, TensorOp};

/// Generates every permutation of `items` (Heap's algorithm), capped at
/// `limit` permutations to keep wide loop nests tractable.
fn permutations(items: &[String], limit: usize) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut items: Vec<String> = items.to_vec();
    fn rec(k: usize, items: &mut Vec<String>, out: &mut Vec<Vec<String>>, limit: usize) {
        if out.len() >= limit {
            return;
        }
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            rec(k - 1, items, out, limit);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    let k = items.len();
    rec(k, &mut items, &mut out, limit);
    out
}

/// Enumerates dataflows for a 2-D `pe × pe` array: every ordered pair of
/// loop dims becomes the space-stamp (tiled by `pe`), every permutation of
/// the remaining dims the outer time-stamps, with and without a systolic
/// skew of the innermost time dimension.
pub fn enumerate_2d(op: &TensorOp, pe: i64) -> Result<Vec<Dataflow>> {
    let names: Vec<String> = op.dims().iter().map(|d| d.name.clone()).collect();
    let mut out = Vec::new();
    for a in 0..names.len() {
        for b in 0..names.len() {
            if a == b {
                continue;
            }
            let (da, db) = (&names[a], &names[b]);
            let rest: Vec<String> = names
                .iter()
                .filter(|n| *n != da && *n != db)
                .cloned()
                .collect();
            for perm in permutations(&rest, 24) {
                // Base time: quotients of the tiled dims, then the
                // remaining dims in permutation order.
                let mut base: Vec<String> =
                    vec![format!("floor({da}/{pe})"), format!("floor({db}/{pe})")];
                base.extend(perm.iter().cloned());
                if base.is_empty() {
                    continue;
                }
                // Unskewed variant.
                let name = format!(
                    "({}{}-P | {}-T)",
                    da.to_uppercase(),
                    db.to_uppercase(),
                    perm.last().cloned().unwrap_or_default().to_uppercase()
                );
                out.push(
                    Dataflow::new(
                        [format!("{da} mod {pe}"), format!("{db} mod {pe}")],
                        base.clone(),
                    )
                    .named(&name),
                );
                // Skewed variant: fold the innermost remaining dim into a
                // wavefront with the space-stamps (only expressible in
                // relation-centric notation).
                if let Some(inner) = perm.last() {
                    let mut skew = base.clone();
                    skew.pop();
                    skew.push(format!("{da} mod {pe} + {db} mod {pe} + {inner}"));
                    let name = format!(
                        "({}{}-P | {},{}{}{}-T)",
                        da.to_uppercase(),
                        db.to_uppercase(),
                        inner.to_uppercase(),
                        da.to_uppercase(),
                        db.to_uppercase(),
                        inner.to_uppercase()
                    );
                    out.push(
                        Dataflow::new([format!("{da} mod {pe}"), format!("{db} mod {pe}")], skew)
                            .named(&name),
                    );
                }
            }
        }
    }
    Ok(out)
}

/// Enumerates dataflows for a 1-D array of `pe1d` PEs: each loop dim in
/// turn is spatial; the rest become time in every permutation.
pub fn enumerate_1d(op: &TensorOp, pe1d: i64) -> Result<Vec<Dataflow>> {
    let names: Vec<String> = op.dims().iter().map(|d| d.name.clone()).collect();
    let mut out = Vec::new();
    for a in 0..names.len() {
        let da = &names[a];
        let rest: Vec<String> = names.iter().filter(|n| *n != da).cloned().collect();
        for perm in permutations(&rest, 24) {
            let mut time: Vec<String> = vec![format!("floor({da}/{pe1d})")];
            time.extend(perm.iter().cloned());
            let name = format!(
                "({}-P | {}-T)",
                da.to_uppercase(),
                perm.last().cloned().unwrap_or_default().to_uppercase()
            );
            out.push(Dataflow::new([format!("{da} mod {pe1d}")], time).named(&name));
        }
    }
    Ok(out)
}

/// Both enumerations combined.
pub fn enumerate_all(op: &TensorOp, pe: i64, pe1d: i64) -> Result<Vec<Dataflow>> {
    let mut out = enumerate_2d(op, pe)?;
    out.extend(enumerate_1d(op, pe1d)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenet_workloads::kernels;

    #[test]
    fn gemm_enumeration_counts() {
        let op = kernels::gemm(16, 16, 16).unwrap();
        // 2D: 6 ordered pairs x 1 permutation x 2 (skew) = 12.
        assert_eq!(enumerate_2d(&op, 8).unwrap().len(), 12);
        // 1D: 3 choices x 2 permutations = 6.
        assert_eq!(enumerate_1d(&op, 64).unwrap().len(), 6);
    }

    #[test]
    fn enumerated_dataflows_are_injective() {
        let op = kernels::gemm(16, 16, 16).unwrap();
        for df in enumerate_all(&op, 8, 64).unwrap() {
            assert!(
                df.is_injective(&op).unwrap(),
                "{:?} not injective",
                df.name()
            );
        }
    }

    #[test]
    fn conv_enumeration_is_larger() {
        let op = kernels::conv2d(8, 8, 8, 8, 3, 3).unwrap();
        let n2 = enumerate_2d(&op, 8).unwrap().len();
        // 30 ordered pairs x 24 permutations x 2 = 1440.
        assert_eq!(n2, 1440);
    }

    #[test]
    fn skewed_variants_present() {
        let op = kernels::gemm(16, 16, 16).unwrap();
        let dfs = enumerate_2d(&op, 8).unwrap();
        let skewed = dfs
            .iter()
            .filter(|d| d.time_exprs().last().unwrap().contains('+'))
            .count();
        assert_eq!(skewed, 6);
    }
}
