//! Snapshot compatibility pin: a warm-state snapshot file written by an
//! *older* build must keep restoring cleanly on the current one.
//!
//! `fixtures/warm_v1.snap` was captured from a worker that served real
//! `/v1/analyze` traffic, so its ISL section carries the memo entries a
//! production shard would actually ship on a ring change (parse texts,
//! `card`, `empty`, `apply_range`, `fix`, `slice_max`, …). Restore is
//! re-parse + re-intern of canonical relation text — never raw ids — so
//! counting-engine rewrites behind `card` must not invalidate old files.
//! If this test fails after an intentional format change, bump
//! `snapshot::VERSION` and regenerate the fixture instead of loosening
//! the assertions (`cargo test -p tenet-server --test snapshot_fixture
//! -- --ignored regenerate_fixture`).

use std::path::PathBuf;
use std::sync::Arc;
use tenet_core::isl_cache;
use tenet_core::json::Json;
use tenet_server::snapshot;
use tenet_server::{ServerConfig, WorkerCore};

const GEMM_PROBLEM: &str = "\
for (i = 0; i < 8; i++)
  for (j = 0; j < 8; j++)
    for (k = 0; k < 8; k++)
      S: Y[i][j] += A[i][k] * B[k][j];

{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }

arch \"8x8\" { array = [8, 8] interconnect = mesh bandwidth = 8 }
";

const CONV_PROBLEM: &str = "\
for (o = 0; o < 6; o++)
  for (w = 0; w < 3; w++)
    S: Out[o] += In[o + w] * W[w];

{ S[o,w] -> (PE[w] | T[o]) }

arch \"1d\" { array = [3] interconnect = systolic1d bandwidth = 4 }
";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("warm_v1.snap")
}

fn core() -> Arc<WorkerCore> {
    WorkerCore::new(ServerConfig {
        addr: "unused".into(),
        ..Default::default()
    })
}

fn analyze(core: &Arc<WorkerCore>, problem: &str) {
    let body = Json::obj([("problem", Json::from(problem))]).to_string();
    let (status, resp) = core.handle("POST", "/v1/analyze", body.as_bytes());
    assert_eq!(
        status,
        200,
        "fixture workload must analyze: {}",
        String::from_utf8_lossy(&resp)
    );
}

/// Regenerates `fixtures/warm_v1.snap` from live traffic. Run manually
/// (`--ignored`) only when the snapshot format version is bumped; the
/// committed file must otherwise stay byte-stable so the restore test
/// keeps exercising genuinely old bytes.
#[test]
#[ignore]
fn regenerate_fixture() {
    isl_cache::set_enabled(true);
    isl_cache::clear();
    let c = core();
    analyze(&c, GEMM_PROBLEM);
    analyze(&c, CONV_PROBLEM);
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let report = snapshot::save_to_file(&c, &path).unwrap();
    assert!(report.isl_memo > 0, "fixture must carry memo entries");
    assert!(report.dedup_entries > 0, "fixture must carry LRU entries");
    println!("wrote {:?}: {report:?}", path);
}

/// The committed pre-upgrade snapshot restores with zero skipped
/// entries: every op name still resolves, every canonical relation text
/// still parses, and the restored memo serves the same workload warm.
#[test]
fn pre_upgrade_snapshot_restores_cleanly() {
    let bytes = std::fs::read(fixture_path()).expect("committed fixture present");
    let payload = snapshot::decode(&bytes).expect("fixture decodes");

    isl_cache::set_enabled(true);
    isl_cache::clear();
    let c = core();
    let report = snapshot::restore(&c, &payload);
    assert_eq!(
        report.skipped, 0,
        "pre-upgrade snapshot must restore without drops: {report:?}"
    );
    assert!(report.isl_memo > 0, "memo entries restored: {report:?}");
    assert!(report.isl_parsed > 0, "parse texts restored: {report:?}");
    assert!(report.dedup > 0, "response LRU restored: {report:?}");

    // The restored response LRU is keyed exactly like live traffic, so
    // the original request is already warm (a `claim` finds cached bytes,
    // never a leader slot) and re-serving it stays bit-identical.
    let body = Json::obj([("problem", Json::from(GEMM_PROBLEM))]).to_string();
    let canon = tenet_server::canonical_request("POST", "/v1/analyze", body.as_bytes());
    let cached = match c.dedup.claim(&canon) {
        tenet_server::dedup::Claim::Cached(r) => r,
        tenet_server::dedup::Claim::Leader(_) => panic!("restored key must be warm"),
    };
    assert_eq!(cached.status, 200);
    let (status, resp) = c.handle("POST", "/v1/analyze", body.as_bytes());
    assert_eq!(status, 200);
    assert_eq!(&*resp, &*cached.body, "bit-identical replay bytes");
    let v = Json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(v.get("op").and_then(Json::as_str), Some("S"));

    // And the restored ISL memo is live: the import re-interned real
    // relations and memo rows into the process-wide context.
    let st = isl_cache::stats();
    assert!(st.entries > 0, "restored memo entries live: {st:?}");
    assert!(st.interned > 0, "restored relations interned: {st:?}");
}
