//! End-to-end tests: a real server on an ephemeral port, raw TCP
//! clients, concurrent traffic, and graceful shutdown.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;
use tenet_core::json::Json;
use tenet_server::http::{read_response, ResponseReader};
use tenet_server::{Server, ServerConfig};

const GEMM_PROBLEM: &str = "\
for (i = 0; i < 4; i++)
  for (j = 0; j < 4; j++)
    for (k = 0; k < 4; k++)
      S: Y[i][j] += A[i][k] * B[k][j];

{ S[i,j,k] -> (PE[i,j] | T[i + j + k]) }

arch \"4x4\" { array = [4, 4] interconnect = systolic2d bandwidth = 8 }
";

/// Starts a server on an ephemeral port; returns its address and handle.
fn start() -> (std::net::SocketAddr, tenet_server::ServerHandle) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        read_timeout: Duration::from_millis(2000),
        write_timeout: Duration::from_millis(2000),
        ..Default::default()
    };
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    read_response(&mut s).expect("read response")
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    s.write_all(req.as_bytes()).unwrap();
    read_response(&mut s).expect("read response")
}

fn analyze_body() -> String {
    Json::obj([("problem", Json::from(GEMM_PROBLEM))]).to_string()
}

fn dse_body() -> String {
    Json::obj([
        ("problem", Json::from(GEMM_PROBLEM)),
        ("pe", Json::from(4u64)),
        ("top", Json::from(3u64)),
        ("threads", Json::from(2u64)),
    ])
    .to_string()
}

#[test]
fn healthz_stats_and_analyze_roundtrip() {
    let (addr, handle) = start();

    let (status, body) = get(addr, "/v1/healthz");
    assert_eq!(status, 200);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));

    let (status, body) = post(addr, "/v1/analyze", &analyze_body());
    assert_eq!(
        status,
        200,
        "analyze failed: {}",
        String::from_utf8_lossy(&body)
    );
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    // The kernel is named after its statement label (`S:`).
    assert_eq!(v.get("op").and_then(Json::as_str), Some("S"));
    let reports = v.get("reports").and_then(Json::as_arr).unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].get("macs").and_then(Json::as_u64), Some(64));
    assert!(reports[0].get("latency").is_some());

    let (status, body) = get(addr, "/v1/stats");
    assert_eq!(status, 200);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let requests = v.get("requests").unwrap();
    assert!(requests.get("completed").and_then(Json::as_u64).unwrap() >= 2);
    assert!(v.get("dedup").is_some());
    assert!(v.get("isl_cache").is_some());

    handle.shutdown();
}

#[test]
fn error_taxonomy_maps_to_statuses() {
    let (addr, handle) = start();

    // Parse error (broken JSON) → 400 kind=parse.
    let (status, body) = post(addr, "/v1/analyze", "{not json");
    assert_eq!(status, 400);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("parse")
    );

    // Usage error (missing field) → 400 kind=usage.
    let (status, body) = post(addr, "/v1/analyze", "{\"nope\": 1}");
    assert_eq!(status, 400);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("usage")
    );

    // Unknown route → 404; wrong method → 405.
    assert_eq!(get(addr, "/v1/nope").0, 404);
    let (status, _) = {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"DELETE /v1/analyze HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        read_response(&mut s).unwrap()
    };
    assert_eq!(status, 405);

    // Oversized body → 413 before any handler runs.
    let huge = (ServerConfig::default().max_body + 1).to_string();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        format!("POST /v1/analyze HTTP/1.1\r\nHost: t\r\nContent-Length: {huge}\r\n\r\n")
            .as_bytes(),
    )
    .unwrap();
    let (status, _) = read_response(&mut s).unwrap();
    assert_eq!(status, 413);

    handle.shutdown();
}

#[test]
fn concurrent_duplicates_are_bit_identical_and_deduped() {
    let (addr, handle) = start();

    // Mixed concurrent traffic: many duplicate analyze requests (two
    // textual spellings of the same logical request — key order must not
    // matter) plus dse requests, from many client threads.
    let analyze_a = Json::obj([
        ("problem", Json::from(GEMM_PROBLEM)),
        ("window", Json::from(1u64)),
    ])
    .to_string();
    let analyze_b = Json::obj([
        ("window", Json::from(1u64)),
        ("problem", Json::from(GEMM_PROBLEM)),
    ])
    .to_string();
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let analyze_a = analyze_a.clone();
            let analyze_b = analyze_b.clone();
            std::thread::spawn(move || {
                let mut bodies = Vec::new();
                for round in 0..3 {
                    let (status, body) = if (i + round) % 4 == 3 {
                        post(addr, "/v1/dse", &dse_body())
                    } else if i % 2 == 0 {
                        post(addr, "/v1/analyze", &analyze_a)
                    } else {
                        post(addr, "/v1/analyze", &analyze_b)
                    };
                    assert_eq!(
                        status,
                        200,
                        "request failed: {}",
                        String::from_utf8_lossy(&body)
                    );
                    if (i + round) % 4 != 3 {
                        bodies.push(body);
                    }
                }
                bodies
            })
        })
        .collect();
    let mut analyze_bodies = Vec::new();
    for c in clients {
        analyze_bodies.extend(c.join().unwrap());
    }
    assert!(analyze_bodies.len() >= 16);
    for b in &analyze_bodies {
        assert_eq!(
            b, &analyze_bodies[0],
            "duplicate analyze responses must be bit-identical"
        );
    }

    // The dedup layer must have collapsed the duplicates: exactly one
    // analyze miss and one dse miss.
    let (_, body) = get(addr, "/v1/stats");
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let dedup = v.get("dedup").unwrap();
    assert_eq!(
        dedup.get("misses").and_then(Json::as_u64),
        Some(2),
        "stats: {v}"
    );
    let served = dedup.get("hits").and_then(Json::as_u64).unwrap()
        + dedup.get("inflight_waits").and_then(Json::as_u64).unwrap();
    assert_eq!(served, 24 - 2, "every duplicate must come from the layer");

    handle.shutdown();
}

#[test]
fn chunked_transfer_encoding_is_501_over_the_wire() {
    // ROADMAP pins this behavior: the codec only speaks Content-Length
    // framing, and a chunked body must be refused with 501 (not silently
    // mis-framed) so streaming clients fail loudly. This locks the status
    // at the worker layer; the router layer has its own twin of this test.
    let (addr, handle) = start();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        b"POST /v1/analyze HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n\
          5\r\nhello\r\n0\r\n\r\n",
    )
    .unwrap();
    let (status, body) = read_response(&mut s).unwrap();
    assert_eq!(status, 501, "chunked framing must be 501 Not Implemented");
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("parse")
    );
    assert!(v
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap()
        .contains("transfer-encoding"));
    handle.shutdown();
}

#[test]
fn dse_pagination_and_field_filtering() {
    let (addr, handle) = start();

    // The unpaginated sweep: how many valid points exist?
    let (status, body) = post(addr, "/v1/dse", &dse_body());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let valid = v.get("valid").and_then(Json::as_u64).unwrap() as usize;
    assert!(valid >= 2, "sweep too small to exercise paging: {valid}");
    let full: Vec<String> = {
        let (_, body) = post(
            addr,
            "/v1/dse",
            &Json::obj([
                ("problem", Json::from(GEMM_PROBLEM)),
                ("pe", Json::from(4u64)),
                ("limit", Json::from(1000u64)),
            ])
            .to_string(),
        );
        let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        v.get("points")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|p| p.to_string())
            .collect()
    };
    assert_eq!(full.len(), valid);

    // A window from the middle equals the same slice of the full list.
    let page_req = |offset: u64, limit: u64| -> (u16, Json) {
        let body = Json::obj([
            ("problem", Json::from(GEMM_PROBLEM)),
            ("pe", Json::from(4u64)),
            ("offset", Json::from(offset)),
            ("limit", Json::from(limit)),
        ])
        .to_string();
        let (status, body) = post(addr, "/v1/dse", &body);
        (
            status,
            Json::parse(std::str::from_utf8(&body).unwrap()).unwrap(),
        )
    };
    let (status, v) = page_req(1, 2);
    assert_eq!(status, 200);
    let points = v.get("points").and_then(Json::as_arr).unwrap();
    let expect: Vec<&String> = full.iter().skip(1).take(2).collect();
    assert_eq!(points.len(), expect.len());
    for (got, want) in points.iter().zip(expect) {
        assert_eq!(&got.to_string(), want, "page must be a slice of the rank");
    }

    // Offset past the end: empty page, still 200.
    let (status, v) = page_req(9999, 5);
    assert_eq!(status, 200);
    assert_eq!(v.get("points").and_then(Json::as_arr).unwrap().len(), 0);

    // Limit 0: empty page, still 200.
    let (status, v) = page_req(0, 0);
    assert_eq!(status, 200);
    assert_eq!(v.get("points").and_then(Json::as_arr).unwrap().len(), 0);

    // `fields` trims every point (and the pareto list) to the selection.
    let body = Json::obj([
        ("problem", Json::from(GEMM_PROBLEM)),
        ("pe", Json::from(4u64)),
        ("limit", Json::from(2u64)),
        (
            "fields",
            Json::Arr(vec![Json::from("latency"), Json::from("sbw")]),
        ),
    ])
    .to_string();
    let (status, body) = post(addr, "/v1/dse", &body);
    assert_eq!(status, 200);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    for list in ["points", "pareto"] {
        for p in v.get(list).and_then(Json::as_arr).unwrap() {
            assert!(p.get("latency").is_some());
            assert!(p.get("sbw").is_some());
            assert!(p.get("report").is_none(), "{list} must drop `report`");
            assert!(p.get("dataflow").is_none(), "{list} must drop `dataflow`");
        }
    }

    // Unknown field and limit+top conflict: usage errors.
    let body = Json::obj([
        ("problem", Json::from(GEMM_PROBLEM)),
        ("fields", Json::Arr(vec![Json::from("latencies")])),
    ])
    .to_string();
    let (status, body) = post(addr, "/v1/dse", &body);
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    let body = Json::obj([
        ("problem", Json::from(GEMM_PROBLEM)),
        ("limit", Json::from(1u64)),
        ("top", Json::from(1u64)),
    ])
    .to_string();
    let (status, _) = post(addr, "/v1/dse", &body);
    assert_eq!(status, 400);

    handle.shutdown();
}

#[test]
fn pipelined_requests_on_one_connection() {
    let (addr, handle) = start();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Two healthz and a stats, written back-to-back before reading.
    let burst = "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /v1/stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    s.write_all(burst.as_bytes()).unwrap();
    let mut reader = ResponseReader::new(&mut s);
    let (s1, b1) = reader.next_response().unwrap();
    let (s2, b2) = reader.next_response().unwrap();
    let (s3, _b3) = reader.next_response().unwrap();
    assert_eq!((s1, s2, s3), (200, 200, 200));
    assert_eq!(b1, b2);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let (addr, _handle) = start();
    // Shut down via the admin endpoint (the path CI uses).
    let (status, body) = post(addr, "/v1/shutdown", "");
    assert_eq!(status, 200);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    // The accept loop polls the flag every few ms; soon after, new
    // connections must stop being served.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        std::thread::sleep(Duration::from_millis(20));
        match TcpStream::connect(addr) {
            Err(_) => break, // listener closed
            Ok(mut s) => {
                // Connection may be accepted by the OS backlog; a request
                // must no longer be answered once drain completes.
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                let _ = s.write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
                if read_response(&mut s).is_err() {
                    break;
                }
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server kept serving after shutdown"
        );
    }
}

/// [`post`] with extra request headers, keeping the response headers
/// (lowercased names) so tests can assert on trace echoes.
fn post_with_headers(
    addr: std::net::SocketAddr,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let extra: String = headers
        .iter()
        .map(|(k, v)| format!("{k}: {v}\r\n"))
        .collect();
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    ResponseReader::new(s)
        .next_response_with_headers()
        .expect("read response")
}

#[test]
fn traced_request_echoes_id_and_serves_the_timeline() {
    // `slow_ms: 0` classifies every request as slow, so the slow ring is
    // testable without a genuinely slow request.
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        slow_ms: 0,
        ..Default::default()
    };
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::spawn(move || server.run().expect("server run"));

    // A short client id is accepted and echoed zero-padded to 16 hex.
    let (status, headers, _body) = post_with_headers(
        addr,
        "/v1/analyze",
        &analyze_body(),
        &[("X-Tenet-Trace-Id", "abc123")],
    );
    assert_eq!(status, 200);
    let header = |name: &str| -> Option<&str> {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    assert_eq!(header("x-tenet-trace-id"), Some("0000000000abc123"));
    let timing = header("x-tenet-server-timing").expect("Server-Timing header");
    assert!(
        timing.contains(";dur=") && timing.contains("serialize"),
        "the header must carry per-phase durations: {timing}"
    );

    // The worker serves the recorded timeline, phases summing ≈ total.
    let (status, body) = get(addr, "/v1/trace/abc123");
    assert_eq!(status, 200);
    let doc = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        doc.get("trace_id").and_then(Json::as_str),
        Some("0000000000abc123")
    );
    let records = doc.get("records").and_then(Json::as_arr).expect("records");
    assert_eq!(records.len(), 1);
    let rec = &records[0];
    assert_eq!(rec.get("tier").and_then(Json::as_str), Some("worker"));
    let total = rec.get("total_us").and_then(Json::as_u64).unwrap();
    let phase_sum: u64 = rec
        .get("spans")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|s| s.get("phase").and_then(Json::as_bool) == Some(true))
        .filter_map(|s| s.get("dur_us").and_then(Json::as_u64))
        .sum();
    let slack = (total / 10).max(50);
    assert!(
        phase_sum <= total && total - phase_sum <= slack,
        "phases must sum to within 10% of the handling time \
         (sum {phase_sum}µs vs total {total}µs): {rec}"
    );

    // With the threshold at zero, the request also lands in the slow
    // ring, queryable without knowing its id.
    let (status, body) = get(addr, "/v1/trace/slow?ms=0");
    assert_eq!(status, 200);
    let doc = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let traces = doc.get("traces").and_then(Json::as_arr).expect("traces");
    assert!(
        traces
            .iter()
            .any(|t| { t.get("trace_id").and_then(Json::as_str) == Some("0000000000abc123") }),
        "the traced request must appear among the slow timelines: {doc}"
    );

    // A garbled id is a client error, not a 404.
    let (status, _) = get(addr, "/v1/trace/not-hex");
    assert_eq!(status, 400);

    handle.shutdown();
}

#[test]
fn malformed_deadline_headers_and_trace_thresholds_are_400() {
    let (addr, handle) = start();

    // A deadline the server cannot honor as stated must be refused, not
    // silently treated as "no deadline" — the client believes it has a
    // budget, and serving an unbounded request under that belief is the
    // worse failure. Zero is meaningless (already expired) and overflow
    // is not a number of milliseconds this server can count to.
    for bad in ["soon", "0", "-5", "1e3", "", "99999999999999999999999"] {
        let (status, _, body) = post_with_headers(
            addr,
            "/v1/analyze",
            &analyze_body(),
            &[("X-Tenet-Deadline-Ms", bad)],
        );
        let text = String::from_utf8_lossy(&body).to_string();
        assert_eq!(status, 400, "deadline `{bad}` must be rejected: {text}");
        let v = Json::parse(&text).expect("a JSON error body");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("parse"),
            "{text}"
        );
    }
    // A plausible deadline still passes.
    let (status, _, _) = post_with_headers(
        addr,
        "/v1/analyze",
        &analyze_body(),
        &[("X-Tenet-Deadline-Ms", "30000")],
    );
    assert_eq!(status, 200);

    // Same policy for the slow-trace threshold: a present-but-garbled
    // `ms=` is a usage error (serving the unfiltered ring would silently
    // ignore the filter the client asked for); `ms=0` stays valid.
    let (status, body) = get(addr, "/v1/trace/slow?ms=abc");
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("usage")
    );
    let (status, _) = get(addr, "/v1/trace/slow?ms=0");
    assert_eq!(status, 200);

    handle.shutdown();
}

#[test]
fn snapshot_round_trip_restores_warm_state_and_rejects_corruption() {
    let snap = std::env::temp_dir().join(format!("tenet-e2e-snap-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&snap);
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        snapshot_file: Some(snap.clone()),
        ..Default::default()
    };
    let boot = |cfg: ServerConfig| {
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        (addr, handle, thread)
    };

    // Warm a key, snapshot explicitly, drain.
    let (addr, handle, thread) = boot(config.clone());
    let (status, first) = post(addr, "/v1/analyze", &analyze_body());
    assert_eq!(status, 200);
    let (status, body) = post(addr, "/v1/snapshot", "");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("saved"));
    assert!(v.get("dedup_entries").and_then(Json::as_u64).unwrap() >= 1);
    handle.shutdown();
    thread.join().unwrap().expect("clean drain");
    let valid = std::fs::read(&snap).expect("snapshot written");

    // Restart on the snapshot: the replayed key is answered from the
    // restored cache — bit-identical bytes, zero recomputes.
    let (addr, handle, thread) = boot(config.clone());
    let (status, replay) = post(addr, "/v1/analyze", &analyze_body());
    assert_eq!(status, 200);
    assert_eq!(replay, first, "a restored shard must serve its old bytes");
    let (status, body) = get(addr, "/v1/stats");
    assert_eq!(status, 200);
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let dedup = v.get("dedup").unwrap();
    assert_eq!(
        dedup.get("misses").and_then(Json::as_u64),
        Some(0),
        "the restored key must never recompute: {v}"
    );
    assert!(
        dedup.get("warmed").and_then(Json::as_u64).unwrap() >= 1,
        "restored entries count as warmed: {v}"
    );
    handle.shutdown();
    thread.join().unwrap().expect("clean drain");

    // Corrupted, truncated, and version-mismatched files must each be
    // rejected at boot with a *cold* start — never a crash, never a
    // silently poisoned cache.
    let mut corrupt = valid.clone();
    let n = corrupt.len();
    corrupt[n - 1] ^= 0x01;
    for bad in [
        corrupt.as_slice(),
        &valid[..n / 2],
        b"TENETSNAP 999 0123456789abcdef 2\n{}".as_slice(),
    ] {
        std::fs::write(&snap, bad).unwrap();
        let (addr, handle, thread) = boot(config.clone());
        let (status, body) = get(addr, "/v1/stats");
        assert_eq!(status, 200);
        let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(
            v.get("dedup")
                .and_then(|d| d.get("entries"))
                .and_then(Json::as_u64),
            Some(0),
            "a rejected snapshot must leave the cache cold: {v}"
        );
        // And the cold server still computes.
        let (status, bytes) = post(addr, "/v1/analyze", &analyze_body());
        assert_eq!(status, 200);
        assert_eq!(bytes, first, "a cold recompute is still the same answer");
        handle.shutdown();
        thread.join().unwrap().expect("clean drain");
    }
    let _ = std::fs::remove_file(&snap);
}
