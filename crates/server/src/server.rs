//! The listener: accept loop, connection lifecycle, and graceful drain.
//!
//! All request semantics (dedup, routing, counters) live in
//! [`WorkerCore`]; this module only owns the TCP side — accepting,
//! HTTP framing, keep-alive, and load shedding.

use crate::http::{self, RequestBuffer};
use crate::pool::{SubmitError, WorkerPool};
use crate::worker::WorkerCore;
use crate::ServerConfig;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tenet_core::json::Json;
use tenet_core::obs::{self, EdgeTimings};

/// A cheap, clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: stop accepting, finish in-flight work.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// A worker spawned onto its own thread by [`Server::spawn`]: the handle
/// for remote control plus the join handle for clean teardown. This is
/// how the sharding router's CLI entry point, the cluster test harness,
/// and the load generator all boot in-process workers.
pub struct SpawnedServer {
    handle: ServerHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedServer {
    /// The worker's remote control (clonable, thread-safe).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// The worker's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// Requests a graceful drain and waits for the worker to stop.
    /// Idempotent with an earlier cascaded shutdown: the flag is already
    /// set and the thread has (or is about to have) exited.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

/// A bound (but not yet running) analysis service.
pub struct Server {
    listener: TcpListener,
    core: Arc<WorkerCore>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `config.addr` and prepares the shared core.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Polling accept: wakes every few milliseconds to observe the
        // shutdown flag without platform signal machinery.
        listener.set_nonblocking(true)?;
        let core = WorkerCore::new(config);
        // Restore-on-boot: a present snapshot file warms the caches so a
        // restarted shard answers its old keys with bit-identical bytes.
        // Any failure (missing, corrupted, truncated, wrong version) is
        // reported and the worker starts cold — never crashed.
        if let Some(path) = core.config.snapshot_file.clone() {
            if path.exists() {
                match crate::snapshot::load_from_file(&core, &path) {
                    Ok(r) => eprintln!(
                        "tenet-server: restored snapshot {} (dedup {}, isl memo {}, isl parsed {}, skipped {})",
                        path.display(),
                        r.dedup,
                        r.isl_memo,
                        r.isl_parsed,
                        r.skipped
                    ),
                    Err(e) => eprintln!(
                        "tenet-server: rejecting snapshot {}: {e}; starting cold",
                        path.display()
                    ),
                }
            }
        }
        Ok(Server {
            listener,
            core,
            addr,
        })
    }

    /// Binds `config.addr` and runs the service on a new thread,
    /// returning the handles a supervisor (router, test harness, load
    /// generator) needs: bind errors surface here, run errors at join.
    pub fn spawn(config: ServerConfig) -> std::io::Result<SpawnedServer> {
        let server = Server::bind(config)?;
        let handle = server.handle();
        let thread = std::thread::Builder::new()
            .name(format!("tenet-server-{}", handle.addr().port()))
            .spawn(move || server.run())?;
        Ok(SpawnedServer { handle, thread })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The request-handling core behind this listener.
    pub fn core(&self) -> Arc<WorkerCore> {
        Arc::clone(&self.core)
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.core.shutdown),
            addr: self.addr,
        }
    }

    /// Runs until a graceful shutdown is requested, then drains.
    ///
    /// Every accepted connection is handed to a bounded worker pool; when
    /// the backlog is full the connection is answered `503` inline and
    /// closed. On shutdown the accept loop stops, admitted connections
    /// finish (bounded by the read timeout), and the workers join.
    pub fn run(self) -> std::io::Result<()> {
        let core = Arc::clone(&self.core);
        let pool_core = Arc::clone(&self.core);
        let pool = WorkerPool::new(
            "tenet-conn",
            core.config.threads,
            core.config.queue_capacity,
            move |(queued_at, stream): (Instant, TcpStream)| {
                serve_connection(stream, queued_at, &pool_core)
            },
        );
        core.set_backlog_probe(pool.backlog_probe());
        // The periodic snapshot writer: wakes in short slices so a drain
        // is observed promptly, writes every `snapshot_interval`. The
        // write is atomic (tmp+rename), so a kill mid-write never leaves
        // a torn file for the next boot.
        let snap_thread = match (&core.config.snapshot_file, core.config.snapshot_interval) {
            (Some(path), Some(interval)) => {
                let core = Arc::clone(&core);
                let path = path.clone();
                Some(
                    std::thread::Builder::new()
                        .name("tenet-snapshot".into())
                        .spawn(move || {
                            let mut last = Instant::now();
                            while !core.shutdown.load(Ordering::Acquire) {
                                std::thread::sleep(Duration::from_millis(20));
                                if last.elapsed() >= interval {
                                    if let Err(e) = crate::snapshot::save_to_file(&core, &path) {
                                        eprintln!("tenet-server: periodic snapshot failed: {e}");
                                    }
                                    last = Instant::now();
                                }
                            }
                        })?,
                )
            }
            _ => None,
        };
        let shutdown = Arc::clone(&core.shutdown);
        let outcome = loop {
            if shutdown.load(Ordering::Acquire) {
                break Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    core.stats.connections.fetch_add(1, Ordering::Relaxed);
                    match pool.try_submit((Instant::now(), stream)) {
                        Ok(()) => {}
                        Err(((_, stream), SubmitError::Busy | SubmitError::ShuttingDown)) => {
                            core.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            shed(stream, &core);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Fatal accept error (fd exhaustion, listener torn down):
                // still drain the pool so workers and admitted connections
                // are not stranded.
                Err(e) => break Err(e),
            }
        };
        pool.shutdown();
        if let Some(t) = snap_thread {
            let _ = t.join();
        }
        // One final save after the drain so an orderly shutdown persists
        // everything the last requests warmed.
        if let Some(path) = &core.config.snapshot_file {
            if let Err(e) = crate::snapshot::save_to_file(&core, path) {
                eprintln!("tenet-server: final snapshot failed: {e}");
            }
        }
        outcome
    }
}

/// Answers `503` on the accept thread when the pool refused a connection.
fn shed(mut stream: TcpStream, core: &Arc<WorkerCore>) {
    let _ = stream.set_write_timeout(Some(core.config.write_timeout));
    let body = Json::obj([(
        "error",
        Json::obj([
            ("kind", Json::from("busy")),
            ("message", Json::from("worker backlog full; retry later")),
        ]),
    )])
    .to_string();
    let _ = stream.write_all(&http::encode_response_with(
        503,
        "application/json",
        body.as_bytes(),
        false,
        &[("Retry-After", "1".to_string())],
    ));
}

/// Resolves a request's trace id at the edge: a client-sent id is
/// accepted (a garbled one degrades to a fresh id rather than an
/// error), and header-less requests are not traced — span recording is
/// opt-in per request so the untraced hot path pays nothing.
fn resolve_trace_id(req: &http::Request) -> Option<u64> {
    req.trace_id.as_deref().map(|text| {
        obs::TraceId::parse(text)
            .unwrap_or_else(obs::TraceId::generate)
            .0
    })
}

/// Serves one connection: parse → handle (via the core) → respond,
/// repeating for keep-alive/pipelined requests until close, error, or
/// drain. `queued_at` is when the accept loop admitted the connection;
/// the gap until the first parsed request is its traced queue phase.
fn serve_connection(mut stream: TcpStream, queued_at: Instant, core: &Arc<WorkerCore>) {
    let _ = stream.set_read_timeout(Some(core.config.read_timeout));
    let _ = stream.set_write_timeout(Some(core.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut rb = RequestBuffer::new(core.config.max_header, core.config.max_body);
    // The queue phase is attributed to the connection's first request
    // only; parse time accumulates across the incremental parser calls
    // (blocking socket reads — the client's own think time — excluded).
    let mut queue_us = queued_at.elapsed().as_micros() as u64;
    let mut parse_acc = Duration::ZERO;
    loop {
        // Drain every already-buffered request (pipelining) before the
        // next blocking read.
        loop {
            let t_parse = Instant::now();
            let parsed = rb.next_request();
            parse_acc += t_parse.elapsed();
            match parsed {
                Ok(Some(req)) => {
                    let draining = core.is_draining();
                    let keep_alive = req.keep_alive && !draining;
                    // The deadline is anchored the moment the request is
                    // fully parsed: queue/compute time debits it, network
                    // transfer before this point does not.
                    let deadline = req
                        .deadline_ms
                        .map(|ms| std::time::Instant::now() + Duration::from_millis(ms));
                    let edge = EdgeTimings {
                        queue_us: std::mem::take(&mut queue_us),
                        parse_us: parse_acc.as_micros() as u64,
                    };
                    parse_acc = Duration::ZERO;
                    let (status, body, trace) = core.handle_traced(
                        &req.method,
                        &req.path,
                        &req.body,
                        None,
                        deadline,
                        resolve_trace_id(&req),
                        edge,
                    );
                    let content_type = if req.path == "/metrics" {
                        "text/plain; version=0.0.4"
                    } else {
                        "application/json"
                    };
                    let bytes = match &trace {
                        Some(rec) => {
                            let mut extra =
                                vec![("X-Tenet-Trace-Id", obs::TraceId(rec.id).to_string())];
                            let timing = rec.server_timing();
                            if !timing.is_empty() {
                                extra.push(("X-Tenet-Server-Timing", timing));
                            }
                            http::encode_response_with(
                                status,
                                content_type,
                                &body,
                                keep_alive,
                                &extra,
                            )
                        }
                        None => http::encode_response(status, content_type, &body, keep_alive),
                    };
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is broken; report and hang up.
                    let body = Json::obj([(
                        "error",
                        Json::obj([
                            ("kind", Json::from("parse")),
                            ("message", Json::from(e.message())),
                        ]),
                    )])
                    .to_string();
                    let _ = stream.write_all(&http::encode_response(
                        e.status(),
                        "application/json",
                        body.as_bytes(),
                        false,
                    ));
                    // Count the rejected request too, keeping the
                    // `total >= completed` invariant of `/v1/stats`.
                    core.stats.requests.fetch_add(1, Ordering::Relaxed);
                    core.stats.record(e.status(), Duration::from_micros(0));
                    return;
                }
            }
        }
        match rb.fill_from(&mut stream) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(_) => return, // read timeout or reset: drop the connection
        }
    }
}
