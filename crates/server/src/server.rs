//! The listener: accept loop, connection lifecycle, and graceful drain.
//!
//! All request semantics (dedup, routing, counters) live in
//! [`WorkerCore`]; this module only owns the TCP side — accepting,
//! HTTP framing, keep-alive, and load shedding.

use crate::http::{self, RequestBuffer};
use crate::pool::{SubmitError, WorkerPool};
use crate::worker::WorkerCore;
use crate::ServerConfig;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tenet_core::json::Json;

/// A cheap, clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: stop accepting, finish in-flight work.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// A worker spawned onto its own thread by [`Server::spawn`]: the handle
/// for remote control plus the join handle for clean teardown. This is
/// how the sharding router's CLI entry point, the cluster test harness,
/// and the load generator all boot in-process workers.
pub struct SpawnedServer {
    handle: ServerHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedServer {
    /// The worker's remote control (clonable, thread-safe).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// The worker's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// Requests a graceful drain and waits for the worker to stop.
    /// Idempotent with an earlier cascaded shutdown: the flag is already
    /// set and the thread has (or is about to have) exited.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

/// A bound (but not yet running) analysis service.
pub struct Server {
    listener: TcpListener,
    core: Arc<WorkerCore>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `config.addr` and prepares the shared core.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Polling accept: wakes every few milliseconds to observe the
        // shutdown flag without platform signal machinery.
        listener.set_nonblocking(true)?;
        let core = WorkerCore::new(config);
        Ok(Server {
            listener,
            core,
            addr,
        })
    }

    /// Binds `config.addr` and runs the service on a new thread,
    /// returning the handles a supervisor (router, test harness, load
    /// generator) needs: bind errors surface here, run errors at join.
    pub fn spawn(config: ServerConfig) -> std::io::Result<SpawnedServer> {
        let server = Server::bind(config)?;
        let handle = server.handle();
        let thread = std::thread::Builder::new()
            .name(format!("tenet-server-{}", handle.addr().port()))
            .spawn(move || server.run())?;
        Ok(SpawnedServer { handle, thread })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The request-handling core behind this listener.
    pub fn core(&self) -> Arc<WorkerCore> {
        Arc::clone(&self.core)
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.core.shutdown),
            addr: self.addr,
        }
    }

    /// Runs until a graceful shutdown is requested, then drains.
    ///
    /// Every accepted connection is handed to a bounded worker pool; when
    /// the backlog is full the connection is answered `503` inline and
    /// closed. On shutdown the accept loop stops, admitted connections
    /// finish (bounded by the read timeout), and the workers join.
    pub fn run(self) -> std::io::Result<()> {
        let core = Arc::clone(&self.core);
        let pool_core = Arc::clone(&self.core);
        let pool = WorkerPool::new(
            "tenet-conn",
            core.config.threads,
            core.config.queue_capacity,
            move |stream: TcpStream| serve_connection(stream, &pool_core),
        );
        core.set_backlog_probe(pool.backlog_probe());
        let shutdown = Arc::clone(&core.shutdown);
        let outcome = loop {
            if shutdown.load(Ordering::Acquire) {
                break Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    core.stats.connections.fetch_add(1, Ordering::Relaxed);
                    match pool.try_submit(stream) {
                        Ok(()) => {}
                        Err((stream, SubmitError::Busy | SubmitError::ShuttingDown)) => {
                            core.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            shed(stream, &core);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Fatal accept error (fd exhaustion, listener torn down):
                // still drain the pool so workers and admitted connections
                // are not stranded.
                Err(e) => break Err(e),
            }
        };
        pool.shutdown();
        outcome
    }
}

/// Answers `503` on the accept thread when the pool refused a connection.
fn shed(mut stream: TcpStream, core: &Arc<WorkerCore>) {
    let _ = stream.set_write_timeout(Some(core.config.write_timeout));
    let body = Json::obj([(
        "error",
        Json::obj([
            ("kind", Json::from("busy")),
            ("message", Json::from("worker backlog full; retry later")),
        ]),
    )])
    .to_string();
    let _ = stream.write_all(&http::encode_response_with(
        503,
        "application/json",
        body.as_bytes(),
        false,
        &[("Retry-After", "1".to_string())],
    ));
}

/// Serves one connection: parse → handle (via the core) → respond,
/// repeating for keep-alive/pipelined requests until close, error, or
/// drain.
fn serve_connection(mut stream: TcpStream, core: &Arc<WorkerCore>) {
    let _ = stream.set_read_timeout(Some(core.config.read_timeout));
    let _ = stream.set_write_timeout(Some(core.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut rb = RequestBuffer::new(core.config.max_header, core.config.max_body);
    loop {
        // Drain every already-buffered request (pipelining) before the
        // next blocking read.
        loop {
            match rb.next_request() {
                Ok(Some(req)) => {
                    let draining = core.is_draining();
                    let keep_alive = req.keep_alive && !draining;
                    // The deadline is anchored the moment the request is
                    // fully parsed: queue/compute time debits it, network
                    // transfer before this point does not.
                    let deadline = req
                        .deadline_ms
                        .map(|ms| std::time::Instant::now() + Duration::from_millis(ms));
                    let (status, body) = core.handle_with_deadline(
                        &req.method,
                        &req.path,
                        &req.body,
                        None,
                        deadline,
                    );
                    let bytes =
                        http::encode_response(status, "application/json", &body, keep_alive);
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is broken; report and hang up.
                    let body = Json::obj([(
                        "error",
                        Json::obj([
                            ("kind", Json::from("parse")),
                            ("message", Json::from(e.message())),
                        ]),
                    )])
                    .to_string();
                    let _ = stream.write_all(&http::encode_response(
                        e.status(),
                        "application/json",
                        body.as_bytes(),
                        false,
                    ));
                    // Count the rejected request too, keeping the
                    // `total >= completed` invariant of `/v1/stats`.
                    core.stats.requests.fetch_add(1, Ordering::Relaxed);
                    core.stats.record(e.status(), Duration::from_micros(0));
                    return;
                }
            }
        }
        match rb.fill_from(&mut stream) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(_) => return, // read timeout or reset: drop the connection
        }
    }
}
