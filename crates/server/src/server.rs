//! The listener: accept loop, connection lifecycle, and graceful drain.

use crate::dedup::{CachedResponse, Claim, Dedup};
use crate::http::{self, RequestBuffer};
use crate::pool::{SubmitError, WorkerPool};
use crate::stats::ServerStats;
use crate::{handlers, ServerConfig};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tenet_core::json::Json;

/// State shared by the accept loop, the workers, and the handlers.
pub struct AppState {
    /// Service configuration (immutable after bind).
    pub config: ServerConfig,
    /// Request/latency counters.
    pub stats: ServerStats,
    /// The response/in-flight dedup layer.
    pub dedup: Arc<Dedup>,
    /// Set to start a graceful drain (shutdown endpoint, [`ServerHandle`]).
    pub shutdown: Arc<AtomicBool>,
    /// Bind time, for uptime reporting.
    pub started: Instant,
    /// Connections admitted but not yet picked up (filled in by the
    /// server; handlers read it for `/v1/stats`).
    backlog: std::sync::OnceLock<Box<dyn Fn() -> usize + Send + Sync>>,
}

impl AppState {
    /// Jobs waiting for a worker right now.
    pub fn backlog(&self) -> usize {
        self.backlog.get().map_or(0, |f| f())
    }
}

/// A cheap, clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: stop accepting, finish in-flight work.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// A worker spawned onto its own thread by [`Server::spawn`]: the handle
/// for remote control plus the join handle for clean teardown. This is
/// how the sharding router's CLI entry point, the cluster test harness,
/// and the load generator all boot in-process workers.
pub struct SpawnedServer {
    handle: ServerHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedServer {
    /// The worker's remote control (clonable, thread-safe).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// The worker's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// Requests a graceful drain and waits for the worker to stop.
    /// Idempotent with an earlier cascaded shutdown: the flag is already
    /// set and the thread has (or is about to have) exited.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

/// A bound (but not yet running) analysis service.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `config.addr` and prepares the shared state.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Polling accept: wakes every few milliseconds to observe the
        // shutdown flag without platform signal machinery.
        listener.set_nonblocking(true)?;
        let dedup = Dedup::new(config.cache_capacity);
        let state = Arc::new(AppState {
            config,
            stats: ServerStats::default(),
            dedup,
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            backlog: std::sync::OnceLock::new(),
        });
        Ok(Server {
            listener,
            state,
            addr,
        })
    }

    /// Binds `config.addr` and runs the service on a new thread,
    /// returning the handles a supervisor (router, test harness, load
    /// generator) needs: bind errors surface here, run errors at join.
    pub fn spawn(config: ServerConfig) -> std::io::Result<SpawnedServer> {
        let server = Server::bind(config)?;
        let handle = server.handle();
        let thread = std::thread::Builder::new()
            .name(format!("tenet-server-{}", handle.addr().port()))
            .spawn(move || server.run())?;
        Ok(SpawnedServer { handle, thread })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.state.shutdown),
            addr: self.addr,
        }
    }

    /// Runs until a graceful shutdown is requested, then drains.
    ///
    /// Every accepted connection is handed to a bounded worker pool; when
    /// the backlog is full the connection is answered `503` inline and
    /// closed. On shutdown the accept loop stops, admitted connections
    /// finish (bounded by the read timeout), and the workers join.
    pub fn run(self) -> std::io::Result<()> {
        let state = Arc::clone(&self.state);
        let pool_state = Arc::clone(&self.state);
        let pool = WorkerPool::new(
            "tenet-conn",
            state.config.threads,
            state.config.queue_capacity,
            move |stream: TcpStream| {
                // Attach the server's ISL counter handle so `/v1/stats`
                // attributes relational work to this server exactly.
                let _attached = pool_state.stats.isl_handle.attach();
                serve_connection(stream, &pool_state);
            },
        );
        let _ = state.backlog.set(pool.backlog_probe());
        let shutdown = Arc::clone(&state.shutdown);
        let outcome = loop {
            if shutdown.load(Ordering::Acquire) {
                break Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    state.stats.connections.fetch_add(1, Ordering::Relaxed);
                    match pool.try_submit(stream) {
                        Ok(()) => {}
                        Err((stream, SubmitError::Busy | SubmitError::ShuttingDown)) => {
                            state.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            shed(stream, &state);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Fatal accept error (fd exhaustion, listener torn down):
                // still drain the pool so workers and admitted connections
                // are not stranded.
                Err(e) => break Err(e),
            }
        };
        pool.shutdown();
        outcome
    }
}

/// Answers `503` on the accept thread when the pool refused a connection.
fn shed(mut stream: TcpStream, state: &Arc<AppState>) {
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let body = Json::obj([(
        "error",
        Json::obj([
            ("kind", Json::from("busy")),
            ("message", Json::from("worker backlog full; retry later")),
        ]),
    )])
    .to_string();
    let _ = stream.write_all(&http::encode_response(
        503,
        "application/json",
        body.as_bytes(),
        false,
    ));
}

/// Serves one connection: parse → (dedup) → handle → respond, repeating
/// for keep-alive/pipelined requests until close, error, or drain.
fn serve_connection(mut stream: TcpStream, state: &Arc<AppState>) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut rb = RequestBuffer::new(state.config.max_header, state.config.max_body);
    loop {
        // Drain every already-buffered request (pipelining) before the
        // next blocking read.
        loop {
            match rb.next_request() {
                Ok(Some(req)) => {
                    let draining = state.shutdown.load(Ordering::Acquire);
                    let keep_alive = req.keep_alive && !draining;
                    let bytes = process_request(&req, keep_alive, state);
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is broken; report and hang up.
                    let body = Json::obj([(
                        "error",
                        Json::obj([
                            ("kind", Json::from("parse")),
                            ("message", Json::from(e.message())),
                        ]),
                    )])
                    .to_string();
                    let _ = stream.write_all(&http::encode_response(
                        e.status(),
                        "application/json",
                        body.as_bytes(),
                        false,
                    ));
                    // Count the rejected request too, keeping the
                    // `total >= completed` invariant of `/v1/stats`.
                    state.stats.requests.fetch_add(1, Ordering::Relaxed);
                    state.stats.record(e.status(), Duration::from_micros(0));
                    return;
                }
            }
        }
        match rb.fill_from(&mut stream) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(_) => return, // read timeout or reset: drop the connection
        }
    }
}

/// Runs the router, converting an escaped panic (a bug in the analysis
/// engine on an adversarial input, or resource exhaustion inside a
/// spawn) into a structured 500 instead of letting it unwind through the
/// counters. Returns `cacheable = false` for the panic path: unlike a
/// deterministic analysis error, a panic may be transient (thread/memory
/// pressure), and a cached 500 would be replayed forever. Panic-poisoned
/// state is not a concern: the engine works on request-local data, and
/// the global memo cache is only ever an accelerator.
fn route_guarded(req: &http::Request, state: &Arc<AppState>) -> (handlers::Reply, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handlers::route(&req.method, &req.path, &req.body, state)
    })) {
        Ok(reply) => (reply, true),
        Err(_) => (
            handlers::Reply {
                status: 500,
                body: Json::obj([(
                    "error",
                    Json::obj([
                        ("kind", Json::from("internal")),
                        ("message", Json::from("handler panicked; see server log")),
                    ]),
                )]),
            },
            false,
        ),
    }
}

/// Handles one parsed request, returning the encoded response bytes.
fn process_request(req: &http::Request, keep_alive: bool, state: &Arc<AppState>) -> Vec<u8> {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    state.stats.in_flight.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let (status, body): (u16, Arc<Vec<u8>>) = if handlers::is_cacheable(&req.method, &req.path) {
        let key = crate::dedup::canonical_request(&req.method, &req.path, &req.body);
        match state.dedup.claim(&key) {
            Claim::Cached(resp) => (resp.status, resp.body),
            Claim::Leader(token) => {
                let (reply, cacheable) = route_guarded(req, state);
                let resp = CachedResponse {
                    status: reply.status,
                    body: Arc::new(reply.body.to_string().into_bytes()),
                };
                if cacheable {
                    state.dedup.publish(token, resp.clone());
                } else {
                    // Dropping the token abandons leadership: a waiter
                    // (or the next arrival) recomputes instead of
                    // inheriting a possibly-transient failure.
                    drop(token);
                }
                (resp.status, resp.body)
            }
        }
    } else {
        let (reply, _cacheable) = route_guarded(req, state);
        (reply.status, Arc::new(reply.body.to_string().into_bytes()))
    };
    state.stats.record(status, t0.elapsed());
    state.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
    http::encode_response(status, "application/json", &body, keep_alive)
}
