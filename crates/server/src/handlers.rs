//! Request routing and the analysis/DSE endpoint implementations.
//!
//! Error taxonomy mirrors the CLI's exit codes: what the CLI reports as a
//! usage or input error (exit 1/2) is a 400 here, what it reports as an
//! analysis failure (exit 3) is a 500. Every error body has the same
//! shape: `{"error": {"kind": "...", "message": "..."}}`.

use crate::server::AppState;
use std::sync::atomic::Ordering;
use tenet_core::json::Json;
use tenet_core::{export, presets, Analysis, AnalysisOptions, ArchSpec, Dataflow};
use tenet_dse::{enumerate_all, explore_parallel, pareto};
use tenet_frontend::{parse_arch, parse_problem, Problem};

/// A handler outcome: status code plus JSON entity.
pub struct Reply {
    /// HTTP status.
    pub status: u16,
    /// Entity body.
    pub body: Json,
}

impl Reply {
    fn ok(body: Json) -> Reply {
        Reply { status: 200, body }
    }

    fn error(status: u16, kind: &str, message: impl Into<String>) -> Reply {
        Reply {
            status,
            body: Json::obj([(
                "error",
                Json::obj([
                    ("kind", Json::from(kind)),
                    ("message", Json::from(message.into())),
                ]),
            )]),
        }
    }

    /// 400 — the request itself is malformed (CLI exit codes 1/2).
    fn bad_request(kind: &str, message: impl Into<String>) -> Reply {
        Reply::error(400, kind, message)
    }

    /// 500 — the request is well-formed but the analysis failed
    /// (CLI exit code 3).
    fn analysis(message: impl Into<String>) -> Reply {
        Reply::error(500, "analysis", message)
    }
}

/// Routes one request. `body` is the raw request body; dedup happens in
/// the connection layer, not here.
pub fn route(method: &str, path: &str, body: &[u8], state: &AppState) -> Reply {
    match (method, path) {
        ("GET", "/v1/healthz") => Reply::ok(Json::obj([("status", Json::from("ok"))])),
        ("GET", "/v1/stats") => Reply::ok(state.stats.to_json(
            state.dedup.stats(),
            state.started.elapsed(),
            state.backlog(),
        )),
        ("POST", "/v1/analyze") => match decode_body(body) {
            Ok(req) => analyze(&req, state),
            Err(r) => *r,
        },
        ("POST", "/v1/dse") => match decode_body(body) {
            Ok(req) => dse(&req, state),
            Err(r) => *r,
        },
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::Release);
            Reply::ok(Json::obj([("status", Json::from("draining"))]))
        }
        ("GET" | "POST", _) => Reply::error(404, "not_found", format!("no route for {path}")),
        _ => Reply::error(405, "method_not_allowed", format!("method {method}")),
    }
}

/// Whether responses for this route may enter the dedup layer.
/// Health/stats/shutdown are live views and must never be replayed.
pub fn is_cacheable(method: &str, path: &str) -> bool {
    method == "POST" && matches!(path, "/v1/analyze" | "/v1/dse")
}

fn decode_body(body: &[u8]) -> Result<Json, Box<Reply>> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Box::new(Reply::bad_request("parse", "request body is not UTF-8")))?;
    if text.trim().is_empty() {
        return Err(Box::new(Reply::bad_request(
            "parse",
            "empty request body; expected a JSON object",
        )));
    }
    let v = Json::parse(text).map_err(|e| Box::new(Reply::bad_request("parse", e.to_string())))?;
    if v.as_obj().is_none() {
        return Err(Box::new(Reply::bad_request(
            "parse",
            "request body must be a JSON object",
        )));
    }
    Ok(v)
}

/// Decodes the fields shared by `analyze` and `dse`: the problem text and
/// the architecture override.
fn load_problem(req: &Json) -> Result<Problem, Box<Reply>> {
    let source = req.get("problem").and_then(Json::as_str).ok_or_else(|| {
        Box::new(Reply::bad_request(
            "usage",
            "missing string field `problem`",
        ))
    })?;
    let mut problem = parse_problem(source).map_err(|e| {
        Box::new(Reply::bad_request(
            "parse",
            format!("problem parse error\n{}", e.render(source)),
        ))
    })?;
    match (req.get("arch"), req.get("preset")) {
        (Some(_), Some(_)) => {
            return Err(Box::new(Reply::bad_request(
                "usage",
                "give either `arch` or `preset`, not both",
            )))
        }
        (Some(arch), None) => {
            let text = arch
                .as_str()
                .ok_or_else(|| Box::new(Reply::bad_request("usage", "`arch` must be a string")))?;
            let arch = parse_arch(text).map_err(|e| {
                Box::new(Reply::bad_request(
                    "parse",
                    format!("arch parse error\n{}", e.render(text)),
                ))
            })?;
            problem.arch = Some(arch);
        }
        (None, Some(preset)) => {
            let name = preset.as_str().ok_or_else(|| {
                Box::new(Reply::bad_request("usage", "`preset` must be a string"))
            })?;
            let arch = presets::by_name(name).ok_or_else(|| {
                Box::new(Reply::bad_request(
                    "usage",
                    format!(
                        "unknown preset `{name}` (known: {})",
                        presets::names().join(", ")
                    ),
                ))
            })?;
            problem.arch = Some(arch);
        }
        (None, None) => {}
    }
    Ok(problem)
}

fn require_arch(problem: &Problem) -> Result<&ArchSpec, Box<Reply>> {
    problem.arch.as_ref().ok_or_else(|| {
        Box::new(Reply::bad_request(
            "usage",
            "no architecture: add an `arch { ... }` block to the problem text, or pass \
             `arch` or `preset`",
        ))
    })
}

/// Optional non-negative integer field.
fn opt_u64(req: &Json, key: &str) -> Result<Option<u64>, Box<Reply>> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            Box::new(Reply::bad_request(
                "usage",
                format!("`{key}` must be a non-negative integer"),
            ))
        }),
    }
}

/// `POST /v1/analyze` — one full performance report per selected
/// dataflow.
fn analyze(req: &Json, _state: &AppState) -> Reply {
    let problem = match load_problem(req) {
        Ok(p) => p,
        Err(r) => return *r,
    };
    let arch = match require_arch(&problem) {
        Ok(a) => a,
        Err(r) => return *r,
    };
    if problem.dataflows.is_empty() {
        return Reply::bad_request("usage", "the problem text declares no dataflow");
    }
    let mut opts = AnalysisOptions::default();
    match opt_u64(req, "window") {
        Ok(Some(w)) if w <= u32::MAX as u64 => opts.reuse_window = w as u32,
        Ok(Some(_)) => return Reply::bad_request("usage", "`window` out of range"),
        Ok(None) => {}
        Err(r) => return *r,
    }
    let selected: Vec<(usize, &Dataflow)> = match opt_u64(req, "dataflow") {
        Ok(Some(n)) => {
            let n = n as usize;
            match problem.dataflows.get(n) {
                Some(df) => vec![(n, df)],
                None => {
                    return Reply::bad_request(
                        "usage",
                        format!(
                            "`dataflow` {n} out of range (problem has {})",
                            problem.dataflows.len()
                        ),
                    )
                }
            }
        }
        Ok(None) => problem.dataflows.iter().enumerate().collect(),
        Err(r) => return *r,
    };
    let mut reports = Vec::with_capacity(selected.len());
    for (idx, df) in selected {
        let report = Analysis::with_options(&problem.kernel, df, arch, opts.clone())
            .and_then(|a| a.report());
        match report {
            Ok(r) => {
                let mut obj = vec![("dataflow_index".to_string(), Json::from(idx))];
                if let Json::Obj(pairs) = export::to_json(&r) {
                    obj.extend(pairs);
                }
                reports.push(Json::Obj(obj));
            }
            Err(e) => return Reply::analysis(format!("dataflow #{idx}: {e}")),
        }
    }
    Reply::ok(Json::obj([
        ("op", Json::from(problem.kernel.name())),
        ("arch", Json::from(arch.name.as_str())),
        ("reports", Json::Arr(reports)),
    ]))
}

/// `POST /v1/dse` — enumerate candidate dataflows under hardware
/// constraints, evaluate them in parallel, return the ranked points and
/// the latency/SBW Pareto frontier.
fn dse(req: &Json, state: &AppState) -> Reply {
    let problem = match load_problem(req) {
        Ok(p) => p,
        Err(r) => return *r,
    };
    let arch = match require_arch(&problem) {
        Ok(a) => a,
        Err(r) => return *r,
    };
    let pe = match opt_u64(req, "pe") {
        Ok(Some(p)) if (1..=1 << 20).contains(&p) => p as i64,
        Ok(Some(p)) => {
            return Reply::bad_request("usage", format!("`pe` {p} out of range [1, 2^20]"))
        }
        Ok(None) => *arch.pe_dims.first().unwrap_or(&8),
        Err(r) => return *r,
    };
    let top = match opt_u64(req, "top") {
        Ok(Some(t)) => (t as usize).min(1000),
        Ok(None) => 10,
        Err(r) => return *r,
    };
    let threads = match opt_u64(req, "threads") {
        Ok(Some(t)) if t >= 1 => (t as usize).min(state.config.dse_thread_cap),
        Ok(Some(_)) => return Reply::bad_request("usage", "`threads` must be >= 1"),
        Ok(None) => state.config.dse_thread_cap.min(4),
        Err(r) => return *r,
    };
    let pe1d = arch.pe_count().min(i64::MAX as u128) as i64;
    let candidates = match enumerate_all(&problem.kernel, pe, pe1d) {
        Ok(c) => c,
        Err(e) => return Reply::analysis(format!("enumeration failed: {e}")),
    };
    let points = match explore_parallel(&problem.kernel, arch, &candidates, threads) {
        Ok(p) => p,
        Err(e) => return Reply::analysis(format!("exploration failed: {e}")),
    };
    let frontier = pareto(&points);
    Reply::ok(Json::obj([
        ("op", Json::from(problem.kernel.name())),
        ("arch", Json::from(arch.name.as_str())),
        ("explored", Json::from(candidates.len())),
        ("valid", Json::from(points.len())),
        (
            "points",
            Json::Arr(points.iter().take(top).map(|p| p.to_json()).collect()),
        ),
        (
            "pareto",
            Json::Arr(frontier.iter().map(|p| p.to_json()).collect()),
        ),
    ]))
}
