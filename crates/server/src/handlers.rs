//! Request routing and the analysis/DSE endpoint implementations.
//!
//! Error taxonomy mirrors the CLI's exit codes: what the CLI reports as a
//! usage or input error (exit 1/2) is a 400 here, what it reports as an
//! analysis failure (exit 3) is a 500. Every error body has the same
//! shape: `{"error": {"kind": "...", "message": "..."}}`.

use crate::dedup::CachedResponse;
use crate::worker::WorkerCore;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tenet_core::json::Json;
use tenet_core::{export, presets, Analysis, AnalysisOptions, ArchSpec, Dataflow};
use tenet_dse::{enumerate_all, explore_parallel, pareto};
use tenet_frontend::{parse_arch, parse_problem, Problem};

/// A handler outcome: status code plus JSON entity.
#[derive(Debug)]
pub struct Reply {
    /// HTTP status.
    pub status: u16,
    /// Entity body.
    pub body: Json,
    /// Whether this is a deadline-degraded answer (a `504` or a
    /// `"truncated": true` partial result). Degraded replies must never
    /// enter the dedup cache: the same canonical request under a
    /// generous deadline deserves the full answer, not a replay of a
    /// timing accident.
    pub degraded: bool,
}

impl Reply {
    fn ok(body: Json) -> Reply {
        Reply {
            status: 200,
            body,
            degraded: false,
        }
    }

    /// A partial (truncated) 200 produced because the deadline expired
    /// mid-computation.
    fn degraded_ok(body: Json) -> Reply {
        Reply {
            status: 200,
            body,
            degraded: true,
        }
    }

    fn error(status: u16, kind: &str, message: impl Into<String>) -> Reply {
        Reply {
            status,
            body: Json::obj([(
                "error",
                Json::obj([
                    ("kind", Json::from(kind)),
                    ("message", Json::from(message.into())),
                ]),
            )]),
            degraded: false,
        }
    }

    /// 504 — the request's deadline expired before any useful partial
    /// result existed.
    fn deadline_exceeded() -> Reply {
        let mut reply = Reply::error(
            504,
            "deadline_exceeded",
            "request deadline expired before the computation finished",
        );
        reply.degraded = true;
        reply
    }

    /// 400 — the request itself is malformed (CLI exit codes 1/2).
    fn bad_request(kind: &str, message: impl Into<String>) -> Reply {
        Reply::error(400, kind, message)
    }

    /// 500 — the request is well-formed but the analysis failed
    /// (CLI exit code 3).
    fn analysis(message: impl Into<String>) -> Reply {
        Reply::error(500, "analysis", message)
    }
}

/// Routes one request. `body` is the raw request body; dedup happens in
/// the connection layer, not here. `deadline` is the client's remaining
/// time budget (from `X-Tenet-Deadline-Ms`, already debited for router
/// time); the long-running endpoints check it between units of work and
/// degrade instead of computing past it.
pub fn route(
    method: &str,
    path: &str,
    body: &[u8],
    state: &WorkerCore,
    deadline: Option<Instant>,
) -> Reply {
    match (method, path) {
        ("GET", "/v1/healthz") => Reply::ok(Json::obj([("status", Json::from("ok"))])),
        ("GET", "/v1/stats") => Reply::ok(state.stats.to_json(
            state.dedup.stats(),
            state.started.elapsed(),
            state.backlog(),
        )),
        ("POST", "/v1/analyze") => match decode_body(body) {
            Ok(req) => analyze(&req, state, deadline),
            Err(r) => *r,
        },
        ("POST", "/v1/dse") => match decode_body(body) {
            Ok(req) => dse(&req, state, deadline),
            Err(r) => *r,
        },
        ("POST", "/v1/warm") => match decode_body(body) {
            Ok(req) => warm(&req, state),
            Err(r) => *r,
        },
        ("GET", p) if p == "/v1/snapshot" || p.starts_with("/v1/snapshot?") => {
            snapshot_get(p, state)
        }
        ("POST", "/v1/snapshot") => snapshot_save(state),
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::Release);
            Reply::ok(Json::obj([("status", Json::from("draining"))]))
        }
        ("GET" | "POST", _) => Reply::error(404, "not_found", format!("no route for {path}")),
        _ => Reply::error(405, "method_not_allowed", format!("method {method}")),
    }
}

/// Whether responses for this route may enter the dedup layer.
/// Health/stats/shutdown are live views and must never be replayed.
pub fn is_cacheable(method: &str, path: &str) -> bool {
    method == "POST" && matches!(path, "/v1/analyze" | "/v1/dse")
}

fn decode_body(body: &[u8]) -> Result<Json, Box<Reply>> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Box::new(Reply::bad_request("parse", "request body is not UTF-8")))?;
    if text.trim().is_empty() {
        return Err(Box::new(Reply::bad_request(
            "parse",
            "empty request body; expected a JSON object",
        )));
    }
    let v = Json::parse(text).map_err(|e| Box::new(Reply::bad_request("parse", e.to_string())))?;
    if v.as_obj().is_none() {
        return Err(Box::new(Reply::bad_request(
            "parse",
            "request body must be a JSON object",
        )));
    }
    Ok(v)
}

/// Decodes the fields shared by `analyze` and `dse`: the problem text and
/// the architecture override.
fn load_problem(req: &Json) -> Result<Problem, Box<Reply>> {
    let source = req.get("problem").and_then(Json::as_str).ok_or_else(|| {
        Box::new(Reply::bad_request(
            "usage",
            "missing string field `problem`",
        ))
    })?;
    let mut problem = parse_problem(source).map_err(|e| {
        Box::new(Reply::bad_request(
            "parse",
            format!("problem parse error\n{}", e.render(source)),
        ))
    })?;
    match (req.get("arch"), req.get("preset")) {
        (Some(_), Some(_)) => {
            return Err(Box::new(Reply::bad_request(
                "usage",
                "give either `arch` or `preset`, not both",
            )))
        }
        (Some(arch), None) => {
            let text = arch
                .as_str()
                .ok_or_else(|| Box::new(Reply::bad_request("usage", "`arch` must be a string")))?;
            let arch = parse_arch(text).map_err(|e| {
                Box::new(Reply::bad_request(
                    "parse",
                    format!("arch parse error\n{}", e.render(text)),
                ))
            })?;
            problem.arch = Some(arch);
        }
        (None, Some(preset)) => {
            let name = preset.as_str().ok_or_else(|| {
                Box::new(Reply::bad_request("usage", "`preset` must be a string"))
            })?;
            let arch = presets::by_name(name).ok_or_else(|| {
                Box::new(Reply::bad_request(
                    "usage",
                    format!(
                        "unknown preset `{name}` (known: {})",
                        presets::names().join(", ")
                    ),
                ))
            })?;
            problem.arch = Some(arch);
        }
        (None, None) => {}
    }
    Ok(problem)
}

fn require_arch(problem: &Problem) -> Result<&ArchSpec, Box<Reply>> {
    problem.arch.as_ref().ok_or_else(|| {
        Box::new(Reply::bad_request(
            "usage",
            "no architecture: add an `arch { ... }` block to the problem text, or pass \
             `arch` or `preset`",
        ))
    })
}

/// Optional non-negative integer field.
fn opt_u64(req: &Json, key: &str) -> Result<Option<u64>, Box<Reply>> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            Box::new(Reply::bad_request(
                "usage",
                format!("`{key}` must be a non-negative integer"),
            ))
        }),
    }
}

/// Combines the transport-level deadline with an optional `deadline_ms`
/// body field (the earlier of the two wins). The body spelling exists so
/// clients that cannot set headers still get deadline semantics.
fn effective_deadline(
    req: &Json,
    deadline: Option<Instant>,
) -> Result<Option<Instant>, Box<Reply>> {
    match opt_u64(req, "deadline_ms")? {
        None => Ok(deadline),
        Some(ms) => {
            let from_body = Instant::now() + Duration::from_millis(ms);
            Ok(Some(match deadline {
                Some(d) => d.min(from_body),
                None => from_body,
            }))
        }
    }
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// `POST /v1/analyze` — one full performance report per selected
/// dataflow.
fn analyze(req: &Json, _state: &WorkerCore, deadline: Option<Instant>) -> Reply {
    let problem = match load_problem(req) {
        Ok(p) => p,
        Err(r) => return *r,
    };
    let arch = match require_arch(&problem) {
        Ok(a) => a,
        Err(r) => return *r,
    };
    if problem.dataflows.is_empty() {
        return Reply::bad_request("usage", "the problem text declares no dataflow");
    }
    let mut opts = AnalysisOptions::default();
    match opt_u64(req, "window") {
        Ok(Some(w)) if w <= u32::MAX as u64 => opts.reuse_window = w as u32,
        Ok(Some(_)) => return Reply::bad_request("usage", "`window` out of range"),
        Ok(None) => {}
        Err(r) => return *r,
    }
    let selected: Vec<(usize, &Dataflow)> = match opt_u64(req, "dataflow") {
        Ok(Some(n)) => {
            let n = n as usize;
            match problem.dataflows.get(n) {
                Some(df) => vec![(n, df)],
                None => {
                    return Reply::bad_request(
                        "usage",
                        format!(
                            "`dataflow` {n} out of range (problem has {})",
                            problem.dataflows.len()
                        ),
                    )
                }
            }
        }
        Ok(None) => problem.dataflows.iter().enumerate().collect(),
        Err(r) => return *r,
    };
    let deadline = match effective_deadline(req, deadline) {
        Ok(d) => d,
        Err(r) => return *r,
    };
    let mut reports = Vec::with_capacity(selected.len());
    let mut truncated = false;
    for (idx, df) in selected {
        // Check between dataflows: each analysis is an indivisible unit
        // of ISL work, so this is the finest safe cancellation point.
        if expired(deadline) {
            if reports.is_empty() {
                return Reply::deadline_exceeded();
            }
            truncated = true;
            break;
        }
        let report = Analysis::with_options(&problem.kernel, df, arch, opts.clone())
            .and_then(|a| a.report());
        match report {
            Ok(r) => {
                let mut obj = vec![("dataflow_index".to_string(), Json::from(idx))];
                if let Json::Obj(pairs) = export::to_json(&r) {
                    obj.extend(pairs);
                }
                reports.push(Json::Obj(obj));
            }
            Err(e) => return Reply::analysis(format!("dataflow #{idx}: {e}")),
        }
    }
    let mut body = vec![
        ("op".to_string(), Json::from(problem.kernel.name())),
        ("arch".to_string(), Json::from(arch.name.as_str())),
        ("reports".to_string(), Json::Arr(reports)),
    ];
    if truncated {
        // Appended only on the degraded path so complete responses stay
        // byte-identical with deadline-free ones.
        body.push(("truncated".to_string(), Json::from(true)));
        return Reply::degraded_ok(Json::Obj(body));
    }
    Reply::ok(Json::Obj(body))
}

/// `POST /v1/warm` — replication write-through from the sharding router:
/// stores a response computed by the key's primary owner in this worker's
/// dedup cache, so the key survives the primary's death as a warm hit
/// instead of a cold recompute. Body: `{"key": <canonical request
/// text>, "status": <u16>, "body": <response entity as a string>}`.
/// Never cacheable itself (see [`is_cacheable`]) and never proxied — it
/// addresses one specific replica.
fn warm(req: &Json, state: &WorkerCore) -> Reply {
    let key = match req.get("key").and_then(Json::as_str) {
        Some(k) if !k.is_empty() => k,
        _ => return Reply::bad_request("usage", "missing non-empty string field `key`"),
    };
    let status = match req.get("status").and_then(Json::as_u64) {
        Some(s) if (100..=599).contains(&s) => s as u16,
        _ => return Reply::bad_request("usage", "`status` must be an HTTP status in [100, 599]"),
    };
    let body = match req.get("body").and_then(Json::as_str) {
        Some(b) => b,
        None => return Reply::bad_request("usage", "missing string field `body`"),
    };
    state.dedup.insert(
        key,
        CachedResponse {
            status,
            body: Arc::new(body.as_bytes().to_vec()),
        },
    );
    Reply::ok(Json::obj([
        ("status", Json::from("warmed")),
        ("entries", Json::from(state.dedup.stats().entries)),
    ]))
}

/// `GET /v1/snapshot[?section=dedup|isl]` — the warm-state payload as
/// JSON: the response LRU (and/or) the ISL memo context in re-parseable
/// text form. This is what the router's ring-change warm shipper reads
/// from surviving owners (`section=dedup`), and what operators can pull
/// for ad-hoc state inspection. Never cacheable (see [`is_cacheable`]):
/// it is a live view.
fn snapshot_get(path: &str, state: &WorkerCore) -> Reply {
    let query = path.split_once('?').map(|(_, q)| q);
    let section = query.and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("section=")));
    match crate::snapshot::Section::parse(section) {
        Some(s) => Reply::ok(crate::snapshot::capture(state, s)),
        None => Reply::bad_request(
            "usage",
            format!(
                "bad `section` value `{}` (known: dedup, isl)",
                section.unwrap_or_default()
            ),
        ),
    }
}

/// `POST /v1/snapshot` — capture the full warm state and write it to the
/// configured snapshot file (atomic tmp+rename). 400 when the worker was
/// booted without `--snapshot-file`.
fn snapshot_save(state: &WorkerCore) -> Reply {
    let Some(path) = state.config.snapshot_file.as_deref() else {
        return Reply::bad_request(
            "usage",
            "no snapshot file configured; boot with --snapshot-file PATH",
        );
    };
    match crate::snapshot::save_to_file(state, path) {
        Ok(report) => Reply::ok(Json::obj([
            ("status", Json::from("saved")),
            ("path", Json::from(path.display().to_string())),
            ("bytes", Json::from(report.bytes)),
            ("dedup_entries", Json::from(report.dedup_entries)),
            ("isl_memo", Json::from(report.isl_memo)),
        ])),
        Err(e) => Reply::error(500, "io", format!("snapshot write failed: {e}")),
    }
}

/// The keys a `/v1/dse` point object carries; the `fields` filter
/// selects a subset of these.
const POINT_FIELDS: [&str; 4] = ["dataflow", "latency", "sbw", "report"];

/// The half-open index range `offset`/`limit` select out of `len` ranked
/// points. An offset past the end and a zero limit are both valid and
/// yield an empty page; the end saturates at `len`.
fn page_bounds(len: usize, offset: usize, limit: usize) -> (usize, usize) {
    let start = offset.min(len);
    let end = start.saturating_add(limit).min(len);
    (start, end)
}

/// Decodes the optional `fields` filter: an array of point-object keys.
/// Unknown keys and non-string entries are usage errors (a typo silently
/// dropping a field would be much harder to notice than a 400).
fn parse_fields(req: &Json) -> Result<Option<Vec<String>>, Box<Reply>> {
    match req.get("fields") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Arr(items)) => {
            let mut fields = Vec::with_capacity(items.len());
            for item in items {
                let name = item.as_str().ok_or_else(|| {
                    Box::new(Reply::bad_request(
                        "usage",
                        "`fields` entries must be strings",
                    ))
                })?;
                if !POINT_FIELDS.contains(&name) {
                    return Err(Box::new(Reply::bad_request(
                        "usage",
                        format!(
                            "unknown field `{name}` (known: {})",
                            POINT_FIELDS.join(", ")
                        ),
                    )));
                }
                if !fields.iter().any(|f| f == name) {
                    fields.push(name.to_string());
                }
            }
            Ok(Some(fields))
        }
        Some(_) => Err(Box::new(Reply::bad_request(
            "usage",
            "`fields` must be an array of strings",
        ))),
    }
}

/// Projects one serialized point onto the selected fields, preserving the
/// point's own key order so responses stay canonical.
fn select_fields(point: Json, fields: &[String]) -> Json {
    match point {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| fields.iter().any(|f| f == k))
                .collect(),
        ),
        other => other,
    }
}

/// `POST /v1/dse` — enumerate candidate dataflows under hardware
/// constraints, evaluate them in parallel, return the ranked points and
/// the latency/SBW Pareto frontier.
fn dse(req: &Json, state: &WorkerCore, deadline: Option<Instant>) -> Reply {
    let problem = match load_problem(req) {
        Ok(p) => p,
        Err(r) => return *r,
    };
    let arch = match require_arch(&problem) {
        Ok(a) => a,
        Err(r) => return *r,
    };
    let pe = match opt_u64(req, "pe") {
        Ok(Some(p)) if (1..=1 << 20).contains(&p) => p as i64,
        Ok(Some(p)) => {
            return Reply::bad_request("usage", format!("`pe` {p} out of range [1, 2^20]"))
        }
        Ok(None) => *arch.pe_dims.first().unwrap_or(&8),
        Err(r) => return *r,
    };
    // `limit` + `offset` paginate the ranked points; `top` is the older
    // spelling of `limit` (kept for existing clients, same cap).
    let limit = match (opt_u64(req, "limit"), opt_u64(req, "top")) {
        (Ok(Some(_)), Ok(Some(_))) => {
            return Reply::bad_request("usage", "give either `limit` or `top`, not both")
        }
        (Ok(Some(l)), Ok(None)) | (Ok(None), Ok(Some(l))) => (l as usize).min(1000),
        (Ok(None), Ok(None)) => 10,
        (Err(r), _) | (_, Err(r)) => return *r,
    };
    let offset = match opt_u64(req, "offset") {
        Ok(Some(o)) => o.min(usize::MAX as u64) as usize,
        Ok(None) => 0,
        Err(r) => return *r,
    };
    let fields = match parse_fields(req) {
        Ok(f) => f,
        Err(r) => return *r,
    };
    let threads = match opt_u64(req, "threads") {
        Ok(Some(t)) if t >= 1 => (t as usize).min(state.config.dse_thread_cap),
        Ok(Some(_)) => return Reply::bad_request("usage", "`threads` must be >= 1"),
        Ok(None) => state.config.dse_thread_cap.min(4),
        Err(r) => return *r,
    };
    let deadline = match effective_deadline(req, deadline) {
        Ok(d) => d,
        Err(r) => return *r,
    };
    if expired(deadline) {
        return Reply::deadline_exceeded();
    }
    let pe1d = arch.pe_count().min(i64::MAX as u128) as i64;
    let candidates = match enumerate_all(&problem.kernel, pe, pe1d) {
        Ok(c) => c,
        Err(e) => return Reply::analysis(format!("enumeration failed: {e}")),
    };
    // With a deadline, the sweep runs in small chunks so expiry is
    // observed between chunks: `explore_parallel` itself has no
    // cancellation, so the chunk size bounds the overshoot past the
    // deadline. Without one, a single call keeps the happy path
    // identical to the deadline-free service.
    let mut truncated = false;
    let points = match deadline {
        None => match explore_parallel(&problem.kernel, arch, &candidates, threads) {
            Ok(p) => p,
            Err(e) => return Reply::analysis(format!("exploration failed: {e}")),
        },
        Some(dl) => {
            let chunk_size = (threads * 2).max(1);
            let total_chunks = candidates.len().div_ceil(chunk_size.max(1));
            let mut points = Vec::new();
            let mut chunks_done = 0usize;
            for chunk in candidates.chunks(chunk_size) {
                if Instant::now() >= dl {
                    truncated = true;
                    break;
                }
                match explore_parallel(&problem.kernel, arch, chunk, threads) {
                    Ok(mut p) => points.append(&mut p),
                    Err(e) => return Reply::analysis(format!("exploration failed: {e}")),
                }
                chunks_done += 1;
                // Chunk progress lands on the request's trace timeline,
                // making "where did the DSE sweep stop" answerable.
                if tenet_core::obs::is_active() {
                    tenet_core::obs::add_event(
                        "dse_chunk",
                        format!("{chunks_done}/{total_chunks}"),
                    );
                }
            }
            if truncated && chunks_done == 0 {
                return Reply::deadline_exceeded();
            }
            points
        }
    };
    let frontier = pareto(&points);
    let project = |p: &tenet_dse::DesignPoint| match &fields {
        Some(f) => select_fields(p.to_json(), f),
        None => p.to_json(),
    };
    let (start, end) = page_bounds(points.len(), offset, limit);
    let mut body = vec![
        ("op".to_string(), Json::from(problem.kernel.name())),
        ("arch".to_string(), Json::from(arch.name.as_str())),
        ("explored".to_string(), Json::from(candidates.len())),
        ("valid".to_string(), Json::from(points.len())),
        ("offset".to_string(), Json::from(start)),
        ("limit".to_string(), Json::from(limit)),
        (
            "points".to_string(),
            Json::Arr(points[start..end].iter().map(project).collect()),
        ),
        (
            "pareto".to_string(),
            Json::Arr(frontier.iter().map(|p| project(p)).collect()),
        ),
    ];
    if truncated {
        // The partial frontier is explicitly marked; full responses stay
        // byte-identical with the deadline-free encoding.
        body.push(("truncated".to_string(), Json::from(true)));
        return Reply::degraded_ok(Json::Obj(body));
    }
    Reply::ok(Json::Obj(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_bounds_boundary_cases() {
        // Plain page inside the range.
        assert_eq!(page_bounds(10, 2, 3), (2, 5));
        // Limit runs past the end: truncated, not an error.
        assert_eq!(page_bounds(10, 8, 5), (8, 10));
        // Offset exactly at / past the end: empty page anchored at len.
        assert_eq!(page_bounds(10, 10, 3), (10, 10));
        assert_eq!(page_bounds(10, 9999, 3), (10, 10));
        // Limit 0: empty page at the requested offset.
        assert_eq!(page_bounds(10, 4, 0), (4, 4));
        // Empty result set.
        assert_eq!(page_bounds(0, 0, 10), (0, 0));
        // offset + limit overflowing usize must saturate, not wrap.
        assert_eq!(page_bounds(10, usize::MAX, usize::MAX), (10, 10));
        assert_eq!(page_bounds(10, 1, usize::MAX), (1, 10));
    }

    #[test]
    fn parse_fields_accepts_known_and_rejects_unknown() {
        let req = Json::parse(r#"{"fields": ["latency", "sbw"]}"#).unwrap();
        let fields = parse_fields(&req).unwrap().unwrap();
        assert_eq!(fields, vec!["latency".to_string(), "sbw".to_string()]);

        // Duplicates collapse.
        let req = Json::parse(r#"{"fields": ["latency", "latency"]}"#).unwrap();
        assert_eq!(parse_fields(&req).unwrap().unwrap().len(), 1);

        // Absent / null means "no filter".
        assert!(parse_fields(&Json::parse("{}").unwrap()).unwrap().is_none());
        let req = Json::parse(r#"{"fields": null}"#).unwrap();
        assert!(parse_fields(&req).unwrap().is_none());

        // Unknown field is a usage error naming the known set.
        let req = Json::parse(r#"{"fields": ["latency", "bogus"]}"#).unwrap();
        let reply = parse_fields(&req).unwrap_err();
        assert_eq!(reply.status, 400);
        let msg = reply.body.to_string();
        assert!(msg.contains("bogus") && msg.contains("dataflow"), "{msg}");

        // Non-string entries and non-array shapes are usage errors.
        let req = Json::parse(r#"{"fields": [1]}"#).unwrap();
        assert_eq!(parse_fields(&req).unwrap_err().status, 400);
        let req = Json::parse(r#"{"fields": "latency"}"#).unwrap();
        assert_eq!(parse_fields(&req).unwrap_err().status, 400);
    }

    #[test]
    fn select_fields_projects_in_point_order() {
        let point =
            Json::parse(r#"{"dataflow": {"name": null}, "latency": 3.0, "sbw": 1.5}"#).unwrap();
        // Filter order must not matter: the point's own order wins.
        let fields = vec!["sbw".to_string(), "latency".to_string()];
        let projected = select_fields(point, &fields);
        assert_eq!(projected.to_string(), r#"{"latency":3,"sbw":1.5}"#);
    }
}
