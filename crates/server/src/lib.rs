//! # tenet-server
//!
//! A dependency-free concurrent HTTP/JSON analysis service over the
//! TENET performance model: the ROADMAP's "serve dataflow-cost queries
//! as a production system" step. Everything is built on `std` —
//! `TcpListener`, a hand-rolled HTTP/1.1 codec, a bounded worker pool,
//! and the shared JSON module in `tenet_core::json`.
//!
//! ## API
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/analyze` | problem text (+ arch/preset) → full performance report(s) |
//! | `POST /v1/dse` | problem text + constraints → ranked points + Pareto frontier |
//! | `GET /v1/healthz` | liveness |
//! | `GET /v1/stats` | counters, latency histogram, dedup and ISL-cache hit rates |
//! | `GET /metrics` | the same counters in Prometheus text exposition format |
//! | `GET /v1/trace/<id>` | the recorded span timeline of one request |
//! | `GET /v1/trace/slow?ms=N` | recent slowest request timelines |
//! | `POST /v1/warm` | replication write-through: store another shard's answer (router-internal) |
//! | `GET /v1/snapshot[?section=dedup\|isl]` | the warm-state payload (response LRU + ISL memo) as JSON |
//! | `POST /v1/snapshot` | write the warm state to the configured `--snapshot-file` (atomic tmp+rename) |
//! | `POST /v1/shutdown` | graceful drain (stop accepting, finish in-flight) |
//!
//! ## Layers
//!
//! * [`http`] — incremental request parsing (split reads, pipelining,
//!   size limits) and response encoding.
//! * [`pool`] — the bounded worker pool; full backlog sheds load with
//!   `503` instead of queueing unboundedly.
//! * [`dedup`] — in-flight request deduplication plus a response LRU
//!   keyed on the canonicalized request, layered over the process-wide
//!   ISL memo context: identical hot queries from many clients cost one
//!   analysis and get bit-identical bytes. The canonicalization is
//!   public ([`canonical_request`] / [`canonical_key`]) because the
//!   sharding router (`tenet-router`) hashes the same identity to keep
//!   every repeated query on the shard that already owns its answer.
//! * [`stats`] — counters and a lock-free latency histogram.
//! * [`handlers`] — routing and the endpoint implementations; errors
//!   mirror the CLI's exit-code taxonomy (4xx usage/parse, 5xx analysis).
//! * [`worker`] — [`WorkerCore`], the whole request path (counting,
//!   dedup, routing, attribution) decoupled from the listener, so the
//!   sharding router can dispatch into a worker in-process without a
//!   socket or an HTTP reframe.
//!
//! ```no_run
//! let config = tenet_server::ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..Default::default()
//! };
//! let server = tenet_server::Server::bind(config)?;
//! println!("listening on {}", server.local_addr());
//! let handle = server.handle(); // shutdown from another thread
//! server.run()?;
//! # drop(handle);
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod dedup;
pub mod handlers;
pub mod http;
pub mod pool;
mod server;
pub mod snapshot;
pub mod stats;
pub mod worker;

pub use dedup::{canonical_key, canonical_request};
pub use server::{Server, ServerHandle, SpawnedServer};
pub use worker::WorkerCore;

use std::time::Duration;

/// Service configuration. `Default` is tuned for a small host; every
/// knob exists so tests (tiny timeouts, ephemeral ports) and production
/// (bigger pools) can share the code path.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port `0` for ephemeral).
    pub addr: String,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Accepted connections allowed to wait for a worker before the
    /// server sheds load with `503`.
    pub queue_capacity: usize,
    /// Per-connection read timeout (also bounds drain time at shutdown).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Maximum request-body size in bytes (`413` beyond).
    pub max_body: usize,
    /// Maximum header-block size in bytes (`431` beyond).
    pub max_header: usize,
    /// Response-LRU capacity (entries).
    pub cache_capacity: usize,
    /// Upper bound on the `threads` a single `/v1/dse` request may ask
    /// `explore_parallel` for.
    pub dse_thread_cap: usize,
    /// Capacity of each per-process trace ring (recent + slow); `0`
    /// disables request tracing entirely.
    pub trace_buffer: usize,
    /// Requests at or above this end-to-end latency also enter the
    /// slow-trace ring served by `GET /v1/trace/slow`.
    pub slow_ms: u64,
    /// Warm-state snapshot file: restored at boot when present, written
    /// by `POST /v1/snapshot`, by the periodic writer
    /// ([`snapshot_interval`](ServerConfig::snapshot_interval)), and once
    /// more at graceful drain. `None` disables snapshotting entirely.
    pub snapshot_file: Option<std::path::PathBuf>,
    /// Interval between periodic background snapshot writes; `None`
    /// leaves only the explicit (`POST /v1/snapshot`) and at-drain saves.
    pub snapshot_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ServerConfig {
            addr: "127.0.0.1:8080".into(),
            threads: parallelism.clamp(2, 16),
            queue_capacity: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body: 1 << 20,     // 1 MiB
            max_header: 16 * 1024, // 16 KiB
            cache_capacity: 1024,
            dse_thread_cap: 8,
            trace_buffer: 256,
            slow_ms: 100,
            snapshot_file: None,
            snapshot_interval: None,
        }
    }
}
