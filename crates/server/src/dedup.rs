//! Request deduplication: an in-flight leader/follower map layered over
//! a response LRU.
//!
//! The service's hottest traffic is *identical* queries from many
//! clients (the same model/architecture pair swept by dashboards and CI
//! fleets). Two mechanisms make those cost one analysis:
//!
//! * **Response LRU** — completed responses are cached under the
//!   canonicalized request key; repeats are answered with the stored
//!   bytes, bit-identical to the first answer.
//! * **In-flight dedup** — when a request arrives *while the same key is
//!   already being computed*, the arrival waits for the leader instead of
//!   recomputing; on publish, every waiter returns the leader's bytes.
//!
//! This sits above the ISL memo cache (PR 2): the memo amortizes
//! *relational sub-work* across distinct queries, the dedup layer
//! collapses *whole queries*.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use tenet_core::json::Json;

/// The canonical text of one request: method, path, and the
/// *canonicalized* body, so formatting and key-order differences collapse
/// onto one identity. Bodies that fail to parse as JSON key on their raw
/// text (the error response is deterministic too).
///
/// This string is the cluster-wide request identity: the in-process dedup
/// map keys on it directly, and the sharding router hashes it (via
/// [`canonical_key`]) to pick the owning worker — so a repeated query
/// always lands on the shard that already holds its cached answer.
pub fn canonical_request(method: &str, path: &str, body: &[u8]) -> String {
    let canonical_body = std::str::from_utf8(body)
        .ok()
        .and_then(|t| Json::parse(t).ok())
        .map(|v| v.to_canonical_string())
        .unwrap_or_else(|| String::from_utf8_lossy(body).into_owned());
    format!("{method} {path}\n{canonical_body}")
}

/// 64-bit hash of a canonical request text — the key a consistent-hash
/// ring places on its circle. Deterministic across processes and runs
/// (no per-process seed), which is what makes shard affinity stable
/// across router restarts.
///
/// FNV-1a accumulation followed by a murmur3-style finalizer: plain
/// FNV-1a spreads a trailing-byte difference only into the low bits
/// (one multiply), and requests that differ in one late field would
/// cluster onto the same ring arc; the finalizer avalanches every input
/// bit across the whole word.
pub fn canonical_key(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// One cached response: status plus entity bytes (shared, immutable).
#[derive(Debug, Clone)]
pub struct CachedResponse {
    /// HTTP status code of the stored answer.
    pub status: u16,
    /// Entity body; `Arc` so hits are a pointer copy, not a memcpy.
    pub body: Arc<Vec<u8>>,
}

struct Inner {
    /// Keys currently being computed by a leader.
    inflight: HashSet<String>,
    /// Completed responses keyed by canonical request text.
    cache: HashMap<String, (CachedResponse, u64)>,
    /// Monotonic recency clock for LRU eviction.
    tick: u64,
}

/// The dedup map. One instance per server.
pub struct Dedup {
    inner: Mutex<Inner>,
    published: Condvar,
    capacity: usize,
    hits: AtomicU64,
    waits: AtomicU64,
    misses: AtomicU64,
    warms: AtomicU64,
}

/// Outcome of [`Dedup::claim`].
pub enum Claim {
    /// A stored (or just-published) response; serve these bytes.
    Cached(CachedResponse),
    /// The caller is the leader for this key: compute, then
    /// [`Dedup::publish`] through the token.
    Leader(LeaderToken),
}

/// Leadership over one in-flight key.
///
/// Dropping the token without publishing (handler panic, uncacheable
/// outcome) releases the key and wakes waiters so one of them can take
/// over — leadership can never be leaked.
pub struct LeaderToken {
    dedup: Arc<Dedup>,
    key: Option<String>,
}

/// Point-in-time dedup counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DedupStats {
    /// Requests answered from the response LRU.
    pub hits: u64,
    /// Requests that waited for an in-flight leader.
    pub waits: u64,
    /// Requests that computed (became leader).
    pub misses: u64,
    /// Responses inserted by replication warming ([`Dedup::insert`]),
    /// i.e. answers this worker holds without ever computing them.
    pub warmed: u64,
    /// Responses currently stored.
    pub entries: u64,
}

impl Dedup {
    /// A dedup map storing at most `capacity` responses.
    pub fn new(capacity: usize) -> Arc<Dedup> {
        Arc::new(Dedup {
            inner: Mutex::new(Inner {
                inflight: HashSet::new(),
                cache: HashMap::new(),
                tick: 0,
            }),
            published: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            warms: AtomicU64::new(0),
        })
    }

    /// Resolves `key` to a cached response, or elects the caller leader.
    ///
    /// Blocks while another thread leads the same key; wakes when that
    /// leader publishes (returning its bytes) or abandons (taking over
    /// leadership).
    pub fn claim(self: &Arc<Dedup>, key: &str) -> Claim {
        let mut inner = self.inner.lock().expect("dedup poisoned");
        let mut waited = false;
        loop {
            if inner.cache.contains_key(key) {
                let now = inner.tick;
                inner.tick += 1;
                let entry = inner.cache.get_mut(key).expect("checked above");
                entry.1 = now;
                let resp = entry.0.clone();
                drop(inner);
                if waited {
                    self.waits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                return Claim::Cached(resp);
            }
            if !inner.inflight.contains(key) {
                inner.inflight.insert(key.to_string());
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Claim::Leader(LeaderToken {
                    dedup: Arc::clone(self),
                    key: Some(key.to_string()),
                });
            }
            waited = true;
            inner = self.published.wait(inner).expect("dedup poisoned");
        }
    }

    /// Publishes the leader's response and wakes every waiter.
    pub fn publish(&self, mut token: LeaderToken, resp: CachedResponse) {
        let key = token.key.take().expect("token already consumed");
        let mut inner = self.inner.lock().expect("dedup poisoned");
        inner.inflight.remove(&key);
        if inner.cache.len() >= self.capacity && !inner.cache.contains_key(&key) {
            // Evict the least recently touched entry. O(n) scan, but only
            // on insert-at-capacity, and capacity is modest.
            if let Some(victim) = inner
                .cache
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k.clone())
            {
                inner.cache.remove(&victim);
            }
        }
        let tick = inner.tick;
        inner.tick += 1;
        inner.cache.insert(key, (resp, tick));
        drop(inner);
        self.published.notify_all();
    }

    /// Inserts a response under `key` without leadership — the
    /// replication write-through path (`POST /v1/warm`): a replica stores
    /// the primary's answer so a later failover hit is warm instead of a
    /// recompute. Counted under `warmed`, not `hits`/`misses`, so compute
    /// attribution stays exact. If the key is already cached the stored
    /// bytes win (they are this worker's own published answer; responses
    /// are deterministic, so the bytes agree anyway). Waiters on an
    /// in-flight leader for the same key are woken — the fresh cache
    /// entry answers them without waiting out the local compute.
    pub fn insert(&self, key: &str, resp: CachedResponse) {
        let mut inner = self.inner.lock().expect("dedup poisoned");
        if !inner.cache.contains_key(key) {
            if inner.cache.len() >= self.capacity {
                if let Some(victim) = inner
                    .cache
                    .iter()
                    .min_by_key(|(_, (_, tick))| *tick)
                    .map(|(k, _)| k.clone())
                {
                    inner.cache.remove(&victim);
                }
            }
            let tick = inner.tick;
            inner.tick += 1;
            inner.cache.insert(key.to_string(), (resp, tick));
            self.warms.fetch_add(1, Ordering::Relaxed);
        }
        drop(inner);
        self.published.notify_all();
    }

    /// Exports every cached response in recency order, coldest first, for
    /// snapshotting or warm shipping. One lock acquisition, so the view
    /// is a consistent point in time.
    pub fn export(&self) -> Vec<(String, CachedResponse)> {
        let inner = self.inner.lock().expect("dedup poisoned");
        let mut entries: Vec<(&String, &(CachedResponse, u64))> = inner.cache.iter().collect();
        entries.sort_by_key(|(_, (_, tick))| *tick);
        entries
            .into_iter()
            .map(|(k, (resp, _))| (k.clone(), resp.clone()))
            .collect()
    }

    /// Bulk-restores exported entries via the warm write-through path.
    ///
    /// Entries are inserted in the given order, so an export (coldest
    /// first) replayed here reproduces the LRU recency order — if
    /// capacity forces eviction, the warmest snapshot entries survive.
    /// Returns how many entries were newly stored.
    pub fn import(&self, entries: Vec<(String, CachedResponse)>) -> u64 {
        let before = self.warms.load(Ordering::Relaxed);
        for (key, resp) in entries {
            self.insert(&key, resp);
        }
        self.warms.load(Ordering::Relaxed) - before
    }

    /// Current counters.
    pub fn stats(&self) -> DedupStats {
        let inner = self.inner.lock().expect("dedup poisoned");
        DedupStats {
            hits: self.hits.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warmed: self.warms.load(Ordering::Relaxed),
            entries: inner.cache.len() as u64,
        }
    }
}

impl Drop for LeaderToken {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            // Abandoned without publishing: release the key so a waiter
            // can be elected leader on its next wakeup.
            let mut inner = self.dedup.inner.lock().expect("dedup poisoned");
            inner.inflight.remove(&key);
            drop(inner);
            self.dedup.published.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(bytes: &[u8]) -> CachedResponse {
        CachedResponse {
            status: 200,
            body: Arc::new(bytes.to_vec()),
        }
    }

    #[test]
    fn canonical_request_collapses_spelling_differences() {
        let a = canonical_request("POST", "/v1/analyze", b"{\"a\": 1, \"b\": 2}");
        let b = canonical_request("POST", "/v1/analyze", b"{ \"b\":2,\"a\" :1 }");
        assert_eq!(a, b, "key order and whitespace must not matter");
        let c = canonical_request("POST", "/v1/analyze", b"{\"a\":1,\"b\":3}");
        assert_ne!(a, c, "different values are different requests");
        let d = canonical_request("POST", "/v1/dse", b"{\"a\":1,\"b\":2}");
        assert_ne!(a, d, "the path is part of the identity");
        // Non-JSON bodies key on their raw text.
        let e = canonical_request("POST", "/v1/analyze", b"{broken");
        assert!(e.ends_with("{broken"));
    }

    #[test]
    fn canonical_key_is_deterministic_and_separating() {
        let k1 = canonical_key("POST /v1/analyze\n{\"a\":1}");
        let k2 = canonical_key("POST /v1/analyze\n{\"a\":1}");
        assert_eq!(k1, k2);
        let k3 = canonical_key("POST /v1/analyze\n{\"a\":2}");
        assert_ne!(k1, k3);
        // A trailing-byte difference must avalanche into the high bits —
        // the consistent-hash ring orders keys by their full value, and
        // requests differing in one late field must not share an arc.
        assert_ne!(k1 >> 48, k3 >> 48, "k1={k1:016x} k3={k3:016x}");
        // The empty-string value locks the algorithm choice across PRs
        // (FNV-1a offset basis through the murmur3 finalizer).
        assert_eq!(canonical_key(""), 0xefd0_1f60_ba99_2926);
    }

    #[test]
    fn leader_then_hits() {
        let d = Dedup::new(8);
        let Claim::Leader(tok) = d.claim("k") else {
            panic!("first claim must lead")
        };
        d.publish(tok, resp(b"answer"));
        for _ in 0..3 {
            let Claim::Cached(r) = d.claim("k") else {
                panic!("published key must hit")
            };
            assert_eq!(&*r.body, b"answer");
        }
        let s = d.stats();
        assert_eq!((s.misses, s.hits, s.waits), (1, 3, 0));
    }

    #[test]
    fn waiters_get_the_leaders_bytes() {
        let d = Dedup::new(8);
        let Claim::Leader(tok) = d.claim("k") else {
            panic!()
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || match d.claim("k") {
                    Claim::Cached(r) => r.body.as_ref().clone(),
                    Claim::Leader(_) => panic!("in-flight key must not re-lead"),
                })
            })
            .collect();
        // Give the waiters a moment to block on the in-flight key.
        std::thread::sleep(std::time::Duration::from_millis(20));
        d.publish(tok, resp(b"shared"));
        for w in waiters {
            assert_eq!(w.join().unwrap(), b"shared");
        }
        let s = d.stats();
        assert_eq!(s.misses, 1, "only the leader computes");
        assert_eq!(s.hits + s.waits, 4);
    }

    #[test]
    fn abandoned_leadership_is_recoverable() {
        let d = Dedup::new(8);
        {
            let Claim::Leader(_tok) = d.claim("k") else {
                panic!()
            };
            // _tok drops unpublished (simulating a handler panic).
        }
        let Claim::Leader(tok) = d.claim("k") else {
            panic!("key must be claimable again")
        };
        d.publish(tok, resp(b"second try"));
    }

    #[test]
    fn warm_insert_serves_without_a_miss() {
        let d = Dedup::new(8);
        d.insert("k", resp(b"replicated"));
        let Claim::Cached(r) = d.claim("k") else {
            panic!("warmed key must hit, not recompute")
        };
        assert_eq!(&*r.body, b"replicated");
        let s = d.stats();
        assert_eq!((s.misses, s.hits, s.warmed, s.entries), (0, 1, 1, 1));
        // A second insert under the same key is a no-op (stored bytes win)
        // and is not double-counted.
        d.insert("k", resp(b"other"));
        let Claim::Cached(r) = d.claim("k") else {
            panic!()
        };
        assert_eq!(&*r.body, b"replicated");
        assert_eq!(d.stats().warmed, 1);
    }

    #[test]
    fn warm_insert_wakes_waiters_on_an_inflight_key() {
        let d = Dedup::new(8);
        let Claim::Leader(tok) = d.claim("k") else {
            panic!()
        };
        let waiter = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || match d.claim("k") {
                Claim::Cached(r) => r.body.as_ref().clone(),
                Claim::Leader(_) => panic!("in-flight key must not re-lead"),
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        // The replica's warm insert lands while the local leader is still
        // computing: the waiter takes the warmed bytes immediately.
        d.insert("k", resp(b"warmed"));
        assert_eq!(waiter.join().unwrap(), b"warmed");
        drop(tok);
    }

    #[test]
    fn export_import_round_trip_preserves_bytes_and_recency() {
        let d = Dedup::new(8);
        for key in ["a", "b", "c"] {
            let Claim::Leader(tok) = d.claim(key) else {
                panic!()
            };
            d.publish(tok, resp(key.as_bytes()));
        }
        // Touch "a" so the recency order is b < c < a.
        assert!(matches!(d.claim("a"), Claim::Cached(_)));
        let snap = d.export();
        let order: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(order, ["b", "c", "a"], "coldest first");
        // Restore into a fresh map with capacity for only 2 entries: the
        // two warmest snapshot entries must survive.
        let fresh = Dedup::new(2);
        assert_eq!(fresh.import(snap.clone()), 3, "three entries inserted");
        assert!(matches!(fresh.claim("c"), Claim::Cached(_)));
        let Claim::Cached(r) = fresh.claim("a") else {
            panic!("warmest entry must survive restore")
        };
        assert_eq!(&*r.body, b"a", "restored bytes are bit-identical");
        assert!(
            matches!(fresh.claim("b"), Claim::Leader(_)),
            "coldest entry evicted by capacity"
        );
        // Restoring on top of existing entries is idempotent: stored
        // bytes win, nothing new is counted.
        let full = Dedup::new(8);
        assert_eq!(full.import(snap.clone()), 3);
        assert_eq!(full.import(snap), 0, "second restore is a no-op");
    }

    #[test]
    fn lru_evicts_the_coldest_key() {
        let d = Dedup::new(2);
        for key in ["a", "b"] {
            let Claim::Leader(tok) = d.claim(key) else {
                panic!()
            };
            d.publish(tok, resp(key.as_bytes()));
        }
        // Touch "a" so "b" is the coldest, then insert "c".
        assert!(matches!(d.claim("a"), Claim::Cached(_)));
        let Claim::Leader(tok) = d.claim("c") else {
            panic!()
        };
        d.publish(tok, resp(b"c"));
        assert!(matches!(d.claim("a"), Claim::Cached(_)), "a survives");
        assert!(matches!(d.claim("c"), Claim::Cached(_)), "c stored");
        assert!(
            matches!(d.claim("b"), Claim::Leader(_)),
            "b was evicted and must recompute"
        );
        assert_eq!(d.stats().entries, 2);
    }
}
