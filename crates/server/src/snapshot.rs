//! Warm-state snapshots: a versioned, checksummed serialization of one
//! worker's cache state — the ISL memo context (interned relations +
//! memo entries, in canonical `fmt` text form) and the response LRU.
//!
//! A freshly (re)started shard serves every key cold; with a snapshot it
//! answers its old keys warm with bit-identical bytes. The file format
//! is deliberately dumb and self-checking:
//!
//! ```text
//! TENETSNAP <version> <checksum-hex16> <payload-len>\n
//! <payload JSON>
//! ```
//!
//! The checksum is [`canonical_key`](crate::canonical_key) over the
//! payload text, so truncation and corruption are both caught before a
//! byte of state is restored. A bad file is rejected with a clear
//! [`SnapshotError`] and the worker starts cold — never crashed.
//!
//! Restore is *re-parse + re-intern*: the ISL section carries relation
//! texts, never raw intern ids, so a snapshot is valid across process
//! restarts and (within one format version) across builds.

use crate::dedup::CachedResponse;
use crate::worker::WorkerCore;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use tenet_core::isl_cache::{self, CacheExport, MemoExport, RelExport, ValExport};
use tenet_core::json::Json;

/// Current snapshot format version. Bump on any payload-shape change.
pub const VERSION: u64 = 1;

const MAGIC: &str = "TENETSNAP";

/// Why a snapshot failed to load or decode.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The header or payload is not a snapshot (bad magic, truncated,
    /// unparseable JSON).
    Malformed(String),
    /// A well-formed snapshot of an unsupported format version.
    VersionMismatch(u64),
    /// The payload does not match its recorded checksum.
    ChecksumMismatch,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot read failed: {e}"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            SnapshotError::VersionMismatch(v) => {
                write!(
                    f,
                    "snapshot version {v} unsupported (this build reads {VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch => {
                write!(
                    f,
                    "snapshot checksum mismatch (corrupted or truncated payload)"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Which part of the state to capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Both the response LRU and the ISL memo context.
    All,
    /// Only the response LRU + dedup key table.
    Dedup,
    /// Only the ISL memo context.
    Isl,
}

impl Section {
    /// Parses the `section=` query value; `None` input means [`Section::All`].
    pub fn parse(value: Option<&str>) -> Option<Section> {
        match value {
            None => Some(Section::All),
            Some("dedup") => Some(Section::Dedup),
            Some("isl") => Some(Section::Isl),
            Some(_) => None,
        }
    }
}

/// Outcome counts of a [`restore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Response-LRU entries newly stored.
    pub dedup: u64,
    /// ISL parse-table texts restored.
    pub isl_parsed: u64,
    /// ISL memo entries restored.
    pub isl_memo: u64,
    /// Entries dropped (unparseable text, unknown op, malformed row).
    pub skipped: u64,
}

/// Captures the requested state as the snapshot payload document. Each
/// underlying export is one lock acquisition, so each section is a
/// consistent point-in-time view even under concurrent traffic or a
/// concurrent wholesale cache clear.
pub fn capture(core: &WorkerCore, section: Section) -> Json {
    let mut doc = vec![("version".to_string(), Json::from(VERSION))];
    if matches!(section, Section::All | Section::Dedup) {
        let entries: Vec<Json> = core
            .dedup
            .export()
            .into_iter()
            .filter_map(|(key, resp)| {
                // Response bodies are serialized JSON and thus UTF-8;
                // anything else cannot ride in a JSON string field.
                let body = String::from_utf8(resp.body.as_ref().clone()).ok()?;
                Some(Json::obj([
                    ("key", Json::from(key)),
                    ("status", Json::from(u64::from(resp.status))),
                    ("body", Json::from(body)),
                ]))
            })
            .collect();
        doc.push(("dedup".to_string(), Json::Arr(entries)));
    }
    if matches!(section, Section::All | Section::Isl) {
        let snap = isl_cache::export();
        doc.push(("isl".to_string(), isl_to_json(&snap)));
    }
    Json::Obj(doc)
}

/// Restores a payload document produced by [`capture`] into `core` (and
/// the process-wide ISL memo context). Unknown or damaged rows are
/// skipped and counted — the caches are accelerators, never sources of
/// truth, so restore is best-effort by design.
pub fn restore(core: &WorkerCore, payload: &Json) -> RestoreReport {
    let mut report = RestoreReport::default();
    if let Some(rows) = payload.get("dedup").and_then(Json::as_arr) {
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            let decoded = (|| {
                let key = row.get("key")?.as_str()?;
                let status = row.get("status")?.as_u64()?;
                let status = u16::try_from(status).ok().filter(|s| *s >= 100)?;
                let body = row.get("body")?.as_str()?;
                Some((
                    key.to_string(),
                    CachedResponse {
                        status,
                        body: Arc::new(body.as_bytes().to_vec()),
                    },
                ))
            })();
            match decoded {
                Some(entry) => entries.push(entry),
                None => report.skipped += 1,
            }
        }
        report.dedup = core.dedup.import(entries);
    }
    if let Some(isl) = payload.get("isl") {
        let (snap, bad_rows) = isl_from_json(isl);
        let r = isl_cache::import(&snap);
        report.isl_parsed = r.parsed;
        report.isl_memo = r.memo;
        report.skipped += r.skipped + bad_rows;
    }
    report
}

/// Encodes a payload document as the checksummed on-disk snapshot bytes.
pub fn encode(payload: &Json) -> Vec<u8> {
    let text = payload.to_string();
    let checksum = crate::canonical_key(&text);
    let mut out = format!("{MAGIC} {VERSION} {checksum:016x} {}\n", text.len()).into_bytes();
    out.extend_from_slice(text.as_bytes());
    out
}

/// Decodes and verifies on-disk snapshot bytes back into the payload
/// document. Rejects bad magic, unsupported versions, truncation, and
/// checksum mismatches — each with a distinct error.
pub fn decode(bytes: &[u8]) -> Result<Json, SnapshotError> {
    let newline = bytes
        .iter()
        .position(|b| *b == b'\n')
        .ok_or_else(|| SnapshotError::Malformed("missing header line".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| SnapshotError::Malformed("header is not UTF-8".into()))?;
    let mut parts = header.split(' ');
    if parts.next() != Some(MAGIC) {
        return Err(SnapshotError::Malformed("bad magic".into()));
    }
    let version: u64 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| SnapshotError::Malformed("bad version field".into()))?;
    if version != VERSION {
        return Err(SnapshotError::VersionMismatch(version));
    }
    let checksum = parts
        .next()
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| SnapshotError::Malformed("bad checksum field".into()))?;
    let len: usize = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| SnapshotError::Malformed("bad length field".into()))?;
    let payload = &bytes[newline + 1..];
    if payload.len() != len {
        return Err(SnapshotError::Malformed(format!(
            "payload length {} != recorded {len} (truncated?)",
            payload.len()
        )));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| SnapshotError::Malformed("payload is not UTF-8".into()))?;
    if crate::canonical_key(text) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Json::parse(text).map_err(|e| SnapshotError::Malformed(format!("payload JSON: {e}")))
}

/// What [`save_to_file`] wrote.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaveReport {
    /// Total file size in bytes.
    pub bytes: u64,
    /// Response-LRU entries captured.
    pub dedup_entries: u64,
    /// ISL memo entries captured.
    pub isl_memo: u64,
}

/// Captures the full state and writes it to `path` atomically: the bytes
/// land in `<path>.tmp` first and are renamed over the target, so a
/// crash mid-write can never leave a half-written snapshot where the
/// next boot would read it.
pub fn save_to_file(core: &WorkerCore, path: &Path) -> std::io::Result<SaveReport> {
    let payload = capture(core, Section::All);
    let report = SaveReport {
        bytes: 0,
        dedup_entries: payload
            .get("dedup")
            .and_then(Json::as_arr)
            .map_or(0, |a| a.len() as u64),
        isl_memo: payload
            .get("isl")
            .and_then(|i| i.get("memo"))
            .and_then(Json::as_arr)
            .map_or(0, |a| a.len() as u64),
    };
    let bytes = encode(&payload);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(SaveReport {
        bytes: bytes.len() as u64,
        ..report
    })
}

/// Reads, verifies, and restores a snapshot file into `core`. The boot
/// path treats any error as "start cold" after logging it.
pub fn load_from_file(core: &WorkerCore, path: &Path) -> Result<RestoreReport, SnapshotError> {
    let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
    let payload = decode(&bytes)?;
    Ok(restore(core, &payload))
}

// --- ISL section <-> JSON -------------------------------------------------

fn rel_to_json(r: &RelExport) -> Json {
    Json::obj([
        ("text", Json::from(r.text.as_str())),
        ("set", Json::from(r.set)),
    ])
}

fn rel_from_json(v: &Json) -> Option<RelExport> {
    Some(RelExport {
        text: v.get("text")?.as_str()?.to_string(),
        set: v.get("set")?.as_bool()?,
    })
}

fn isl_to_json(snap: &CacheExport) -> Json {
    let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::from(s.as_str())).collect());
    let memo: Vec<Json> = snap
        .memo
        .iter()
        .map(|e| {
            let value = match &e.value {
                ValExport::Map(r) => Json::obj([
                    ("kind", Json::from("map")),
                    ("text", Json::from(r.text.as_str())),
                    ("set", Json::from(r.set)),
                ]),
                // Counts are exact u128; a decimal string keeps them
                // exact beyond the JSON integer range.
                ValExport::Count(n) => Json::obj([
                    ("kind", Json::from("count")),
                    ("n", Json::from(n.to_string())),
                ]),
                ValExport::Bool(b) => {
                    Json::obj([("kind", Json::from("bool")), ("v", Json::from(*b))])
                }
            };
            Json::obj([
                ("op", Json::from(e.op.as_str())),
                ("lhs", rel_to_json(&e.lhs)),
                ("rhs", e.rhs.as_ref().map_or(Json::Null, rel_to_json)),
                ("extra", Json::Int(e.extra)),
                ("value", value),
            ])
        })
        .collect();
    Json::obj([
        ("parsed_map", strs(&snap.parsed_map)),
        ("parsed_set", strs(&snap.parsed_set)),
        ("memo", Json::Arr(memo)),
    ])
}

/// Decodes the ISL section; malformed rows are dropped and counted in
/// the second return value.
fn isl_from_json(v: &Json) -> (CacheExport, u64) {
    fn texts(v: &Json, key: &str, bad: &mut u64) -> Vec<String> {
        let mut out = Vec::new();
        for item in v.get(key).and_then(Json::as_arr).unwrap_or(&[]) {
            match item.as_str() {
                Some(s) => out.push(s.to_string()),
                None => *bad += 1,
            }
        }
        out
    }
    let mut bad = 0u64;
    let parsed_map = texts(v, "parsed_map", &mut bad);
    let parsed_set = texts(v, "parsed_set", &mut bad);
    let mut memo = Vec::new();
    for row in v.get("memo").and_then(Json::as_arr).unwrap_or(&[]) {
        let decoded = (|| {
            let op = row.get("op")?.as_str()?.to_string();
            let lhs = rel_from_json(row.get("lhs")?)?;
            let rhs = match row.get("rhs") {
                None | Some(Json::Null) => None,
                Some(r) => Some(rel_from_json(r)?),
            };
            let extra = match row.get("extra")? {
                Json::Int(i) => *i,
                _ => return None,
            };
            let value = match row.get("value")?.get("kind")?.as_str()? {
                "map" => ValExport::Map(rel_from_json(row.get("value")?)?),
                "count" => ValExport::Count(row.get("value")?.get("n")?.as_str()?.parse().ok()?),
                "bool" => ValExport::Bool(row.get("value")?.get("v")?.as_bool()?),
                _ => return None,
            };
            Some(MemoExport {
                op,
                lhs,
                rhs,
                extra,
                value,
            })
        })();
        match decoded {
            Some(e) => memo.push(e),
            None => bad += 1,
        }
    }
    (
        CacheExport {
            parsed_map,
            parsed_set,
            memo,
        },
        bad,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;

    fn core() -> Arc<WorkerCore> {
        WorkerCore::new(ServerConfig {
            addr: "unused".into(),
            ..Default::default()
        })
    }

    #[test]
    fn encode_decode_round_trips() {
        let payload = Json::obj([
            ("version", Json::from(VERSION)),
            ("dedup", Json::Arr(vec![])),
        ]);
        let bytes = encode(&payload);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.to_string(), payload.to_string());
    }

    #[test]
    fn decode_rejects_each_failure_mode_distinctly() {
        let bytes = encode(&Json::obj([("version", Json::from(VERSION))]));
        // Bad magic.
        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        assert!(matches!(decode(&garbled), Err(SnapshotError::Malformed(_))));
        // Version mismatch.
        let text = "{}";
        let header = format!(
            "{MAGIC} 999 {:016x} {}\n{text}",
            crate::canonical_key(text),
            text.len()
        );
        assert!(matches!(
            decode(header.as_bytes()),
            Err(SnapshotError::VersionMismatch(999))
        ));
        // Truncation.
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(decode(cut), Err(SnapshotError::Malformed(_))));
        // Flipped payload byte: length fine, checksum wrong.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x20;
        assert!(matches!(
            decode(&flipped),
            Err(SnapshotError::ChecksumMismatch)
        ));
        // No header line at all.
        assert!(matches!(decode(b"short"), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn capture_restore_round_trips_dedup_bytes() {
        let a = core();
        a.dedup.insert(
            "POST /v1/analyze\n{\"q\":1}",
            CachedResponse {
                status: 200,
                body: Arc::new(b"{\"answer\":42}".to_vec()),
            },
        );
        let payload = capture(&a, Section::All);
        let b = core();
        let report = restore(&b, &payload);
        assert_eq!(report.dedup, 1);
        assert_eq!(report.skipped, 0, "{report:?}");
        match b.dedup.claim("POST /v1/analyze\n{\"q\":1}") {
            crate::dedup::Claim::Cached(r) => {
                assert_eq!(r.status, 200);
                assert_eq!(&*r.body, b"{\"answer\":42}", "bit-identical bytes");
            }
            crate::dedup::Claim::Leader(_) => panic!("restored key must be warm"),
        }
    }

    #[test]
    fn section_filter_limits_the_payload() {
        let c = core();
        c.dedup.insert(
            "k",
            CachedResponse {
                status: 200,
                body: Arc::new(b"{}".to_vec()),
            },
        );
        let dedup_only = capture(&c, Section::Dedup);
        assert!(dedup_only.get("dedup").is_some());
        assert!(dedup_only.get("isl").is_none());
        let isl_only = capture(&c, Section::Isl);
        assert!(isl_only.get("dedup").is_none());
        assert!(isl_only.get("isl").is_some());
        assert_eq!(Section::parse(Some("bogus")), None);
        assert_eq!(Section::parse(None), Some(Section::All));
    }

    #[test]
    fn save_and_load_file_round_trip_with_atomic_write() {
        let c = core();
        c.dedup.insert(
            "key-on-disk",
            CachedResponse {
                status: 200,
                body: Arc::new(b"{\"v\":7}".to_vec()),
            },
        );
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tenet-snap-test-{}.snap", std::process::id()));
        let report = save_to_file(&c, &path).unwrap();
        assert!(report.bytes > 0);
        assert_eq!(report.dedup_entries, 1);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        let fresh = core();
        let restored = load_from_file(&fresh, &path).unwrap();
        assert_eq!(restored.dedup, 1);
        std::fs::remove_file(&path).ok();
        // A missing file is an Io error, not a panic.
        assert!(matches!(
            load_from_file(&fresh, &path),
            Err(SnapshotError::Io(_))
        ));
    }
}
