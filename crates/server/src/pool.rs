//! A bounded worker-thread pool over a hand-rolled blocking queue.
//!
//! The accept loop submits connections; `threads` workers drain them.
//! The queue is bounded: when every worker is busy and the backlog is
//! full, [`WorkerPool::try_submit`] refuses immediately so the caller can
//! shed load (the server answers 503) instead of queueing unboundedly.
//! Shutdown is graceful — the queue stops accepting, workers finish the
//! jobs already admitted, then exit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    work_ready: Condvar,
    capacity: usize,
    shutting_down: AtomicBool,
}

/// A fixed-size pool of named worker threads processing jobs of type `T`.
pub struct WorkerPool<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    workers: Vec<JoinHandle<()>>,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The backlog is at capacity; shed load.
    Busy,
    /// The pool is shutting down; no new work is admitted.
    ShuttingDown,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `threads` workers running `handler` on submitted jobs.
    ///
    /// `capacity` bounds the backlog of jobs admitted but not yet picked
    /// up by a worker.
    pub fn new(
        name: &str,
        threads: usize,
        capacity: usize,
        handler: impl Fn(T) + Send + Sync + 'static,
    ) -> WorkerPool<T> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            capacity: capacity.max(1),
            shutting_down: AtomicBool::new(false),
        });
        let handler = Arc::new(handler);
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&shared, &*handler))
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Admits a job, or refuses without blocking.
    pub fn try_submit(&self, job: T) -> Result<(), (T, SubmitError)> {
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err((job, SubmitError::ShuttingDown));
        }
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        if q.len() >= self.shared.capacity {
            return Err((job, SubmitError::Busy));
        }
        q.push_back(job);
        drop(q);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Jobs admitted but not yet picked up.
    pub fn backlog(&self) -> usize {
        self.shared.queue.lock().expect("pool queue poisoned").len()
    }

    /// A detached probe reporting the live backlog (for stats endpoints
    /// that outlive the borrow of the pool itself).
    pub fn backlog_probe(&self) -> Box<dyn Fn() -> usize + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Box::new(move || shared.queue.lock().expect("pool queue poisoned").len())
    }

    /// Stops admissions, lets workers drain the backlog, and joins them.
    pub fn shutdown(self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop<T>(shared: &Shared<T>, handler: &(impl Fn(T) + ?Sized)) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    return; // drained and closed
                }
                q = shared.work_ready.wait(q).expect("pool queue poisoned");
            }
        };
        // A panicking job must not kill the worker: the pool is fixed-size
        // and nothing respawns threads, so an escaped panic would shrink
        // capacity forever. The job's own resources (sockets, dedup
        // leadership tokens) clean up in their Drop impls during unwind.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(job)));
        if outcome.is_err() {
            eprintln!("worker: job panicked (worker kept alive)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_submitted_jobs_run_before_shutdown_returns() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new("t", 3, 64, move |n: usize| {
                std::thread::sleep(std::time::Duration::from_micros(50));
                done.fetch_add(n, Ordering::SeqCst);
            })
        };
        let mut expected = 0;
        for i in 1..=40 {
            pool.try_submit(i).unwrap();
            expected += i;
        }
        pool.shutdown();
        assert_eq!(
            done.load(Ordering::SeqCst),
            expected,
            "drain must be complete"
        );
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new("t", 1, 64, move |n: usize| {
                if n == 0 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        // The single worker survives the panic and serves later jobs.
        pool.try_submit(0).unwrap();
        for _ in 0..5 {
            pool.try_submit(1).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn full_backlog_refuses_with_busy() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new("t", 1, 2, move |_: usize| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
        };
        // One job occupies the (blocked) worker...
        pool.try_submit(0).unwrap();
        while pool.backlog() > 0 {
            std::thread::yield_now();
        }
        // ...two more fill the backlog; the worker can't drain them while
        // the gate is closed, so the next submission must bounce.
        pool.try_submit(1).unwrap();
        pool.try_submit(2).unwrap();
        assert_eq!(pool.try_submit(99), Err((99, SubmitError::Busy)));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }
}
