//! Service-level counters and a lock-free latency histogram, surfaced by
//! `GET /v1/stats`.

use crate::dedup::DedupStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tenet_core::json::Json;
use tenet_core::CounterHandle;

/// Upper bucket bounds of the latency histogram, in microseconds. The
/// final bucket is open-ended.
pub const LATENCY_BUCKETS_US: [u64; 14] = [
    50,
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    1_000_000,
    u64::MAX,
];

/// Atomic counters shared by the accept loop, the workers, and the stats
/// endpoint. All counters are monotonic except `in_flight`.
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests fully parsed and routed.
    pub requests: AtomicU64,
    /// Requests currently being processed.
    pub in_flight: AtomicU64,
    /// Requests completed (any status).
    pub completed: AtomicU64,
    /// Responses with a 2xx status.
    pub status_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub status_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub status_5xx: AtomicU64,
    /// Connections shed with 503 because the worker backlog was full.
    pub rejected_busy: AtomicU64,
    /// Requests answered `504` because their deadline expired before
    /// any useful work completed.
    pub deadline_exceeded: AtomicU64,
    /// Requests answered with an explicitly degraded (truncated) result
    /// because the deadline expired mid-computation.
    pub degraded_responses: AtomicU64,
    /// Per-bucket request-latency counts (bounds in
    /// [`LATENCY_BUCKETS_US`]).
    pub latency_buckets: [AtomicU64; LATENCY_BUCKETS_US.len()],
    /// ISL-cache lookups attributable to this server's workers — a
    /// [`CounterHandle`] attached on every worker thread, so the numbers
    /// stay exact even when other code in the process uses the cache.
    pub isl_handle: CounterHandle,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats {
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            status_2xx: AtomicU64::new(0),
            status_4xx: AtomicU64::new(0),
            status_5xx: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            degraded_responses: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            isl_handle: CounterHandle::new(),
        }
    }
}

impl ServerStats {
    /// Records one completed request with the given status and latency.
    pub fn record(&self, status: u16, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len() - 1);
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) from the histogram,
    /// reported as the upper bound of the containing bucket (µs).
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return LATENCY_BUCKETS_US[i];
            }
        }
        *LATENCY_BUCKETS_US.last().expect("non-empty buckets")
    }

    /// The full stats document served by `GET /v1/stats`.
    pub fn to_json(&self, dedup: DedupStats, uptime: Duration, backlog: usize) -> Json {
        let global = tenet_core::isl_cache::stats();
        let histogram = Json::Arr(
            LATENCY_BUCKETS_US
                .iter()
                .zip(self.latency_buckets.iter())
                .map(|(&bound, count)| {
                    Json::obj([
                        (
                            "le_us",
                            if bound == u64::MAX {
                                Json::Null
                            } else {
                                Json::from(bound)
                            },
                        ),
                        ("count", Json::from(count.load(Ordering::Relaxed))),
                    ])
                })
                .collect(),
        );
        let dedup_total = dedup.hits + dedup.waits + dedup.misses;
        Json::obj([
            (
                "uptime_ms",
                Json::from(uptime.as_millis().min(u64::MAX as u128) as u64),
            ),
            (
                "requests",
                Json::obj([
                    (
                        "accepted_connections",
                        Json::from(self.connections.load(Ordering::Relaxed)),
                    ),
                    ("total", Json::from(self.requests.load(Ordering::Relaxed))),
                    (
                        "in_flight",
                        Json::from(self.in_flight.load(Ordering::Relaxed)),
                    ),
                    (
                        "completed",
                        Json::from(self.completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "status_2xx",
                        Json::from(self.status_2xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "status_4xx",
                        Json::from(self.status_4xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "status_5xx",
                        Json::from(self.status_5xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "rejected_busy",
                        Json::from(self.rejected_busy.load(Ordering::Relaxed)),
                    ),
                    (
                        "deadline_exceeded",
                        Json::from(self.deadline_exceeded.load(Ordering::Relaxed)),
                    ),
                    (
                        "degraded_responses",
                        Json::from(self.degraded_responses.load(Ordering::Relaxed)),
                    ),
                    ("backlog", Json::from(backlog)),
                ]),
            ),
            (
                "latency",
                Json::obj([
                    ("p50_us", Json::from(self.latency_quantile_us(0.50))),
                    ("p99_us", Json::from(self.latency_quantile_us(0.99))),
                    ("histogram", histogram),
                ]),
            ),
            (
                "dedup",
                Json::obj([
                    ("hits", Json::from(dedup.hits)),
                    ("inflight_waits", Json::from(dedup.waits)),
                    ("misses", Json::from(dedup.misses)),
                    ("warmed", Json::from(dedup.warmed)),
                    ("entries", Json::from(dedup.entries)),
                    (
                        "hit_rate",
                        Json::from(if dedup_total == 0 {
                            0.0
                        } else {
                            (dedup.hits + dedup.waits) as f64 / dedup_total as f64
                        }),
                    ),
                ]),
            ),
            (
                "isl_cache",
                Json::obj([
                    (
                        "server",
                        Json::obj([
                            ("hits", Json::from(self.isl_handle.hits())),
                            ("misses", Json::from(self.isl_handle.misses())),
                            ("hit_rate", Json::from(self.isl_handle.hit_rate())),
                        ]),
                    ),
                    (
                        "process",
                        Json::obj([
                            ("hits", Json::from(global.hits)),
                            ("misses", Json::from(global.misses)),
                            ("hit_rate", Json::from(global.hit_rate())),
                            ("entries", Json::from(global.entries)),
                            ("interned", Json::from(global.interned)),
                        ]),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_come_from_the_right_bucket() {
        let s = ServerStats::default();
        // 99 fast requests (≤50µs) and one slow (≈30ms).
        for _ in 0..99 {
            s.record(200, Duration::from_micros(10));
        }
        s.record(200, Duration::from_millis(30));
        assert_eq!(s.latency_quantile_us(0.50), 50);
        assert_eq!(s.latency_quantile_us(0.99), 50);
        assert_eq!(s.latency_quantile_us(1.0), 50_000);
        assert_eq!(s.status_2xx.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn stats_json_has_the_documented_shape() {
        let s = ServerStats::default();
        s.record(200, Duration::from_micros(120));
        s.record(400, Duration::from_micros(80));
        let doc = s.to_json(DedupStats::default(), Duration::from_secs(1), 0);
        let text = doc.to_string();
        let v = Json::parse(&text).unwrap();
        let reqs = v.get("requests").unwrap();
        assert_eq!(reqs.get("completed").and_then(Json::as_u64), Some(2));
        assert_eq!(reqs.get("status_4xx").and_then(Json::as_u64), Some(1));
        assert!(v.get("latency").and_then(|l| l.get("histogram")).is_some());
        assert!(v.get("isl_cache").and_then(|c| c.get("server")).is_some());
    }
}
