//! Service-level counters and a lock-free latency histogram, surfaced by
//! `GET /v1/stats`.

use crate::dedup::DedupStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tenet_core::json::Json;
use tenet_core::CounterHandle;

/// Upper bucket bounds of the latency histogram, in microseconds. The
/// final bucket is open-ended.
pub const LATENCY_BUCKETS_US: [u64; 14] = [
    50,
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    1_000_000,
    u64::MAX,
];

/// Atomic counters shared by the accept loop, the workers, and the stats
/// endpoint. All counters are monotonic except `in_flight`.
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests fully parsed and routed.
    pub requests: AtomicU64,
    /// Requests currently being processed.
    pub in_flight: AtomicU64,
    /// Requests completed (any status).
    pub completed: AtomicU64,
    /// Responses with a 2xx status.
    pub status_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub status_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub status_5xx: AtomicU64,
    /// Connections shed with 503 because the worker backlog was full.
    pub rejected_busy: AtomicU64,
    /// Requests answered `504` because their deadline expired before
    /// any useful work completed.
    pub deadline_exceeded: AtomicU64,
    /// Requests answered with an explicitly degraded (truncated) result
    /// because the deadline expired mid-computation.
    pub degraded_responses: AtomicU64,
    /// Per-bucket request-latency counts (bounds in
    /// [`LATENCY_BUCKETS_US`]).
    pub latency_buckets: [AtomicU64; LATENCY_BUCKETS_US.len()],
    /// Exact cumulative request latency in microseconds. The histogram
    /// alone only supports bucket-upper-bound estimates; the exact sum
    /// lets `/v1/stats` report the true mean and how far off the
    /// bucketed estimate runs.
    pub latency_sum_us: AtomicU64,
    /// ISL-cache lookups attributable to this server's workers — a
    /// [`CounterHandle`] attached on every worker thread, so the numbers
    /// stay exact even when other code in the process uses the cache.
    pub isl_handle: CounterHandle,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats {
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            status_2xx: AtomicU64::new(0),
            status_4xx: AtomicU64::new(0),
            status_5xx: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            degraded_responses: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: AtomicU64::new(0),
            isl_handle: CounterHandle::new(),
        }
    }
}

impl ServerStats {
    /// Records one completed request with the given status and latency.
    pub fn record(&self, status: u16, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len() - 1);
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) from the histogram,
    /// reported as the upper bound of the containing bucket (µs).
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return LATENCY_BUCKETS_US[i];
            }
        }
        *LATENCY_BUCKETS_US.last().expect("non-empty buckets")
    }

    /// The exact mean latency in microseconds (0 with no requests).
    pub fn latency_mean_us(&self) -> f64 {
        let n = self.completed.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        self.latency_sum_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// The mean a histogram-only consumer would estimate: each request
    /// billed at its bucket's upper bound (the open bucket at the last
    /// finite bound). Always ≥ the exact mean.
    pub fn latency_est_mean_us(&self) -> f64 {
        let counts: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        est_mean_from_buckets(&LATENCY_BUCKETS_US, &counts)
    }

    /// Relative over-report of the bucketed mean estimate:
    /// `(est_mean - mean) / mean` (0 with no requests).
    pub fn latency_est_error(&self) -> f64 {
        let exact = self.latency_mean_us();
        if exact == 0.0 {
            return 0.0;
        }
        (self.latency_est_mean_us() - exact) / exact
    }

    /// The full stats document served by `GET /v1/stats`.
    pub fn to_json(&self, dedup: DedupStats, uptime: Duration, backlog: usize) -> Json {
        let global = tenet_core::isl_cache::stats();
        let fast = tenet_core::fast_path_stats();
        let histogram = Json::Arr(
            LATENCY_BUCKETS_US
                .iter()
                .zip(self.latency_buckets.iter())
                .map(|(&bound, count)| {
                    Json::obj([
                        (
                            "le_us",
                            if bound == u64::MAX {
                                Json::Null
                            } else {
                                Json::from(bound)
                            },
                        ),
                        ("count", Json::from(count.load(Ordering::Relaxed))),
                    ])
                })
                .collect(),
        );
        let dedup_total = dedup.hits + dedup.waits + dedup.misses;
        Json::obj([
            (
                "uptime_ms",
                Json::from(uptime.as_millis().min(u64::MAX as u128) as u64),
            ),
            (
                "requests",
                Json::obj([
                    (
                        "accepted_connections",
                        Json::from(self.connections.load(Ordering::Relaxed)),
                    ),
                    ("total", Json::from(self.requests.load(Ordering::Relaxed))),
                    (
                        "in_flight",
                        Json::from(self.in_flight.load(Ordering::Relaxed)),
                    ),
                    (
                        "completed",
                        Json::from(self.completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "status_2xx",
                        Json::from(self.status_2xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "status_4xx",
                        Json::from(self.status_4xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "status_5xx",
                        Json::from(self.status_5xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "rejected_busy",
                        Json::from(self.rejected_busy.load(Ordering::Relaxed)),
                    ),
                    (
                        "deadline_exceeded",
                        Json::from(self.deadline_exceeded.load(Ordering::Relaxed)),
                    ),
                    (
                        "degraded_responses",
                        Json::from(self.degraded_responses.load(Ordering::Relaxed)),
                    ),
                    ("backlog", Json::from(backlog)),
                ]),
            ),
            (
                "latency",
                Json::obj([
                    ("p50_us", Json::from(self.latency_quantile_us(0.50))),
                    ("p99_us", Json::from(self.latency_quantile_us(0.99))),
                    (
                        "sum_us",
                        Json::from(self.latency_sum_us.load(Ordering::Relaxed)),
                    ),
                    ("mean_us", Json::from(self.latency_mean_us())),
                    ("est_mean_us", Json::from(self.latency_est_mean_us())),
                    ("est_error", Json::from(self.latency_est_error())),
                    ("histogram", histogram),
                ]),
            ),
            (
                "dedup",
                Json::obj([
                    ("hits", Json::from(dedup.hits)),
                    ("inflight_waits", Json::from(dedup.waits)),
                    ("misses", Json::from(dedup.misses)),
                    ("warmed", Json::from(dedup.warmed)),
                    ("entries", Json::from(dedup.entries)),
                    (
                        "hit_rate",
                        Json::from(if dedup_total == 0 {
                            0.0
                        } else {
                            (dedup.hits + dedup.waits) as f64 / dedup_total as f64
                        }),
                    ),
                ]),
            ),
            (
                "isl_cache",
                Json::obj([
                    (
                        "server",
                        Json::obj([
                            ("hits", Json::from(self.isl_handle.hits())),
                            ("misses", Json::from(self.isl_handle.misses())),
                            ("hit_rate", Json::from(self.isl_handle.hit_rate())),
                            ("cold_us", Json::from(self.isl_handle.cold_ns() / 1_000)),
                            ("fast_paths", Json::from(self.isl_handle.fast_paths())),
                        ]),
                    ),
                    (
                        "process",
                        Json::obj([
                            ("hits", Json::from(global.hits)),
                            ("misses", Json::from(global.misses)),
                            ("hit_rate", Json::from(global.hit_rate())),
                            ("entries", Json::from(global.entries)),
                            ("interned", Json::from(global.interned)),
                            (
                                "fast_paths",
                                Json::obj([
                                    ("window", Json::from(fast.window_counts)),
                                    ("box", Json::from(fast.box_counts)),
                                    ("slab", Json::from(fast.slab_counts)),
                                    ("multi_slab", Json::from(fast.multi_slab_counts)),
                                ]),
                            ),
                        ]),
                    ),
                ]),
            ),
        ])
    }
}

/// The mean a histogram-only consumer would estimate from per-bucket
/// counts: each sample billed at its bucket's upper bound, the open
/// bucket at the last finite bound. Shared with the router merge path.
pub fn est_mean_from_buckets(bounds: &[u64], counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let last_finite = bounds
        .iter()
        .rev()
        .find(|&&b| b != u64::MAX)
        .copied()
        .unwrap_or(0);
    let weighted: f64 = bounds
        .iter()
        .zip(counts)
        .map(|(&b, &c)| {
            let bill = if b == u64::MAX { last_finite } else { b };
            bill as f64 * c as f64
        })
        .sum();
    weighted / total as f64
}

/// Renders a worker-shaped stats document (the `/v1/stats` JSON — either
/// one worker's own, or the router's merged view of its shards) as
/// Prometheus text. `tenet_worker_*` families are additive across
/// shards, so the router's merged exposition equals the per-shard sum;
/// `tenet_process_*` families describe one process and are emitted only
/// when the document carries the per-process section (the merged
/// document does not).
pub fn prometheus_from_worker_doc(doc: &Json) -> String {
    use tenet_core::obs::PromBuf;
    let u = |path: &[&str]| -> u64 {
        let mut node = doc;
        for key in path {
            match node.get(key) {
                Some(next) => node = next,
                None => return 0,
            }
        }
        node.as_u64().unwrap_or(0)
    };
    let f = |path: &[&str]| -> f64 {
        let mut node = doc;
        for key in path {
            match node.get(key) {
                Some(next) => node = next,
                None => return 0.0,
            }
        }
        node.as_f64().unwrap_or(0.0)
    };
    let mut p = PromBuf::new();
    p.counter(
        "tenet_worker_connections_total",
        &[],
        u(&["requests", "accepted_connections"]),
    );
    p.counter(
        "tenet_worker_requests_total",
        &[],
        u(&["requests", "total"]),
    );
    p.counter(
        "tenet_worker_completed_total",
        &[],
        u(&["requests", "completed"]),
    );
    p.counter_vec(
        "tenet_worker_responses_total",
        "class",
        &[
            ("2xx", u(&["requests", "status_2xx"])),
            ("4xx", u(&["requests", "status_4xx"])),
            ("5xx", u(&["requests", "status_5xx"])),
        ],
    );
    p.counter(
        "tenet_worker_rejected_busy_total",
        &[],
        u(&["requests", "rejected_busy"]),
    );
    p.counter(
        "tenet_worker_deadline_exceeded_total",
        &[],
        u(&["requests", "deadline_exceeded"]),
    );
    p.counter(
        "tenet_worker_degraded_responses_total",
        &[],
        u(&["requests", "degraded_responses"]),
    );
    p.gauge(
        "tenet_worker_in_flight",
        &[],
        u(&["requests", "in_flight"]) as f64,
    );
    p.gauge(
        "tenet_worker_backlog",
        &[],
        u(&["requests", "backlog"]) as f64,
    );
    p.counter_vec(
        "tenet_worker_dedup_total",
        "outcome",
        &[
            ("hit", u(&["dedup", "hits"])),
            ("inflight_wait", u(&["dedup", "inflight_waits"])),
            ("miss", u(&["dedup", "misses"])),
        ],
    );
    p.counter(
        "tenet_worker_dedup_warmed_total",
        &[],
        u(&["dedup", "warmed"]),
    );
    p.gauge(
        "tenet_worker_dedup_entries",
        &[],
        u(&["dedup", "entries"]) as f64,
    );
    p.counter(
        "tenet_worker_isl_hits_total",
        &[],
        u(&["isl_cache", "server", "hits"]),
    );
    p.counter(
        "tenet_worker_isl_misses_total",
        &[],
        u(&["isl_cache", "server", "misses"]),
    );
    p.counter(
        "tenet_worker_isl_cold_us_total",
        &[],
        u(&["isl_cache", "server", "cold_us"]),
    );
    p.counter(
        "tenet_worker_isl_fast_paths_total",
        &[],
        u(&["isl_cache", "server", "fast_paths"]),
    );
    // The latency histogram, rebucketed from the document so the same
    // renderer serves both one worker and the router's merged view.
    let mut bounds = Vec::new();
    let mut counts = Vec::new();
    if let Some(rows) = doc
        .get("latency")
        .and_then(|l| l.get("histogram"))
        .and_then(Json::as_arr)
    {
        for row in rows {
            bounds.push(row.get("le_us").and_then(Json::as_u64).unwrap_or(u64::MAX));
            counts.push(row.get("count").and_then(Json::as_u64).unwrap_or(0));
        }
    }
    p.histogram(
        "tenet_worker_request_latency_us",
        &bounds,
        &counts,
        u(&["latency", "sum_us"]),
    );
    p.gauge(
        "tenet_worker_latency_mean_us",
        &[],
        f(&["latency", "mean_us"]),
    );
    p.gauge(
        "tenet_worker_latency_est_error",
        &[],
        f(&["latency", "est_error"]),
    );
    // Per-process families: only meaningful for a single worker process;
    // the merged document carries no `isl_cache.process` section, so the
    // router exposition naturally omits them.
    if let Some(process) = doc.get("isl_cache").and_then(|c| c.get("process")) {
        p.gauge("tenet_process_uptime_ms", &[], u(&["uptime_ms"]) as f64);
        let pu = |key: &str| process.get(key).and_then(Json::as_u64).unwrap_or(0);
        p.counter("tenet_process_isl_hits_total", &[], pu("hits"));
        p.counter("tenet_process_isl_misses_total", &[], pu("misses"));
        p.gauge("tenet_process_isl_entries", &[], pu("entries") as f64);
        p.gauge("tenet_process_isl_interned", &[], pu("interned") as f64);
        let fp = |key: &str| {
            process
                .get("fast_paths")
                .and_then(|f| f.get(key))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        p.counter_vec(
            "tenet_process_isl_fast_paths_total",
            "kind",
            &[
                ("window", fp("window")),
                ("box", fp("box")),
                ("slab", fp("slab")),
                ("multi_slab", fp("multi_slab")),
            ],
        );
    }
    p.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_come_from_the_right_bucket() {
        let s = ServerStats::default();
        // 99 fast requests (≤50µs) and one slow (≈30ms).
        for _ in 0..99 {
            s.record(200, Duration::from_micros(10));
        }
        s.record(200, Duration::from_millis(30));
        assert_eq!(s.latency_quantile_us(0.50), 50);
        assert_eq!(s.latency_quantile_us(0.99), 50);
        assert_eq!(s.latency_quantile_us(1.0), 50_000);
        assert_eq!(s.status_2xx.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn exact_mean_beats_the_bucket_estimate() {
        let s = ServerStats::default();
        // Two requests at 60µs land in the (50, 100] bucket: the bucket
        // estimate bills them at 100µs each, the exact sum knows better.
        s.record(200, Duration::from_micros(60));
        s.record(200, Duration::from_micros(60));
        assert_eq!(s.latency_sum_us.load(Ordering::Relaxed), 120);
        assert_eq!(s.latency_mean_us(), 60.0);
        assert_eq!(s.latency_est_mean_us(), 100.0);
        let err = s.latency_est_error();
        assert!((err - 2.0 / 3.0).abs() < 1e-9, "over-report {err}");
        // The open bucket bills at the last finite bound, not infinity.
        assert_eq!(est_mean_from_buckets(&[10, u64::MAX], &[0, 2]), 10.0);
        assert_eq!(est_mean_from_buckets(&[10, u64::MAX], &[0, 0]), 0.0);
    }

    #[test]
    fn prometheus_exposition_renders_worker_and_process_families() {
        let s = ServerStats::default();
        s.record(200, Duration::from_micros(60));
        s.record(500, Duration::from_micros(700));
        let doc = s.to_json(DedupStats::default(), Duration::from_secs(2), 3);
        let text = prometheus_from_worker_doc(&doc);
        assert!(text.contains("tenet_worker_completed_total 2\n"), "{text}");
        assert!(
            text.contains("tenet_worker_responses_total{class=\"5xx\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("tenet_worker_backlog 3\n"), "{text}");
        assert!(
            text.contains("tenet_worker_request_latency_us_bucket{le=\"100\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("tenet_worker_request_latency_us_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("tenet_worker_request_latency_us_sum 760\n"),
            "{text}"
        );
        assert!(
            text.contains("tenet_worker_request_latency_us_count 2\n"),
            "{text}"
        );
        // The per-process section rode along (this doc has one)...
        assert!(text.contains("tenet_process_isl_hits_total"), "{text}");
        assert!(
            text.contains("tenet_process_isl_fast_paths_total{kind=\"window\"}"),
            "{text}"
        );
        // ...but a merged document without it emits no process families.
        let mut stripped = doc.to_string();
        stripped = stripped.replace("\"process\"", "\"process_elsewhere\"");
        let merged = Json::parse(&stripped).unwrap();
        assert!(!prometheus_from_worker_doc(&merged).contains("tenet_process_"));
    }

    #[test]
    fn stats_json_has_the_documented_shape() {
        let s = ServerStats::default();
        s.record(200, Duration::from_micros(120));
        s.record(400, Duration::from_micros(80));
        let doc = s.to_json(DedupStats::default(), Duration::from_secs(1), 0);
        let text = doc.to_string();
        let v = Json::parse(&text).unwrap();
        let reqs = v.get("requests").unwrap();
        assert_eq!(reqs.get("completed").and_then(Json::as_u64), Some(2));
        assert_eq!(reqs.get("status_4xx").and_then(Json::as_u64), Some(1));
        assert!(v.get("latency").and_then(|l| l.get("histogram")).is_some());
        assert!(v.get("isl_cache").and_then(|c| c.get("server")).is_some());
    }
}
