//! A minimal, allocation-light HTTP/1.1 codec on raw byte streams.
//!
//! The service only needs the subset real clients (curl, load
//! generators, sidecars) actually send: `GET`/`POST` with an optional
//! `Content-Length` body, keep-alive, and pipelining. The parser is
//! incremental — bytes are [fed](RequestBuffer::feed) as they arrive off
//! the socket and requests are [drained](RequestBuffer::next_request) as soon as
//! they are complete — so split reads, coalesced reads, and pipelined
//! request bursts all parse identically. Hard limits on header and body
//! size bound memory per connection against untrusted peers.

use std::io::Read;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Remaining time budget from `X-Tenet-Deadline-Ms`, if the client
    /// sent one. The value must be a positive integer that fits in
    /// `u64`: non-numeric, zero, and overflowing values are rejected
    /// with a 400 — a silently dropped deadline would make the request
    /// run unbounded, which is the opposite of what the client asked.
    pub deadline_ms: Option<u64>,
    /// Client identity from `X-Tenet-Client`, when present. The router
    /// keys per-client admission control on this, falling back to the
    /// peer IP.
    pub client: Option<String>,
    /// Raw trace id from `X-Tenet-Trace-Id`, when present. Validation
    /// (hex, non-zero) happens at the edge: a garbled id degrades to a
    /// freshly generated one rather than failing the request.
    pub trace_id: Option<String>,
}

/// Protocol violations the connection loop turns into 4xx responses
/// (and then closes the connection — framing is unrecoverable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or length framing → 400.
    BadRequest(String),
    /// Declared or accumulated body beyond the limit → 413.
    PayloadTooLarge,
    /// Header block beyond the limit → 431.
    HeadersTooLarge,
    /// A framing feature the codec does not speak (chunked bodies) → 501.
    Unsupported(String),
}

impl HttpError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge => 413,
            HttpError::HeadersTooLarge => 431,
            HttpError::Unsupported(_) => 501,
        }
    }

    /// Human-readable description for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => format!("bad request: {m}"),
            HttpError::PayloadTooLarge => "request body exceeds the size limit".into(),
            HttpError::HeadersTooLarge => "request headers exceed the size limit".into(),
            HttpError::Unsupported(m) => format!("unsupported: {m}"),
        }
    }
}

/// Incremental request parser over a growing byte buffer.
pub struct RequestBuffer {
    buf: Vec<u8>,
    max_head: usize,
    max_body: usize,
}

impl RequestBuffer {
    /// A parser enforcing the given header-block and body size limits.
    pub fn new(max_head: usize, max_body: usize) -> RequestBuffer {
        RequestBuffer {
            buf: Vec::new(),
            max_head,
            max_body,
        }
    }

    /// Appends bytes read from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Reads once from `r` into the buffer; returns the byte count.
    pub fn fill_from(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        let mut chunk = [0u8; 16 * 1024];
        let n = r.read(&mut chunk)?;
        self.feed(&chunk[..n]);
        Ok(n)
    }

    /// Extracts the next complete request, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes". Errors are fatal for the
    /// connection: the buffer contents are no longer trustworthy framing.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > self.max_head {
                return Err(HttpError::HeadersTooLarge);
            }
            return Ok(None);
        };
        if head_end > self.max_head {
            return Err(HttpError::HeadersTooLarge);
        }
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::BadRequest("non-UTF-8 header block".into()))?;
        let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_ascii_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?;
        let path = parts
            .next()
            .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
        let version = parts
            .next()
            .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
        if parts.next().is_some() {
            return Err(HttpError::BadRequest("malformed request line".into()));
        }
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::BadRequest(format!(
                "unsupported version `{version}`"
            )));
        }

        let mut content_length: Option<usize> = None;
        // HTTP/1.1 defaults to keep-alive, 1.0 to close.
        let mut keep_alive = version == "HTTP/1.1";
        let mut deadline_ms: Option<u64> = None;
        let mut client: Option<String> = None;
        let mut trace_id: Option<String> = None;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::BadRequest(format!("malformed header `{line}`")))?;
            let value = value.trim();
            if name.trim() != name || name.is_empty() {
                return Err(HttpError::BadRequest(format!("malformed header `{line}`")));
            }
            if name.eq_ignore_ascii_case("content-length") {
                // RFC 9110 grammar is DIGIT-only; `usize::from_str` alone
                // would also accept a leading `+`, and any leniency here
                // is a framing disagreement (request smuggling) with
                // stricter proxies in front.
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(HttpError::BadRequest(format!(
                        "bad content-length `{value}`"
                    )));
                }
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad content-length `{value}`")))?;
                if let Some(prev) = content_length {
                    if prev != n {
                        return Err(HttpError::BadRequest(
                            "conflicting content-length headers".into(),
                        ));
                    }
                }
                content_length = Some(n);
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                if !value.eq_ignore_ascii_case("identity") {
                    return Err(HttpError::Unsupported(format!(
                        "transfer-encoding `{value}`"
                    )));
                }
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("x-tenet-deadline-ms") {
                // Digits-only (RFC-style), nonzero, and within u64: a
                // garbled or zero deadline is a client bug — rejecting it
                // beats silently running the request unbounded.
                let parsed = if !value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()) {
                    value.parse::<u64>().ok()
                } else {
                    None
                };
                match parsed {
                    Some(ms) if ms > 0 => deadline_ms = Some(ms),
                    _ => {
                        return Err(HttpError::BadRequest(format!(
                            "bad x-tenet-deadline-ms `{value}`: expected a positive integer \
                             of milliseconds"
                        )))
                    }
                }
            } else if name.eq_ignore_ascii_case("x-tenet-client") && !value.is_empty() {
                client = Some(value.to_string());
            } else if name.eq_ignore_ascii_case("x-tenet-trace-id") && !value.is_empty() {
                trace_id = Some(value.to_string());
            }
        }

        let body_len = content_length.unwrap_or(0);
        if body_len > self.max_body {
            return Err(HttpError::PayloadTooLarge);
        }
        let total = head_end + body_len;
        if self.buf.len() < total {
            return Ok(None); // body still in flight
        }
        let request = Request {
            method: method.to_string(),
            path: path.to_string(),
            body: self.buf[head_end..total].to_vec(),
            keep_alive,
            deadline_ms,
            client,
            trace_id,
        };
        // Drop the consumed request; pipelined successors stay buffered.
        self.buf.drain(..total);
        Ok(Some(request))
    }
}

/// Finds the end of the header block (index one past the blank line),
/// accepting both CRLF and bare-LF line endings.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            let rest = &buf[i + 1..];
            if rest.first() == Some(&b'\n') {
                return Some(i + 2);
            }
            if rest.first() == Some(&b'\r') && rest.get(1) == Some(&b'\n') {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Reason phrases for the statuses the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Encodes a complete response with `Content-Length` framing.
pub fn encode_response(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    encode_response_with(status, content_type, body, keep_alive, &[])
}

/// [`encode_response`] with extra response headers — the shed and
/// admission paths use this to attach `Retry-After` so well-behaved
/// clients back off uniformly.
pub fn encode_response_with(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, String)],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

/// Response headers as `(lowercased-name, trimmed-value)` pairs, in
/// wire order.
pub type Headers = Vec<(String, String)>;

/// A buffered client-side response reader — the mirror of
/// [`RequestBuffer`], shared by the end-to-end tests and the `servload`
/// generator. Bytes over-read past one response are kept for the next
/// call, so pipelined responses on a keep-alive connection all parse.
/// Only `Content-Length` framing is understood, which is exactly what
/// [`encode_response`] emits.
pub struct ResponseReader<R> {
    r: R,
    buf: Vec<u8>,
}

impl<R: Read> ResponseReader<R> {
    /// Wraps a readable connection.
    pub fn new(r: R) -> ResponseReader<R> {
        ResponseReader { r, buf: Vec::new() }
    }

    /// Reads the next full response: `(status, body)`.
    pub fn next_response(&mut self) -> std::io::Result<(u16, Vec<u8>)> {
        self.next_response_with_headers()
            .map(|(status, _headers, body)| (status, body))
    }

    /// Reads the next full response keeping its headers:
    /// `(status, headers, body)`. Header names are lowercased; the load
    /// generator uses this to collect `Server-Timing` phase breakdowns.
    pub fn next_response_with_headers(&mut self) -> std::io::Result<(u16, Headers, Vec<u8>)> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(e) = find_head_end(&self.buf) {
                break e;
            }
            let n = self.r.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed before response head"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
        let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_ascii_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?;
                }
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let total = head_end + content_length;
        while self.buf.len() < total {
            let n = self.r.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-body"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[head_end..total].to_vec();
        self.buf.drain(..total);
        Ok((status, headers, body))
    }
}

/// Reads one response from `r` (convenience for close-delimited
/// one-shot connections; for keep-alive reuse [`ResponseReader`]).
pub fn read_response(r: &mut impl Read) -> std::io::Result<(u16, Vec<u8>)> {
    ResponseReader::new(r).next_response()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> (Vec<Request>, Option<HttpError>) {
        let mut rb = RequestBuffer::new(8 * 1024, 64 * 1024);
        rb.feed(bytes);
        let mut out = Vec::new();
        loop {
            match rb.next_request() {
                Ok(Some(r)) => out.push(r),
                Ok(None) => return (out, None),
                Err(e) => return (out, Some(e)),
            }
        }
    }

    #[test]
    fn simple_get_parses() {
        let (reqs, err) = parse_all(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(err.is_none());
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "GET");
        assert_eq!(reqs[0].path, "/v1/healthz");
        assert!(reqs[0].keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(reqs[0].body.is_empty());
    }

    #[test]
    fn split_reads_reassemble() {
        let raw = b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
        // Feed one byte at a time: the request must appear exactly once,
        // only after the final byte.
        let mut rb = RequestBuffer::new(8 * 1024, 64 * 1024);
        for (i, b) in raw.iter().enumerate() {
            rb.feed(&[*b]);
            let got = rb.next_request().unwrap();
            if i + 1 < raw.len() {
                assert!(got.is_none(), "premature request at byte {i}");
            } else {
                let r = got.expect("request must complete on last byte");
                assert_eq!(r.body, b"hello world");
            }
        }
    }

    #[test]
    fn pipelined_requests_all_parse() {
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\n\
                    POST /c HTTP/1.1\r\nContent-Length: 2\r\nConnection: close\r\n\r\nxy";
        let (reqs, err) = parse_all(raw);
        assert!(err.is_none());
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].body, b"abc");
        assert_eq!(reqs[1].method, "GET");
        assert_eq!(reqs[1].path, "/b");
        assert_eq!(reqs[2].body, b"xy");
        assert!(!reqs[2].keep_alive);
    }

    #[test]
    fn oversized_declared_body_is_rejected() {
        let mut rb = RequestBuffer::new(8 * 1024, 16);
        rb.feed(b"POST /a HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
        assert_eq!(rb.next_request(), Err(HttpError::PayloadTooLarge));
    }

    #[test]
    fn oversized_headers_are_rejected_even_incomplete() {
        let mut rb = RequestBuffer::new(64, 1024);
        // No blank line yet, but already past the header cap: an attacker
        // must not be able to buffer unbounded header bytes.
        rb.feed(&[b'A'; 100]);
        assert_eq!(rb.next_request(), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn bad_content_length_values_are_rejected() {
        for bad in ["-1", "+17", "abc", "1 2", "0x10", ""] {
            let raw = format!("POST /a HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            let (reqs, err) = parse_all(raw.as_bytes());
            assert!(reqs.is_empty());
            assert!(
                matches!(err, Some(HttpError::BadRequest(_))),
                "content-length {bad:?} must be a 400"
            );
        }
        // Conflicting duplicates are rejected; agreeing duplicates pass.
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n";
        assert!(matches!(parse_all(raw).1, Some(HttpError::BadRequest(_))));
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok";
        let (reqs, err) = parse_all(raw);
        assert!(err.is_none());
        assert_eq!(reqs[0].body, b"ok");
    }

    #[test]
    fn chunked_bodies_are_unsupported() {
        let raw = b"POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(parse_all(raw).1, Some(HttpError::Unsupported(_))));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            "GET\r\n\r\n",
            "GET /a\r\n\r\n",
            "GET /a HTTP/2.0\r\n\r\n",
            "GET /a HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse_all(bad.as_bytes()).1, Some(HttpError::BadRequest(_))),
                "must reject {bad:?}"
            );
        }
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let (reqs, err) = parse_all(b"GET /v1/stats HTTP/1.1\nHost: x\n\n");
        assert!(err.is_none());
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, "/v1/stats");
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let (reqs, _) = parse_all(b"GET /a HTTP/1.0\r\n\r\n");
        assert!(!reqs[0].keep_alive);
        let (reqs, _) = parse_all(b"GET /a HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(reqs[0].keep_alive);
    }

    #[test]
    fn deadline_and_client_headers_parse_case_insensitively() {
        let (reqs, err) = parse_all(
            b"POST /v1/dse HTTP/1.1\r\nx-tenet-deadline-ms: 250\r\n\
              X-Tenet-Client: tenant-a\r\nContent-Length: 2\r\n\r\n{}",
        );
        assert!(err.is_none());
        assert_eq!(reqs[0].deadline_ms, Some(250));
        assert_eq!(reqs[0].client.as_deref(), Some("tenant-a"));
        // Trace ids are carried through verbatim (validated at the edge).
        let (reqs, err) = parse_all(b"GET /a HTTP/1.1\r\nx-tenet-trace-id: 00c0ffee\r\n\r\n");
        assert!(err.is_none());
        assert_eq!(reqs[0].trace_id.as_deref(), Some("00c0ffee"));
    }

    #[test]
    fn malformed_deadline_headers_are_rejected() {
        // Non-numeric, zero, negative, overflowing, and empty values all
        // 400 instead of silently running the request without a budget.
        for bad in [
            "soon",
            "0",
            "-5",
            "1e3",
            "99999999999999999999999",
            "",
            "+25",
        ] {
            let raw = format!("GET /a HTTP/1.1\r\nX-Tenet-Deadline-Ms: {bad}\r\n\r\n");
            let (reqs, err) = parse_all(raw.as_bytes());
            assert!(reqs.is_empty(), "deadline {bad:?} must not parse");
            assert!(
                matches!(err, Some(HttpError::BadRequest(_))),
                "deadline {bad:?} must be a 400, got {err:?}"
            );
        }
        // The largest representable deadline is still accepted.
        let raw = format!(
            "GET /a HTTP/1.1\r\nX-Tenet-Deadline-Ms: {}\r\n\r\n",
            u64::MAX
        );
        let (reqs, err) = parse_all(raw.as_bytes());
        assert!(err.is_none());
        assert_eq!(reqs[0].deadline_ms, Some(u64::MAX));
    }

    #[test]
    fn extra_headers_are_emitted_before_the_blank_line() {
        let bytes = encode_response_with(
            429,
            "application/json",
            b"{}",
            false,
            &[("Retry-After", "2".to_string())],
        );
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text[..head_end].contains("Retry-After: 2"), "{text}");
        // 504 has a proper reason phrase too.
        let bytes = encode_response(504, "application/json", b"{}", false);
        assert!(String::from_utf8(bytes)
            .unwrap()
            .contains("504 Gateway Timeout"));
    }

    #[test]
    fn response_roundtrips_through_reader() {
        let encoded = encode_response(200, "application/json", b"{\"ok\":true}", true);
        let (status, body) = read_response(&mut &encoded[..]).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
    }
}
