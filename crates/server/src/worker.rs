//! The request-handling core, decoupled from any listener.
//!
//! [`WorkerCore`] owns everything one analysis worker needs to answer a
//! request — configuration, counters, the dedup layer, the drain flag —
//! but holds no socket: canonical request bytes in, response bytes out.
//! The TCP [`Server`](crate::Server) wraps one core behind an accept
//! loop and the HTTP codec; the sharding router's `LocalTransport`
//! dispatches into a core directly, skipping the loopback hop entirely.
//! Both paths share this code, so a request is counted, deduplicated,
//! and attributed identically whichever way it arrives.

use crate::dedup::{CachedResponse, Claim, Dedup};
use crate::stats::ServerStats;
use crate::{handlers, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tenet_core::json::Json;
use tenet_core::obs::{self, EdgeTimings, Span, TraceRecord, TraceStore};
use tenet_core::CounterHandle;

/// One worker's request-handling state: configuration, counters, dedup,
/// and the drain flag. Shared by the accept loop, the connection
/// workers, the handlers — and any in-process caller.
pub struct WorkerCore {
    /// Service configuration (immutable after construction).
    pub config: ServerConfig,
    /// Request/latency counters.
    pub stats: ServerStats,
    /// The response/in-flight dedup layer.
    pub dedup: Arc<Dedup>,
    /// Set to start a graceful drain (shutdown endpoint, handles).
    pub shutdown: Arc<AtomicBool>,
    /// Construction time, for uptime reporting.
    pub started: Instant,
    /// Finished request timelines (recent + recent-slowest rings),
    /// served by `GET /v1/trace/<id>` and `GET /v1/trace/slow`.
    pub traces: TraceStore,
    /// Connections admitted but not yet picked up (filled in by the
    /// server; handlers read it for `/v1/stats`; stays 0 for a core
    /// driven in-process, which has no backlog).
    backlog: std::sync::OnceLock<Box<dyn Fn() -> usize + Send + Sync>>,
}

impl WorkerCore {
    /// A fresh core. `config.addr` is ignored here — binding is the
    /// [`Server`](crate::Server)'s job; a core used purely in-process
    /// never touches a socket.
    pub fn new(config: ServerConfig) -> Arc<WorkerCore> {
        let dedup = Dedup::new(config.cache_capacity);
        let traces = TraceStore::new(config.trace_buffer, config.slow_ms.saturating_mul(1_000));
        Arc::new(WorkerCore {
            config,
            stats: ServerStats::default(),
            dedup,
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            traces,
            backlog: std::sync::OnceLock::new(),
        })
    }

    /// Jobs waiting for a worker right now (0 without a listener).
    pub fn backlog(&self) -> usize {
        self.backlog.get().map_or(0, |f| f())
    }

    /// Installs the live backlog probe (server bind time; first call
    /// wins).
    pub(crate) fn set_backlog_probe(&self, probe: Box<dyn Fn() -> usize + Send + Sync>) {
        let _ = self.backlog.set(probe);
    }

    /// Whether a graceful drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests a graceful drain (idempotent). For a TCP-fronted core
    /// the accept loop observes this and winds down; for an in-process
    /// core it simply marks the worker dead to local dispatch.
    pub fn drain(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Handles one parsed request end to end: counting, dedup, routing,
    /// latency attribution. This is the worker's whole request path
    /// minus HTTP framing — the body bytes in, the response status and
    /// entity bytes out (`Arc` so cached answers are a pointer copy).
    pub fn handle(
        self: &Arc<WorkerCore>,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> (u16, Arc<Vec<u8>>) {
        self.handle_canonical(method, path, body, None)
    }

    /// [`handle`](WorkerCore::handle), but reusing a canonical form the
    /// caller already computed (the sharding router canonicalizes every
    /// request to pick an owner; recomputing it here would double the
    /// JSON-normalization cost on the in-process dispatch path). `canon`
    /// must be exactly `canonical_request(method, path, body)`.
    pub fn handle_canonical(
        self: &Arc<WorkerCore>,
        method: &str,
        path: &str,
        body: &[u8],
        canon: Option<&str>,
    ) -> (u16, Arc<Vec<u8>>) {
        self.handle_with_deadline(method, path, body, canon, None)
    }

    /// [`handle_canonical`](WorkerCore::handle_canonical), plus the
    /// request's deadline. The handlers observe it between units of work
    /// and answer `504` or an explicitly `"truncated"` partial result
    /// instead of computing past it; degraded answers never enter the
    /// dedup cache (the deadline is not part of the canonical key, so a
    /// cached truncation would poison deadline-free repeats).
    pub fn handle_with_deadline(
        self: &Arc<WorkerCore>,
        method: &str,
        path: &str,
        body: &[u8],
        canon: Option<&str>,
        deadline: Option<Instant>,
    ) -> (u16, Arc<Vec<u8>>) {
        let (status, bytes, _trace) = self.handle_traced(
            method,
            path,
            body,
            canon,
            deadline,
            None,
            EdgeTimings::default(),
        );
        (status, bytes)
    }

    /// [`handle_with_deadline`](WorkerCore::handle_with_deadline), plus
    /// request tracing. With `trace_id` set (and the trace store
    /// enabled), the worker records a span timeline — queue/parse edge
    /// timings handed in by the listener, canonicalization, dedup,
    /// computation split into engine time vs cold ISL time, and
    /// serialization — stores it in [`WorkerCore::traces`], and returns
    /// the finished record so the caller can echo `Server-Timing`.
    /// Cached response *bytes* are untouched by tracing: timelines ride
    /// in headers and the trace store only.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_traced(
        self: &Arc<WorkerCore>,
        method: &str,
        path: &str,
        body: &[u8],
        canon: Option<&str>,
        deadline: Option<Instant>,
        trace_id: Option<u64>,
        edge: EdgeTimings,
    ) -> (u16, Arc<Vec<u8>>, Option<Arc<TraceRecord>>) {
        // Attach the core's ISL counter handle for the duration of the
        // request so `/v1/stats` attributes relational work to this
        // worker exactly, on whichever thread the caller runs us.
        let _attached = self.stats.isl_handle.attach();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let _in_flight = InFlightGuard::new(&self.stats.in_flight);
        let t0 = Instant::now();
        // Observability endpoints bypass dedup and tracing: scraping
        // metrics must never evict a cached analysis or spam the rings.
        if method == "GET" {
            if let Some((status, bytes)) = self.handle_obs(path) {
                self.stats.record(status, t0.elapsed());
                return (status, bytes, None);
            }
        }
        let tracing = trace_id.is_some() && self.traces.enabled();
        let scope = tracing.then(obs::begin);
        // A per-request ISL handle so the trace can split the handler's
        // time into engine work vs cold integer-set computation.
        let request_isl = tracing.then(CounterHandle::new);
        let (status, bytes): (u16, Arc<Vec<u8>>) = if handlers::is_cacheable(method, path) {
            let t_canon = Instant::now();
            let key = match canon {
                Some(c) => std::borrow::Cow::Borrowed(c),
                None => {
                    std::borrow::Cow::Owned(crate::dedup::canonical_request(method, path, body))
                }
            };
            if tracing && canon.is_none() {
                obs::add_span("canon", t_canon, t_canon.elapsed(), "");
            }
            let t_dedup = Instant::now();
            let claim = self.dedup.claim(&key);
            match claim {
                Claim::Cached(resp) => {
                    if tracing {
                        obs::add_span("dedup", t_dedup, t_dedup.elapsed(), "hit");
                    }
                    (resp.status, resp.body)
                }
                Claim::Leader(token) => {
                    if tracing {
                        obs::add_span("dedup", t_dedup, t_dedup.elapsed(), "leader");
                    }
                    let (reply, cacheable) =
                        self.route_timed(method, path, body, deadline, request_isl.as_ref());
                    let t_ser = Instant::now();
                    let resp = CachedResponse {
                        status: reply.status,
                        body: Arc::new(reply.body.to_string().into_bytes()),
                    };
                    if tracing {
                        obs::add_span("serialize", t_ser, t_ser.elapsed(), "");
                    }
                    if cacheable {
                        self.dedup.publish(token, resp.clone());
                    } else {
                        // Dropping the token abandons leadership: a
                        // waiter (or the next arrival) recomputes instead
                        // of inheriting a possibly-transient failure.
                        drop(token);
                    }
                    (resp.status, resp.body)
                }
            }
        } else {
            let (reply, _cacheable) =
                self.route_timed(method, path, body, deadline, request_isl.as_ref());
            let t_ser = Instant::now();
            let bytes = Arc::new(reply.body.to_string().into_bytes());
            if tracing {
                obs::add_span("serialize", t_ser, t_ser.elapsed(), "");
            }
            (reply.status, bytes)
        };
        self.stats.record(status, t0.elapsed());
        let record = match (scope, trace_id) {
            (Some(scope), Some(id)) => {
                let handled_us = t0.elapsed().as_micros() as u64;
                let mut spans = scope.finish();
                // The edge phases (accept-queue wait, request parsing)
                // happened before this scope began: prepend them and
                // shift everything else right so offsets stay honest.
                let off = edge.queue_us + edge.parse_us;
                if off > 0 {
                    for s in &mut spans {
                        s.start_us += off;
                    }
                    if edge.parse_us > 0 {
                        spans.insert(0, edge_span("parse", edge.queue_us, edge.parse_us));
                    }
                    if edge.queue_us > 0 {
                        spans.insert(0, edge_span("queue", 0, edge.queue_us));
                    }
                }
                let rec = TraceRecord {
                    id,
                    tier: "worker",
                    endpoint: format!("{method} {path}"),
                    status,
                    total_us: off + handled_us,
                    spans,
                };
                Some(self.traces.record(rec))
            }
            _ => None,
        };
        (status, bytes, record)
    }

    /// Answers the observability GETs (`/metrics`, `/v1/trace/...`), or
    /// `None` for every other path.
    fn handle_obs(self: &Arc<WorkerCore>, path: &str) -> Option<(u16, Arc<Vec<u8>>)> {
        if path == "/metrics" {
            let doc =
                self.stats
                    .to_json(self.dedup.stats(), self.started.elapsed(), self.backlog());
            let text = crate::stats::prometheus_from_worker_doc(&doc);
            return Some((200, Arc::new(text.into_bytes())));
        }
        let rest = path.strip_prefix("/v1/trace/")?;
        let (rest, query) = match rest.split_once('?') {
            Some((r, q)) => (r, Some(q)),
            None => (rest, None),
        };
        if rest == "slow" {
            // A present-but-unparseable `ms=` is a client error, not a
            // silent fall-through to the unfiltered listing. `ms=0` is
            // valid (explicitly "no threshold").
            let min_us =
                match query.and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("ms="))) {
                    Some(v) => match v.parse::<u64>() {
                        Ok(ms) => Some(ms.saturating_mul(1_000)),
                        Err(_) => {
                            let body = Json::obj([(
                                "error",
                                Json::obj([
                                    ("kind", Json::from("usage")),
                                    (
                                        "message",
                                        Json::from(format!(
                                            "bad `ms` value `{v}`: expected a non-negative integer"
                                        )),
                                    ),
                                ]),
                            )]);
                            return Some((400, Arc::new(body.to_string().into_bytes())));
                        }
                    },
                    None => None,
                };
            let rows = self.traces.slow(min_us);
            let body = Json::obj([(
                "traces",
                Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
            )]);
            return Some((200, Arc::new(body.to_string().into_bytes())));
        }
        let Some(id) = obs::TraceId::parse(rest) else {
            let body = Json::obj([(
                "error",
                Json::obj([
                    ("kind", Json::from("usage")),
                    ("message", Json::from("malformed trace id")),
                ]),
            )]);
            return Some((400, Arc::new(body.to_string().into_bytes())));
        };
        match self.traces.find(id.0) {
            Some(rec) => {
                let body = Json::obj([
                    ("trace_id", Json::from(id.to_string())),
                    ("records", Json::Arr(vec![rec.to_json()])),
                ]);
                Some((200, Arc::new(body.to_string().into_bytes())))
            }
            None => {
                let body = Json::obj([
                    ("error",
                    Json::obj([
                        ("kind", Json::from("not_found")),
                        ("message", Json::from("trace not in the ring (evicted, never recorded, or tracing disabled)")),
                    ]))
                ]);
                Some((404, Arc::new(body.to_string().into_bytes())))
            }
        }
    }

    /// [`route_guarded`](WorkerCore::route_guarded) plus trace phases:
    /// the handler's wall time minus the request's cold ISL time becomes
    /// the compute phase, the cold ISL time its own `isl` phase.
    fn route_timed(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        deadline: Option<Instant>,
        request_isl: Option<&CounterHandle>,
    ) -> (handlers::Reply, bool) {
        let Some(handle) = request_isl else {
            return self.route_guarded(method, path, body, deadline);
        };
        let _attached = handle.attach();
        let t0 = Instant::now();
        let result = self.route_guarded(method, path, body, deadline);
        let wall = t0.elapsed();
        let cold = std::time::Duration::from_nanos(handle.cold_ns());
        let compute_name = match path {
            "/v1/analyze" => "analyze",
            "/v1/dse" => "dse",
            _ => "compute",
        };
        obs::add_span(compute_name, t0, wall.saturating_sub(cold), "");
        obs::add_span(
            "isl",
            t0,
            cold,
            format!(
                "hits={} misses={} fast={}",
                handle.hits(),
                handle.misses(),
                handle.fast_paths()
            ),
        );
        result
    }

    /// Runs the handler router, converting an escaped panic (a bug in
    /// the analysis engine on an adversarial input, or resource
    /// exhaustion inside a spawn) into a structured 500 instead of
    /// letting it unwind through the counters. Returns `cacheable =
    /// false` for the panic path: unlike a deterministic analysis error,
    /// a panic may be transient (thread/memory pressure), and a cached
    /// 500 would be replayed forever. Panic-poisoned state is not a
    /// concern: the engine works on request-local data, and the global
    /// memo cache is only ever an accelerator.
    fn route_guarded(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        deadline: Option<Instant>,
    ) -> (handlers::Reply, bool) {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handlers::route(method, path, body, self, deadline)
        })) {
            Ok(reply) => {
                if reply.status == 504 {
                    self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                } else if reply.degraded {
                    self.stats
                        .degraded_responses
                        .fetch_add(1, Ordering::Relaxed);
                }
                // Degraded answers are timing accidents, not facts about
                // the request — never cache them.
                let cacheable = !reply.degraded;
                (reply, cacheable)
            }
            Err(_) => (
                handlers::Reply {
                    status: 500,
                    body: Json::obj([(
                        "error",
                        Json::obj([
                            ("kind", Json::from("internal")),
                            ("message", Json::from("handler panicked; see server log")),
                        ]),
                    )]),
                    degraded: false,
                },
                false,
            ),
        }
    }
}

/// A pre-scope edge phase (queue wait, request parse).
fn edge_span(name: &str, start_us: u64, dur_us: u64) -> Span {
    Span {
        name: name.to_string(),
        start_us,
        dur_us,
        detail: String::new(),
        phase: true,
    }
}

/// RAII decrement for the `in_flight` gauge: early returns and panics
/// unwinding out of the request path can no longer leak it upward.
struct InFlightGuard<'a>(&'a AtomicU64);

impl<'a> InFlightGuard<'a> {
    fn new(gauge: &'a AtomicU64) -> InFlightGuard<'a> {
        gauge.fetch_add(1, Ordering::Relaxed);
        InFlightGuard(gauge)
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Arc<WorkerCore> {
        WorkerCore::new(ServerConfig {
            addr: "unused".into(),
            ..Default::default()
        })
    }

    #[test]
    fn core_answers_healthz_without_a_socket() {
        let core = core();
        let (status, body) = core.handle("GET", "/v1/healthz", b"");
        assert_eq!(status, 200);
        let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn repeated_analyze_is_a_pointer_copy_of_the_first_answer() {
        let core = core();
        let body = Json::obj([(
            "problem",
            Json::from(
                "for (i = 0; i < 2; i++)\n  for (j = 0; j < 2; j++)\n    S: Y[i] += A[i][j];\n\n\
                 { S[i,j] -> (PE[i] | T[j]) }\n\n\
                 arch \"t\" { array = [2] interconnect = systolic1d bandwidth = 4 }\n",
            ),
        )])
        .to_string();
        let (s1, b1) = core.handle("POST", "/v1/analyze", body.as_bytes());
        assert_eq!(s1, 200, "{}", String::from_utf8_lossy(&b1));
        let (s2, b2) = core.handle("POST", "/v1/analyze", body.as_bytes());
        assert_eq!(s2, 200);
        assert!(Arc::ptr_eq(&b1, &b2), "repeat must share the cached bytes");
        let d = core.dedup.stats();
        assert_eq!((d.misses, d.hits), (1, 1));
        // Both requests counted and bucketed.
        assert_eq!(core.stats.completed.load(Ordering::Relaxed), 2);
    }

    fn analyze_body() -> String {
        Json::obj([(
            "problem",
            Json::from(
                "for (i = 0; i < 2; i++)\n  for (j = 0; j < 2; j++)\n    S: Y[i] += A[i][j];\n\n\
                 { S[i,j] -> (PE[i] | T[j]) }\n\n\
                 arch \"t\" { array = [2] interconnect = systolic1d bandwidth = 4 }\n",
            ),
        )])
        .to_string()
    }

    #[test]
    fn traced_request_records_phases_summing_close_to_total() {
        let core = core();
        let edge = EdgeTimings {
            queue_us: 30,
            parse_us: 20,
        };
        let (status, _bytes, rec) = core.handle_traced(
            "POST",
            "/v1/analyze",
            analyze_body().as_bytes(),
            None,
            None,
            Some(0xabc),
            edge,
        );
        assert_eq!(status, 200);
        let rec = rec.expect("traced request must yield a record");
        assert_eq!(rec.tier, "worker");
        assert_eq!(rec.endpoint, "POST /v1/analyze");
        for name in [
            "queue",
            "parse",
            "canon",
            "dedup",
            "analyze",
            "isl",
            "serialize",
        ] {
            assert!(
                rec.spans.iter().any(|s| s.name == name && s.phase),
                "missing phase {name:?} in {:?}",
                rec.spans
            );
        }
        // The phases tile the timeline: the only uncovered time is a few
        // instruction-counting gaps between stopwatch reads.
        let sum = rec.phase_sum_us();
        assert!(
            sum <= rec.total_us + 10 && rec.total_us.saturating_sub(sum) < 500,
            "phase sum {sum}µs vs total {}µs",
            rec.total_us
        );
        // The record is findable through the store and the endpoint.
        assert_eq!(core.traces.find(0xabc).unwrap().id, 0xabc);
        let (s, body) = core.handle("GET", "/v1/trace/0000000000000abc", b"");
        assert_eq!(s, 200);
        let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(
            v.get("records").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        let (s, _) = core.handle("GET", "/v1/trace/ffffffffffffffff", b"");
        assert_eq!(s, 404);
        let (s, _) = core.handle("GET", "/v1/trace/not-hex", b"");
        assert_eq!(s, 400);
    }

    #[test]
    fn untraced_requests_record_nothing_and_metrics_render() {
        let core = core();
        let (_, _, rec) = core.handle_traced(
            "POST",
            "/v1/analyze",
            analyze_body().as_bytes(),
            None,
            None,
            None,
            EdgeTimings::default(),
        );
        assert!(rec.is_none());
        let (s, body) = core.handle("GET", "/metrics", b"");
        assert_eq!(s, 200);
        let text = String::from_utf8(body.to_vec()).unwrap();
        assert!(text.contains("tenet_worker_requests_total"), "{text}");
        assert!(
            text.contains("tenet_worker_request_latency_us_bucket{le=\"+Inf\"}"),
            "{text}"
        );
        // In-flight drained back to zero through the RAII guard.
        assert_eq!(core.stats.in_flight.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn drain_is_observable_and_idempotent() {
        let core = core();
        assert!(!core.is_draining());
        let (status, _) = core.handle("POST", "/v1/shutdown", b"");
        assert_eq!(status, 200);
        assert!(core.is_draining());
        core.drain();
        assert!(core.is_draining());
    }
}
