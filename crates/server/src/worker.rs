//! The request-handling core, decoupled from any listener.
//!
//! [`WorkerCore`] owns everything one analysis worker needs to answer a
//! request — configuration, counters, the dedup layer, the drain flag —
//! but holds no socket: canonical request bytes in, response bytes out.
//! The TCP [`Server`](crate::Server) wraps one core behind an accept
//! loop and the HTTP codec; the sharding router's `LocalTransport`
//! dispatches into a core directly, skipping the loopback hop entirely.
//! Both paths share this code, so a request is counted, deduplicated,
//! and attributed identically whichever way it arrives.

use crate::dedup::{CachedResponse, Claim, Dedup};
use crate::stats::ServerStats;
use crate::{handlers, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tenet_core::json::Json;

/// One worker's request-handling state: configuration, counters, dedup,
/// and the drain flag. Shared by the accept loop, the connection
/// workers, the handlers — and any in-process caller.
pub struct WorkerCore {
    /// Service configuration (immutable after construction).
    pub config: ServerConfig,
    /// Request/latency counters.
    pub stats: ServerStats,
    /// The response/in-flight dedup layer.
    pub dedup: Arc<Dedup>,
    /// Set to start a graceful drain (shutdown endpoint, handles).
    pub shutdown: Arc<AtomicBool>,
    /// Construction time, for uptime reporting.
    pub started: Instant,
    /// Connections admitted but not yet picked up (filled in by the
    /// server; handlers read it for `/v1/stats`; stays 0 for a core
    /// driven in-process, which has no backlog).
    backlog: std::sync::OnceLock<Box<dyn Fn() -> usize + Send + Sync>>,
}

impl WorkerCore {
    /// A fresh core. `config.addr` is ignored here — binding is the
    /// [`Server`](crate::Server)'s job; a core used purely in-process
    /// never touches a socket.
    pub fn new(config: ServerConfig) -> Arc<WorkerCore> {
        let dedup = Dedup::new(config.cache_capacity);
        Arc::new(WorkerCore {
            config,
            stats: ServerStats::default(),
            dedup,
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            backlog: std::sync::OnceLock::new(),
        })
    }

    /// Jobs waiting for a worker right now (0 without a listener).
    pub fn backlog(&self) -> usize {
        self.backlog.get().map_or(0, |f| f())
    }

    /// Installs the live backlog probe (server bind time; first call
    /// wins).
    pub(crate) fn set_backlog_probe(&self, probe: Box<dyn Fn() -> usize + Send + Sync>) {
        let _ = self.backlog.set(probe);
    }

    /// Whether a graceful drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests a graceful drain (idempotent). For a TCP-fronted core
    /// the accept loop observes this and winds down; for an in-process
    /// core it simply marks the worker dead to local dispatch.
    pub fn drain(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Handles one parsed request end to end: counting, dedup, routing,
    /// latency attribution. This is the worker's whole request path
    /// minus HTTP framing — the body bytes in, the response status and
    /// entity bytes out (`Arc` so cached answers are a pointer copy).
    pub fn handle(
        self: &Arc<WorkerCore>,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> (u16, Arc<Vec<u8>>) {
        self.handle_canonical(method, path, body, None)
    }

    /// [`handle`](WorkerCore::handle), but reusing a canonical form the
    /// caller already computed (the sharding router canonicalizes every
    /// request to pick an owner; recomputing it here would double the
    /// JSON-normalization cost on the in-process dispatch path). `canon`
    /// must be exactly `canonical_request(method, path, body)`.
    pub fn handle_canonical(
        self: &Arc<WorkerCore>,
        method: &str,
        path: &str,
        body: &[u8],
        canon: Option<&str>,
    ) -> (u16, Arc<Vec<u8>>) {
        self.handle_with_deadline(method, path, body, canon, None)
    }

    /// [`handle_canonical`](WorkerCore::handle_canonical), plus the
    /// request's deadline. The handlers observe it between units of work
    /// and answer `504` or an explicitly `"truncated"` partial result
    /// instead of computing past it; degraded answers never enter the
    /// dedup cache (the deadline is not part of the canonical key, so a
    /// cached truncation would poison deadline-free repeats).
    pub fn handle_with_deadline(
        self: &Arc<WorkerCore>,
        method: &str,
        path: &str,
        body: &[u8],
        canon: Option<&str>,
        deadline: Option<Instant>,
    ) -> (u16, Arc<Vec<u8>>) {
        // Attach the core's ISL counter handle for the duration of the
        // request so `/v1/stats` attributes relational work to this
        // worker exactly, on whichever thread the caller runs us.
        let _attached = self.stats.isl_handle.attach();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let (status, bytes): (u16, Arc<Vec<u8>>) = if handlers::is_cacheable(method, path) {
            let key = match canon {
                Some(c) => std::borrow::Cow::Borrowed(c),
                None => {
                    std::borrow::Cow::Owned(crate::dedup::canonical_request(method, path, body))
                }
            };
            match self.dedup.claim(&key) {
                Claim::Cached(resp) => (resp.status, resp.body),
                Claim::Leader(token) => {
                    let (reply, cacheable) = self.route_guarded(method, path, body, deadline);
                    let resp = CachedResponse {
                        status: reply.status,
                        body: Arc::new(reply.body.to_string().into_bytes()),
                    };
                    if cacheable {
                        self.dedup.publish(token, resp.clone());
                    } else {
                        // Dropping the token abandons leadership: a
                        // waiter (or the next arrival) recomputes instead
                        // of inheriting a possibly-transient failure.
                        drop(token);
                    }
                    (resp.status, resp.body)
                }
            }
        } else {
            let (reply, _cacheable) = self.route_guarded(method, path, body, deadline);
            (reply.status, Arc::new(reply.body.to_string().into_bytes()))
        };
        self.stats.record(status, t0.elapsed());
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        (status, bytes)
    }

    /// Runs the handler router, converting an escaped panic (a bug in
    /// the analysis engine on an adversarial input, or resource
    /// exhaustion inside a spawn) into a structured 500 instead of
    /// letting it unwind through the counters. Returns `cacheable =
    /// false` for the panic path: unlike a deterministic analysis error,
    /// a panic may be transient (thread/memory pressure), and a cached
    /// 500 would be replayed forever. Panic-poisoned state is not a
    /// concern: the engine works on request-local data, and the global
    /// memo cache is only ever an accelerator.
    fn route_guarded(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        deadline: Option<Instant>,
    ) -> (handlers::Reply, bool) {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handlers::route(method, path, body, self, deadline)
        })) {
            Ok(reply) => {
                if reply.status == 504 {
                    self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                } else if reply.degraded {
                    self.stats
                        .degraded_responses
                        .fetch_add(1, Ordering::Relaxed);
                }
                // Degraded answers are timing accidents, not facts about
                // the request — never cache them.
                let cacheable = !reply.degraded;
                (reply, cacheable)
            }
            Err(_) => (
                handlers::Reply {
                    status: 500,
                    body: Json::obj([(
                        "error",
                        Json::obj([
                            ("kind", Json::from("internal")),
                            ("message", Json::from("handler panicked; see server log")),
                        ]),
                    )]),
                    degraded: false,
                },
                false,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Arc<WorkerCore> {
        WorkerCore::new(ServerConfig {
            addr: "unused".into(),
            ..Default::default()
        })
    }

    #[test]
    fn core_answers_healthz_without_a_socket() {
        let core = core();
        let (status, body) = core.handle("GET", "/v1/healthz", b"");
        assert_eq!(status, 200);
        let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn repeated_analyze_is_a_pointer_copy_of_the_first_answer() {
        let core = core();
        let body = Json::obj([(
            "problem",
            Json::from(
                "for (i = 0; i < 2; i++)\n  for (j = 0; j < 2; j++)\n    S: Y[i] += A[i][j];\n\n\
                 { S[i,j] -> (PE[i] | T[j]) }\n\n\
                 arch \"t\" { array = [2] interconnect = systolic1d bandwidth = 4 }\n",
            ),
        )])
        .to_string();
        let (s1, b1) = core.handle("POST", "/v1/analyze", body.as_bytes());
        assert_eq!(s1, 200, "{}", String::from_utf8_lossy(&b1));
        let (s2, b2) = core.handle("POST", "/v1/analyze", body.as_bytes());
        assert_eq!(s2, 200);
        assert!(Arc::ptr_eq(&b1, &b2), "repeat must share the cached bytes");
        let d = core.dedup.stats();
        assert_eq!((d.misses, d.hits), (1, 1));
        // Both requests counted and bucketed.
        assert_eq!(core.stats.completed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn drain_is_observable_and_idempotent() {
        let core = core();
        assert!(!core.is_draining());
        let (status, _) = core.handle("POST", "/v1/shutdown", b"");
        assert_eq!(status, 200);
        assert!(core.is_draining());
        core.drain();
        assert!(core.is_draining());
    }
}
