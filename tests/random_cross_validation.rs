//! Randomized cross-validation: for random (kernel shape, dataflow,
//! interconnect) triples, the analytical model's volume metrics must match
//! the cycle-level simulator exactly. The two implementations share no
//! code (integer-set counting vs per-instance execution), so agreement is
//! strong evidence both are right.

use proptest::prelude::*;
use tenet::core::{Analysis, ArchSpec, Dataflow, Interconnect, TensorOp};
use tenet::sim::{simulate, SimOptions};

fn gemm(i: i64, j: i64, k: i64) -> TensorOp {
    TensorOp::builder("gemm")
        .dim("i", i)
        .dim("j", j)
        .dim("k", k)
        .read("A", ["i", "k"])
        .read("B", ["k", "j"])
        .write("Y", ["i", "j"])
        .build()
        .unwrap()
}

fn interconnect(sel: u8) -> Interconnect {
    match sel % 3 {
        0 => Interconnect::Systolic2D,
        1 => Interconnect::Mesh,
        _ => Interconnect::Systolic1D,
    }
}

fn check(op: &TensorOp, df: &Dataflow, arch: &ArchSpec) -> Result<(), TestCaseError> {
    let analysis = match Analysis::new(op, df, arch) {
        Ok(a) => a,
        Err(_) => return Ok(()), // out-of-bounds candidates are skipped
    };
    let sim = simulate(op, df, arch, &SimOptions::default()).unwrap();
    for t in ["A", "B", "Y"] {
        let v = analysis.volumes(t).unwrap();
        let s = &sim.tensors[t];
        prop_assert_eq!(
            s.scratchpad as u128,
            v.unique,
            "tensor {} unique: sim {} model {} (df {:?})",
            t,
            s.scratchpad,
            v.unique,
            df
        );
        prop_assert_eq!(
            (s.temporal_hits + s.spatial_hits) as u128,
            v.reuse,
            "tensor {} reuse (df {:?})",
            t,
            df
        );
    }
    let u = analysis.utilization().unwrap();
    prop_assert_eq!(u.time_stamps as u64, sim.compute_cycles);
    prop_assert!((u.average - sim.avg_utilization()).abs() < 1e-9);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random tiled 2-D dataflows with and without a skewed innermost
    /// time-stamp, on random small GEMMs and all three topologies.
    #[test]
    fn random_tiled_dataflows(
        i in 2i64..=6,
        j in 2i64..=6,
        k in 2i64..=6,
        pe in 2i64..=3,
        skew in proptest::bool::ANY,
        ic in 0u8..3,
    ) {
        let op = gemm(i, j, k);
        let inner = if skew {
            format!("i mod {pe} + j mod {pe} + k")
        } else {
            "k".to_string()
        };
        let df = Dataflow::new(
            [format!("i mod {pe}"), format!("j mod {pe}")],
            [format!("floor(i/{pe})"), format!("floor(j/{pe})"), inner],
        );
        let arch = ArchSpec::new("arr", [pe, pe], interconnect(ic), 1e9);
        check(&op, &df, &arch)?;
    }

    /// Random permuted 1-D dataflows on multicast and systolic arrays.
    #[test]
    fn random_1d_dataflows(
        i in 2i64..=5,
        j in 2i64..=5,
        k in 2i64..=5,
        which in 0usize..3,
        mc in proptest::bool::ANY,
    ) {
        let op = gemm(i, j, k);
        let dims = ["i", "j", "k"];
        let sp = dims[which];
        let rest: Vec<&str> = dims.iter().filter(|d| **d != sp).copied().collect();
        let df = Dataflow::new(
            [format!("{sp} mod 8")],
            [format!("floor({sp}/8)"), rest[0].to_string(), rest[1].to_string()],
        );
        let ic = if mc {
            Interconnect::Multicast { radius: 3 }
        } else {
            Interconnect::Systolic1D
        };
        let arch = ArchSpec::new("arr", [8], ic, 1e9);
        check(&op, &df, &arch)?;
    }

    /// Random affine space-stamps (the expressiveness frontier): the PE
    /// coordinate mixes two iterators.
    #[test]
    fn random_affine_space_stamps(
        i in 2i64..=4,
        j in 2i64..=4,
        k in 2i64..=4,
        ic in 0u8..2,
    ) {
        let op = gemm(i, j, k);
        // PE[i + j, ...] like the Eyeriss row mapping.
        let df = Dataflow::new(
            ["i + j".to_string(), "k".to_string()],
            ["i".to_string(), "j".to_string()],
        );
        let arch = ArchSpec::new("arr", [i + j, k], interconnect(ic), 1e9);
        check(&op, &df, &arch)?;
    }
}
