//! Integration tests pinning the numbers the paper states explicitly:
//! the Figure 3 worked example, the Figure 1(c) reuse comparison, the
//! Section IV-A design-space sizes, and the notation round trips.

use tenet::core::{presets, Analysis, AnalysisOptions, ArchSpec, Dataflow, Interconnect, TensorOp};
use tenet::isl::Map;
use tenet::maestro::{evaluate, representable, DcMapping};
use tenet::workloads::{dataflows, kernels};

fn figure3() -> (TensorOp, Dataflow, ArchSpec) {
    let gemm = kernels::gemm(2, 2, 4).unwrap();
    let df = Dataflow::new(["i", "j"], ["i + j + k"]);
    let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
    (gemm, df, arch)
}

/// Figure 3: at time-stamp T[1] exactly the instances [0,0,1], [1,0,0],
/// [0,1,0] execute.
#[test]
fn figure3_time_stamp_one() {
    let (op, df, _) = figure3();
    let theta = df.theta(&op).unwrap();
    // ST = [p0, p1, t]; fix t = 1.
    let slice = theta.fix_out(2, 1);
    let pts = slice.points(100).unwrap();
    let instances: Vec<Vec<i64>> = pts.iter().map(|p| p[..3].to_vec()).collect();
    assert_eq!(instances.len(), 3);
    assert!(instances.contains(&vec![0, 0, 1]));
    assert!(instances.contains(&vec![1, 0, 0]));
    assert!(instances.contains(&vec![0, 1, 0]));
}

/// Section V-A worked volumes for tensor A, truncated to time-stamps 0..3
/// exactly as in the text: Total 12, Reuse 5 (stamps 1..3), Unique 7.
#[test]
fn section5_truncated_volumes() {
    let (op, df, arch) = figure3();
    let analysis = Analysis::new(&op, &df, &arch).unwrap();
    let adf = analysis.assignment("A").unwrap();
    let window = Map::parse("{ ST[p0,p1,t] -> ST[p0,p1,t] : 0 <= t <= 3 }").unwrap();
    let adf_w = window.apply_range(&adf).unwrap();
    assert_eq!(adf_w.card().unwrap(), 12, "TotalVolume over stamps 0..3");
    let avail = analysis
        .spatial_map()
        .unwrap()
        .reverse()
        .apply_range(&adf)
        .unwrap();
    let reuse = adf_w.intersect(&avail).unwrap().card().unwrap();
    assert_eq!(reuse, 5, "ReuseVolume over stamps 1..3");
    assert_eq!(
        adf_w.card().unwrap() - reuse,
        7,
        "UniqueVolume over stamps 0..3"
    );
}

/// Over the full execution every tensor's TotalVolume equals |D_S| = 16
/// for an injective dataflow, and the volume identities hold.
#[test]
fn figure3_full_volume_identities() {
    let (op, df, arch) = figure3();
    let analysis = Analysis::new(&op, &df, &arch).unwrap();
    for t in ["A", "B", "Y"] {
        let v = analysis.volumes(t).unwrap();
        assert_eq!(v.total, 16);
        assert_eq!(v.unique + v.reuse, v.total);
        assert_eq!(v.spatial_reuse + v.temporal_reuse, v.reuse);
    }
    // Y stationary: unique = 4 output elements, reuse factor 4.
    let y = analysis.volumes("Y").unwrap();
    assert_eq!(y.unique, 4);
    assert_eq!(y.reuse_factor(), 4.0);
}

/// Figure 1(c): the actual reuse of tensor A in the skewed 1D-CONV
/// dataflow is 6, while the data-centric estimate is 8.
#[test]
fn figure1c_reuse_comparison() {
    let op = TensorOp::builder("conv1d")
        .dim("i", 4)
        .dim("j", 3)
        .read("A", ["i + j"])
        .read("B", ["j"])
        .write("Y", ["i"])
        .build()
        .unwrap();
    // TENET: dataflow (i-P | j-T) on a 4-wide mesh-linked array — element
    // A[k] travels anti-diagonally (PE i+1 at cycle j-1 feeds PE i at j),
    // which needs the bidirectional neighbor links of a mesh.
    let df = Dataflow::new(["i"], ["j"]);
    let arch = ArchSpec::new("1d", [4], Interconnect::Mesh, 4.0);
    let analysis = Analysis::new(&op, &df, &arch).unwrap();
    let v = analysis.volumes("A").unwrap();
    assert_eq!(v.total, 12);
    assert_eq!(v.unique, 6, "footprint of A[i+j] is 6 distinct elements");
    assert_eq!(v.reuse, 6, "actual reuse of A is 6");
    // MAESTRO: same mapping in data-centric notation reports reuse 8.
    let mapping = DcMapping::new().spatial(1, 1, "i").temporal(1, 1, "j");
    let m = evaluate(&op, &mapping, &arch);
    let a = &m.tensors["A"];
    assert_eq!(a.total - a.unique, 8.0, "data-centric reuse estimate is 8");
}

/// Section IV-A: GEMM design-space sizes 512 vs 18 (28x).
#[test]
fn design_space_sizes() {
    assert_eq!(tenet::dse::space_size::relation_centric(3), 512);
    assert_eq!(tenet::dse::space_size::data_centric(3), 18);
    assert_eq!(tenet::dse::space_size::pruned_conv_space(), 25_920);
}

/// Section IV-A: the quasi-affine TPU dataflow covers an 8x8 array and is
/// injective.
#[test]
fn section4a_quasi_affine_dataflow() {
    let op = kernels::gemm(16, 16, 8).unwrap();
    let df = &dataflows::gemm_dataflows(8, 64)[0]; // (IJ-P | J,IJK-T)
    assert!(df.is_injective(&op).unwrap());
    assert_eq!(df.used_pes(&op).unwrap().card().unwrap(), 64);
}

/// Table III: the three skewed GEMM dataflows are TENET-only; the two
/// 1-D ones have data-centric forms.
#[test]
fn table3_expressiveness_split() {
    let op = kernels::gemm(16, 16, 16).unwrap();
    let dfs = dataflows::gemm_dataflows(8, 64);
    let representable_count = dfs.iter().filter(|d| representable(d, &op)).count();
    assert_eq!(representable_count, 2);
}

/// Figure 12 oracle: AlexNet CONV3 under the Eyeriss row-stationary
/// dataflow has filter reuse factor 13x13 = 169 and output reuse factor
/// 12x12 = 144 (Section VI-E), which MAESTRO misestimates.
#[test]
fn figure12_alexnet_conv3_reuse_factors() {
    let op = kernels::conv2d(96, 64, 13, 13, 3, 3).unwrap(); // channel-scaled CONV3
    let df = dataflows::eyeriss_row_stationary();
    let arch = presets::eyeriss_noc(12, 14, 16.0);
    let opts = AnalysisOptions {
        reuse_window: 12,
        ..Default::default()
    };
    let analysis = Analysis::with_options(&op, &df, &arch, opts).unwrap();
    let filter = analysis.volumes("B").unwrap();
    assert!(
        (filter.reuse_factor() - 169.0).abs() < 1e-6,
        "filter reuse factor = {}",
        filter.reuse_factor()
    );
    let output = analysis.volumes("Y").unwrap();
    assert!(
        (output.reuse_factor() - 144.0).abs() < 1e-6,
        "output reuse factor = {}",
        output.reuse_factor()
    );
}

/// Figure 12 oracle: GoogLeNet inception-4a filter reuse is OX*OY = 3136
/// exactly (TENET), while the sliding-window polynomial gives 54*54 =
/// 2916 (MAESTRO).
#[test]
fn figure12_inception4a_filter_reuse() {
    // Channel-scaled inception-4a: factors depend only on the spatial
    // extents.
    let op = kernels::conv2d(16, 16, 56, 56, 3, 3).unwrap();
    let df = dataflows::conv_dataflows(8, 64)
        .into_iter()
        .find(|d| d.name() == Some("(KC-P | OY,OX-T)"))
        .unwrap();
    let arch = presets::mesh(8, 8, 16.0);
    let analysis = Analysis::new(&op, &df, &arch).unwrap();
    let filter = analysis.volumes("B").unwrap();
    assert!(
        (filter.reuse_factor() - 3136.0).abs() < 1e-6,
        "TENET filter reuse factor = {}",
        filter.reuse_factor()
    );
    let mapping = DcMapping::new()
        .spatial(1, 1, "k")
        .temporal(1, 1, "c")
        .temporal(3, 1, "ox")
        .temporal(3, 1, "oy")
        .temporal(3, 3, "rx")
        .temporal(3, 3, "ry");
    let m = evaluate(&op, &mapping, &arch);
    assert_eq!(m.tensors["B"].reuse_factor, 2916.0);
}
