//! Cross-validation: the analytical model's volume metrics must agree
//! with the cycle-level simulator on every (kernel, dataflow, topology)
//! combination small enough to simulate. The simulator shares no code
//! path with the integer-set machinery, making this an independent
//! end-to-end oracle.

use tenet::core::{Analysis, ArchSpec, Dataflow, Interconnect, TensorOp};
use tenet::sim::{simulate, SimOptions};
use tenet::workloads::{dataflows, kernels};

fn check(op: &TensorOp, df: &Dataflow, arch: &ArchSpec) {
    let label = format!(
        "{} / {:?} / {}",
        op.name(),
        df.name(),
        arch.interconnect.label()
    );
    let analysis = Analysis::new(op, df, arch).unwrap_or_else(|e| panic!("{label}: {e}"));
    let sim =
        simulate(op, df, arch, &SimOptions::default()).unwrap_or_else(|e| panic!("{label}: {e}"));
    for a in op.accesses() {
        let t = &a.tensor;
        let v = analysis.volumes(t).unwrap();
        let s = &sim.tensors[t];
        assert_eq!(
            s.scratchpad as u128, v.unique,
            "{label}: tensor {t} unique (sim {} vs model {})",
            s.scratchpad, v.unique
        );
        assert_eq!(
            (s.temporal_hits + s.spatial_hits) as u128,
            v.reuse,
            "{label}: tensor {t} reuse"
        );
    }
    let u = analysis.utilization().unwrap();
    assert_eq!(u.time_stamps as u64, sim.compute_cycles, "{label}: stamps");
    assert!(
        (u.average - sim.avg_utilization()).abs() < 1e-9,
        "{label}: avg utilization {} vs {}",
        u.average,
        sim.avg_utilization()
    );
    assert!(
        (u.max - sim.max_utilization()).abs() < 1e-9,
        "{label}: max utilization"
    );

    // Energy: the simulator derives it from measured counters, the model
    // from counted relations; the accounting must agree to the unit.
    let model_energy = analysis.energy().unwrap();
    let sim_energy = sim.energy(&arch.energy);
    for (name, m, s) in [
        ("compute", model_energy.compute, sim_energy.compute),
        ("register", model_energy.register, sim_energy.register),
        ("noc", model_energy.noc, sim_energy.noc),
        ("scratchpad", model_energy.scratchpad, sim_energy.scratchpad),
        ("dram", model_energy.dram, sim_energy.dram),
    ] {
        assert!(
            (m - s).abs() < 1e-6,
            "{label}: {name} energy (model {m} vs sim {s})"
        );
    }
}

#[test]
fn gemm_all_dataflows_systolic() {
    let op = kernels::gemm(8, 8, 8).unwrap();
    for df in dataflows::gemm_dataflows(4, 16) {
        let arch = if df.n_space() == 2 {
            ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 1e9)
        } else {
            ArchSpec::new("16", [16], Interconnect::Systolic1D, 1e9)
        };
        check(&op, &df, &arch);
    }
}

#[test]
fn gemm_mesh_and_multicast() {
    let op = kernels::gemm(8, 8, 8).unwrap();
    let df = &dataflows::gemm_dataflows(4, 16)[0];
    check(
        &op,
        df,
        &ArchSpec::new("4x4", [4, 4], Interconnect::Mesh, 1e9),
    );
    let df1d = &dataflows::gemm_dataflows(4, 16)[3]; // (K-P | I,J-T)
    check(
        &op,
        df1d,
        &ArchSpec::new("16", [16], Interconnect::Multicast { radius: 3 }, 1e9),
    );
}

#[test]
fn conv_dataflows_match() {
    let op = kernels::conv2d(8, 8, 6, 6, 3, 3).unwrap();
    for df in dataflows::conv_dataflows(4, 16) {
        if df.name() == Some("(RYOY-P | OY,OX-T)") {
            // Needs a 12-row array; covered separately below.
            continue;
        }
        let arch = if df.n_space() == 2 {
            ArchSpec::new("arr", [8, 8], Interconnect::Systolic2D, 1e9)
        } else {
            ArchSpec::new("arr", [16], Interconnect::Systolic1D, 1e9)
        };
        check(&op, &df, &arch);
    }
}

#[test]
fn eyeriss_row_stationary_matches() {
    let op = kernels::conv2d(16, 16, 6, 6, 3, 3).unwrap();
    let df = dataflows::eyeriss_row_stationary();
    let arch = ArchSpec::new("12x6", [12, 6], Interconnect::Mesh, 1e9);
    check(&op, &df, &arch);
}

#[test]
fn mttkrp_and_mmc_match() {
    let op = kernels::mttkrp(4, 4, 4, 4).unwrap();
    for df in dataflows::mttkrp_dataflows(4) {
        let arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 1e9);
        check(&op, &df, &arch);
    }
    let op = kernels::mmc(4, 4, 4, 4).unwrap();
    for df in dataflows::mmc_dataflows(4) {
        let arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 1e9);
        check(&op, &df, &arch);
    }
}

#[test]
fn jacobi_matches() {
    let op = kernels::jacobi2d(10).unwrap();
    for df in dataflows::jacobi_dataflows(4, 16) {
        let arch = if df.n_space() == 2 {
            ArchSpec::new("4x4", [4, 4], Interconnect::Mesh, 1e9)
        } else {
            ArchSpec::new("16", [16], Interconnect::Systolic1D, 1e9)
        };
        check(&op, &df, &arch);
    }
}

/// The skewed TPU dataflow on the exact Figure 3 shape, all topologies.
#[test]
fn skewed_dataflow_all_topologies() {
    let op = kernels::gemm(4, 4, 8).unwrap();
    let df = Dataflow::new(["i", "j"], ["i + j + k"]);
    for ic in [
        Interconnect::Systolic1D,
        Interconnect::Systolic2D,
        Interconnect::Mesh,
    ] {
        check(&op, &df, &ArchSpec::new("4x4", [4, 4], ic, 1e9));
    }
}
