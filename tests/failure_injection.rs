//! Failure injection and degenerate-input tests: every layer must reject
//! ill-formed inputs with an error (never a panic, never a silent wrong
//! answer), and must stay exact on boundary-sized inputs.

use tenet::core::{validate, Analysis, ArchSpec, Dataflow, Interconnect, TensorOp};
use tenet::sim::{simulate, SimOptions};
use tenet::workloads::kernels;

fn gemm(i: i64, j: i64, k: i64) -> TensorOp {
    kernels::gemm(i, j, k).unwrap()
}

#[test]
fn out_of_bounds_space_stamp_is_rejected() {
    let op = gemm(4, 4, 4);
    // i ranges to 4 but the PE array is 2 wide.
    let df = Dataflow::new(["i", "j"], ["k"]);
    let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
    assert!(Analysis::new(&op, &df, &arch).is_err());
    let report = validate(&op, &df, &arch).unwrap();
    assert!(!report.in_bounds);
    assert!(!report.is_valid());
}

#[test]
fn space_dimension_mismatch_is_rejected() {
    let op = gemm(2, 2, 2);
    let df = Dataflow::new(["i"], ["j", "k"]); // 1 space dim
    let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0); // 2D array
    assert!(Analysis::new(&op, &df, &arch).is_err());
    assert!(simulate(&op, &df, &arch, &SimOptions::default()).is_err());
}

#[test]
fn non_injective_dataflow_flagged_by_validate() {
    let op = gemm(2, 2, 4);
    let df = Dataflow::new(["i", "j"], ["i + j"]); // drops k
    let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
    let report = validate(&op, &df, &arch).unwrap();
    assert!(!report.injective);
    assert!(!report.is_valid());
}

#[test]
fn dataflow_without_time_dims_is_rejected() {
    let op = gemm(2, 2, 2);
    let df = Dataflow::new(["i", "j"], Vec::<String>::new());
    assert!(df.theta(&op).is_err());
}

#[test]
fn dataflow_over_unknown_iterator_is_rejected() {
    let op = gemm(2, 2, 2);
    let df = Dataflow::new(["q", "j"], ["k"]);
    let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
    assert!(Analysis::new(&op, &df, &arch).is_err());
}

#[test]
fn simulator_instance_cap_is_enforced() {
    let op = gemm(64, 64, 64); // 262144 instances
    let df = Dataflow::new(["i % 8", "j % 8"], ["floor(i / 8)", "floor(j / 8)", "k"]);
    let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 16.0);
    let opts = SimOptions {
        max_instances: 1000,
        ..Default::default()
    };
    let err = simulate(&op, &df, &arch, &opts).unwrap_err();
    assert!(err.to_string().contains("cap"));
}

#[test]
fn empty_loop_range_is_rejected_by_builder() {
    assert!(TensorOp::builder("bad")
        .dim("i", 0)
        .read("A", ["i"])
        .write("Y", ["i"])
        .build()
        .is_err());
    assert!(TensorOp::builder("bad")
        .dim_range("i", 5, 5)
        .read("A", ["i"])
        .write("Y", ["i"])
        .build()
        .is_err());
}

#[test]
fn single_instance_kernel_is_exact() {
    let op = gemm(1, 1, 1);
    let df = Dataflow::new(["i"], ["k"]);
    let arch = ArchSpec::new("1", [1], Interconnect::Systolic1D, 1.0);
    let a = Analysis::new(&op, &df, &arch).unwrap();
    let r = a.report().unwrap();
    assert_eq!(r.macs, 1);
    for t in ["A", "B", "Y"] {
        let v = a.volumes(t).unwrap();
        assert_eq!(v.total, 1);
        assert_eq!(v.unique, 1);
        assert_eq!(v.reuse, 0);
    }
    let sim = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
    assert_eq!(sim.macs, 1);
}

#[test]
fn one_by_one_pe_array_serializes_everything() {
    let op = gemm(3, 3, 3);
    // Single PE: the full loop nest becomes the time-stamp.
    let df = Dataflow::new(["i - i"], ["i", "j", "k"]);
    let arch = ArchSpec::new("1", [1], Interconnect::Systolic1D, 4.0);
    let a = Analysis::new(&op, &df, &arch).unwrap();
    let r = a.report().unwrap();
    assert_eq!(r.macs, 27);
    assert!(r.latency.compute >= 27.0);
    assert_eq!(r.utilization.pes_used, 1);
    // No neighbors to reuse from: all reuse is temporal.
    for t in ["A", "B", "Y"] {
        let v = a.volumes(t).unwrap();
        assert_eq!(v.spatial_reuse, 0, "tensor {t}");
    }
}

#[test]
fn modulus_larger_than_extent_is_identity() {
    let op = gemm(4, 4, 4);
    // i % 64 == i when i < 4; both dataflows must agree on every metric.
    let arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 8.0);
    let df1 = Dataflow::new(["i % 64", "j % 64"], ["k"]);
    let df2 = Dataflow::new(["i", "j"], ["k"]);
    let a1 = Analysis::new(&op, &df1, &arch).unwrap();
    let a2 = Analysis::new(&op, &df2, &arch).unwrap();
    for t in ["A", "B", "Y"] {
        let v1 = a1.volumes(t).unwrap();
        let v2 = a2.volumes(t).unwrap();
        assert_eq!(v1, v2, "tensor {t}");
    }
}

#[test]
fn zero_radius_multicast_rejected() {
    let ic = Interconnect::Multicast { radius: 0 };
    assert!(ic.offsets(1).is_err());
}

#[test]
fn custom_offsets_width_mismatch_rejected() {
    let ic = Interconnect::Custom {
        offsets: vec![vec![1, 0, 0]],
        same_cycle: false,
    };
    assert!(ic.offsets(2).is_err());
}

#[test]
fn negative_loop_bounds_are_handled_exactly() {
    // Jacobi-style interior domain shifted to negative coordinates.
    let op = TensorOp::builder("shifted")
        .dim_range("i", -4, 4)
        .dim_range("j", -4, 4)
        .read("A", ["i + 4", "j + 4"])
        .write("Y", ["i + 4", "j + 4"])
        .build()
        .unwrap();
    let df = Dataflow::new(["i + 4"], ["j"]);
    let arch = ArchSpec::new("8", [8], Interconnect::Systolic1D, 8.0);
    let a = Analysis::new(&op, &df, &arch).unwrap();
    assert_eq!(a.report().unwrap().macs, 64);
    let v = a.volumes("A").unwrap();
    assert_eq!(v.total, 64);
    assert_eq!(v.unique, 64); // every element touched once
}

#[test]
fn simulator_rejects_fractional_free_dataflow_but_model_accepts_floor() {
    // Quasi-affine stamps must work identically in both engines.
    let op = gemm(8, 8, 2);
    let df = Dataflow::new(["i % 4", "j % 4"], ["floor(i / 4)", "floor(j / 4)", "k"]);
    let arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 8.0);
    let a = Analysis::new(&op, &df, &arch).unwrap();
    let sim = simulate(&op, &df, &arch, &SimOptions::default()).unwrap();
    assert_eq!(a.report().unwrap().macs as u64, sim.macs);
    for t in ["A", "B", "Y"] {
        assert_eq!(
            a.volumes(t).unwrap().unique,
            sim.tensors[t].scratchpad as u128,
            "tensor {t}"
        );
    }
}

#[test]
fn scratchpad_capacity_violation_reported_not_fatal() {
    let op = gemm(16, 16, 16);
    let df = Dataflow::new(["i % 4", "j % 4"], ["floor(i / 4)", "floor(j / 4)", "k"]);
    let mut arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 8.0);
    arch.scratchpad_capacity = 10; // absurd: footprint is 3 * 256
    let report = validate(&op, &df, &arch).unwrap();
    assert!(!report.fits_scratchpad);
    // Capacity pressure is advisory (double-buffering is the paper's
    // assumption); validity only tracks injectivity and bounds.
    assert!(report.is_valid());
}
