//! Three-way notation consistency (Table I, as an executable triangle):
//!
//! * a compute-centric `Schedule` lowers to a relation-centric `Dataflow`
//!   whose exact metrics equal a hand-written equivalent dataflow;
//! * a representable relation-centric dataflow converts to a data-centric
//!   `DcMapping` and stays representable;
//! * the C-text front end reproduces the builder-defined kernels
//!   semantically (identical access relations), so every notation is
//!   talking about the same operation.

use tenet::compute::Schedule;
use tenet::core::{Analysis, ArchSpec, Dataflow, Interconnect};
use tenet::frontend::parse_kernel;
use tenet::maestro::{representable, to_data_centric};
use tenet::workloads::kernels;

#[test]
fn compute_schedule_equals_hand_written_relation() {
    let op = kernels::gemm(16, 16, 16).unwrap();
    let arch = ArchSpec::new("8x8", [8, 8], Interconnect::Systolic2D, 16.0);

    let schedule = Schedule::new()
        .tile("i", 8)
        .tile("j", 8)
        .parallel("i_i")
        .parallel("j_i")
        .order(["i_o", "j_o", "k"]);
    let lowered = schedule.lower(&op).unwrap();
    let by_hand = Dataflow::new(["i % 8", "j % 8"], ["floor(i / 8)", "floor(j / 8)", "k"]);

    let a = Analysis::new(&op, &lowered, &arch)
        .unwrap()
        .report()
        .unwrap();
    let b = Analysis::new(&op, &by_hand, &arch)
        .unwrap()
        .report()
        .unwrap();
    assert_eq!(a.macs, b.macs);
    assert_eq!(a.latency.total(), b.latency.total());
    for t in ["A", "B", "Y"] {
        assert_eq!(a.tensors[t].volumes, b.tensors[t].volumes, "tensor {t}");
    }
}

#[test]
fn lowered_schedules_are_data_centric_representable() {
    // Skew-free compute-centric mappings sit inside the data-centric
    // space too: all three notations rank them identically.
    let op = kernels::gemm(16, 16, 16).unwrap();
    let schedule = Schedule::new()
        .tile("i", 8)
        .tile("j", 8)
        .parallel("i_i")
        .parallel("j_i")
        .order(["i_o", "j_o", "k"]);
    let lowered = schedule.lower(&op).unwrap();
    assert!(representable(&lowered, &op));
    let dc = to_data_centric(&lowered, &op).expect("representable");
    // Two spatial maps for the two PE dims.
    let spatial = dc
        .directives
        .iter()
        .filter(|d| matches!(d, tenet::maestro::Directive::SpatialMap { .. }))
        .count();
    assert_eq!(spatial, 2);
}

#[test]
fn skewed_relation_escapes_both_baselines() {
    let op = kernels::gemm(16, 16, 16).unwrap();
    let skewed = Dataflow::new(
        ["i % 8", "j % 8"],
        ["floor(i / 8)", "floor(j / 8)", "i % 8 + j % 8 + k"],
    );
    assert!(!representable(&skewed, &op));
    assert!(!tenet::compute::expressible(&skewed, &op));
    // ... yet it is a perfectly legal relation-centric dataflow.
    assert!(skewed.is_injective(&op).unwrap());
}

/// Each paper kernel written as C text must define exactly the same
/// access relations as the builder version in `tenet-workloads`.
#[test]
fn c_text_kernels_match_builder_kernels() {
    let cases: Vec<(&str, tenet::core::TensorOp)> = vec![
        (
            "for (i = 0; i < 4; i++)
               for (j = 0; j < 5; j++)
                 for (k = 0; k < 6; k++)
                   gemm: Y[i][j] += A[i][k] * B[k][j];",
            kernels::gemm(4, 5, 6).unwrap(),
        ),
        (
            "for (k = 0; k < 2; k++)
               for (c = 0; c < 3; c++)
                 for (ox = 0; ox < 4; ox++)
                   for (oy = 0; oy < 4; oy++)
                     for (rx = 0; rx < 3; rx++)
                       for (ry = 0; ry < 3; ry++)
                         conv2d: Y[k][ox][oy] += A[c][ox + rx][oy + ry] * B[k][c][rx][ry];",
            kernels::conv2d(2, 3, 4, 4, 3, 3).unwrap(),
        ),
        (
            "for (i = 0; i < 2; i++)
               for (j = 0; j < 3; j++)
                 for (k = 0; k < 4; k++)
                   for (l = 0; l < 5; l++)
                     mttkrp: Y[i][j] += A[i][k][l] * B[k][j] * C[l][j];",
            kernels::mttkrp(2, 3, 4, 5).unwrap(),
        ),
        (
            "for (i = 0; i < 2; i++)
               for (j = 0; j < 3; j++)
                 for (k = 0; k < 4; k++)
                   for (l = 0; l < 5; l++)
                     mmc: Y[i][j] += A[i][k] * B[k][l] * C[l][j];",
            kernels::mmc(2, 3, 4, 5).unwrap(),
        ),
        (
            "for (i = 1; i < 9; i++)
               for (j = 1; j < 9; j++)
                 jacobi2d: Y[i][j] = (A[i][j] + A[i - 1][j] + A[i + 1][j]
                                      + A[i][j - 1] + A[i][j + 1]) / 5;",
            kernels::jacobi2d(10).unwrap(),
        ),
    ];
    for (text, built) in cases {
        let parsed = parse_kernel(text).unwrap();
        assert_eq!(parsed.name(), built.name());
        assert_eq!(parsed.instances().unwrap(), built.instances().unwrap());
        // Access relations must be set-equal per tensor (order of the
        // accesses and spelling of the expressions may differ).
        for access in built.accesses() {
            let t = &access.tensor;
            let a = parsed.access_map(t).unwrap();
            let b = built.access_map(t).unwrap();
            assert!(
                a.is_equal(&b).unwrap(),
                "kernel {}: access relation of {t} differs:\n  parsed: {a}\n  built:  {b}",
                built.name()
            );
            assert_eq!(parsed.role_of(t), built.role_of(t), "tensor {t}");
        }
        assert_eq!(parsed.accesses().len(), built.accesses().len());
    }
}

/// The exactness triangle on one conv layer: model == simulator under
/// the lowered compute-centric schedule, closing compute -> relation ->
/// execution.
#[test]
fn lowered_schedule_matches_simulation() {
    let op = kernels::conv2d(4, 4, 4, 4, 3, 3).unwrap();
    let schedule = Schedule::new()
        .parallel("k")
        .parallel("c")
        .order(["ox", "oy", "rx", "ry"]);
    let lowered = schedule.lower(&op).unwrap();
    let arch = ArchSpec::new("4x4", [4, 4], Interconnect::Systolic2D, 1e9);
    let analysis = Analysis::new(&op, &lowered, &arch).unwrap();
    let sim =
        tenet::sim::simulate(&op, &lowered, &arch, &tenet::sim::SimOptions::default()).unwrap();
    for t in ["A", "B", "Y"] {
        assert_eq!(
            analysis.volumes(t).unwrap().unique,
            sim.tensors[t].scratchpad as u128,
            "tensor {t}"
        );
    }
}
