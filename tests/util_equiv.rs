//! Equivalence of the two exact max-utilization computations: the
//! bucketed single-enumeration path must match the per-stamp fix+card
//! reference sweep on every workload preset and on the paper's named
//! architecture examples — and the reported utilization must be identical
//! with the memo layer on and off.

use tenet::core::{presets, Analysis, AnalysisOptions, ArchSpec, Dataflow, Interconnect, TensorOp};
use tenet::isl::cache;
use tenet::workloads::{dataflows, kernels};

/// Builds an arch that fits the dataflow's space-stamp dimensionality.
fn arch_for(df: &Dataflow, pe: i64, pe1d: i64, bw: f64) -> ArchSpec {
    match df.n_space() {
        1 => ArchSpec::new("1d", [pe1d], Interconnect::Systolic1D, bw),
        2 => ArchSpec::new("2d", [pe, pe], Interconnect::Systolic2D, bw),
        n => {
            let dims: Vec<i64> = vec![pe; n];
            ArchSpec::new("nd", dims, Interconnect::Mesh, bw)
        }
    }
}

/// Asserts bucketed == swept for one triple; returns false when the
/// dataflow does not apply to the kernel (dimension mismatch).
fn check(op: &TensorOp, df: &Dataflow, arch: &ArchSpec) -> bool {
    // Both paths must run to completion on every preset, so lift the
    // production guards well above any preset's stamp count.
    let opts = AnalysisOptions {
        max_util_sweep_limit: 1 << 20,
        max_util_bucket_points: 1 << 20,
        ..Default::default()
    };
    let a = match Analysis::with_options(op, df, arch, opts) {
        Ok(a) => a,
        Err(_) => return false,
    };
    let (bucketed, swept) = a.max_active_both_paths().unwrap();
    let name = df.name().unwrap_or("<unnamed>");
    assert_eq!(
        bucketed,
        Some(swept),
        "bucketed vs swept max-active diverge for {name}"
    );
    true
}

/// Every `workloads::` dataflow preset, on its matching kernel.
#[test]
fn bucketed_sweep_matches_reference_on_all_presets() {
    let (pe, pe1d) = (4, 16);
    let mut checked = 0;
    let gemm = kernels::gemm(8, 8, 8).unwrap();
    for df in dataflows::gemm_dataflows(pe, pe1d) {
        checked += check(&gemm, &df, &arch_for(&df, pe, pe1d, 16.0)) as usize;
    }
    let conv = kernels::conv2d(8, 8, 4, 4, 3, 3).unwrap();
    for df in dataflows::conv_dataflows(pe, pe1d) {
        checked += check(&conv, &df, &arch_for(&df, pe, pe1d, 16.0)) as usize;
    }
    let mttkrp = kernels::mttkrp(4, 4, 8, 8).unwrap();
    for df in dataflows::mttkrp_dataflows(pe) {
        checked += check(&mttkrp, &df, &arch_for(&df, pe, pe1d, 16.0)) as usize;
    }
    let jacobi = kernels::jacobi2d(16).unwrap();
    for df in dataflows::jacobi_dataflows(pe, pe1d) {
        checked += check(&jacobi, &df, &arch_for(&df, pe, pe1d, 16.0)) as usize;
    }
    let mmc = kernels::mmc(4, 4, 8, 8).unwrap();
    for df in dataflows::mmc_dataflows(pe) {
        checked += check(&mmc, &df, &arch_for(&df, pe, pe1d, 16.0)) as usize;
    }
    // The MAERI 1-D dataflow rides on a small conv layer.
    let conv_small = kernels::conv2d(8, 4, 4, 4, 3, 3).unwrap();
    checked += check(
        &conv_small,
        &dataflows::maeri_dataflow(16),
        &presets::maeri_like(16, 16.0),
    ) as usize;
    assert!(
        checked >= 15,
        "only {checked} preset dataflows were checked"
    );
}

/// The paper's two worked architecture examples: the Figure 3 GEMM on the
/// 2×2 systolic array and the Eyeriss row-stationary conv on the 12×14
/// mesh array.
#[test]
fn bucketed_sweep_matches_reference_on_paper_archs() {
    let gemm = kernels::gemm(2, 2, 4).unwrap();
    let figure3 = Dataflow::new(["i", "j"], ["i + j + k"]);
    let arch = ArchSpec::new("2x2", [2, 2], Interconnect::Systolic2D, 4.0);
    assert!(check(&gemm, &figure3, &arch));

    let conv = kernels::conv2d(16, 16, 4, 12, 3, 3).unwrap();
    let rs = dataflows::eyeriss_row_stationary();
    assert!(check(&conv, &rs, &presets::eyeriss_like(16.0)));
}

/// The reported utilization itself is bit-identical with the memo layer
/// enabled and disabled (the differential oracle for the analysis layer).
#[test]
fn utilization_identical_with_cache_on_and_off() {
    let op = kernels::gemm(8, 8, 8).unwrap();
    let df = dataflows::gemm_dataflows(4, 16)[0].clone();
    let arch = ArchSpec::new("2d", [4, 4], Interconnect::Systolic2D, 16.0);
    let run = || {
        let a = Analysis::new(&op, &df, &arch).unwrap();
        a.utilization().unwrap()
    };
    cache::set_enabled(false);
    let cold = run();
    cache::clear();
    cache::set_enabled(true);
    let _ = run();
    let warm = run();
    assert_eq!(cold, warm);
}
